"""Legacy setup shim.

The evaluation environment is offline and has setuptools but not ``wheel``,
so PEP 517/660 builds fail; this shim lets ``pip install -e .`` use the
legacy ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
