#!/usr/bin/env python3
"""Cluster characterization walkthrough — the paper's §IV-§V pipeline.

A site adopting the integrated power stack starts here: survey the
cluster's hardware variation, carve out a uniform partition,
characterize the workloads under the monitor and power-balancer agents,
and derive the power budgets the resource manager will operate within.

This script reproduces, in order:

* Fig. 6 — achieved-frequency k-means survey at 70 W per socket;
* Fig. 4 — uncapped node power per kernel configuration;
* Fig. 5 — balancer needed power per configuration;
* Table III — min/ideal/max budgets for one mix.

Run with::

    python examples/cluster_characterization.py
"""

import numpy as np

from repro.analysis.render import render_heatmap, render_table
from repro.characterization.balancer_runs import balancer_heatmap
from repro.characterization.budgets import derive_budgets
from repro.characterization.clustering import survey_and_cluster
from repro.characterization.mix_characterization import characterize_mix
from repro.characterization.monitor_runs import monitor_heatmap
from repro.hardware.cluster import Cluster
from repro.manager.scheduler import Scheduler
from repro.workload.mixes import MixBuilder


def main() -> None:
    # ------------------------------------------------------------------
    # Step 1: hardware-variation survey (Fig. 6).
    # ------------------------------------------------------------------
    print("Step 1 — surveying 600 nodes under 70 W/socket caps...")
    population = Cluster(node_count=600, seed=2021)
    survey = survey_and_cluster(population, cap_w=140.0, kappa=1.0)
    rows = []
    for name in ("low", "medium", "high"):
        freqs = survey.frequencies_ghz[survey.cluster_node_ids(name)]
        rows.append([name, freqs.size, f"{freqs.mean():.2f}",
                     f"{freqs.min():.2f}-{freqs.max():.2f}"])
    print(render_table(["cluster", "nodes", "mean GHz", "range"], rows,
                       title="Fig. 6 — frequency clusters"))
    medium = population.subset(survey.cluster_node_ids("medium"))
    print(f"\nUsing the {len(medium)}-node medium partition "
          "(central-tendency hardware).\n")

    # ------------------------------------------------------------------
    # Step 2: monitor characterization (Fig. 4) on test nodes.
    # ------------------------------------------------------------------
    print("Step 2 — monitor-agent characterization (uncapped power)...")
    test_ids = np.arange(min(50, len(medium)))
    fig4 = monitor_heatmap(medium, test_ids)
    print(render_heatmap(
        [f"{i:g}" for i in fig4.intensities], fig4.column_labels(),
        fig4.values, title="Fig. 4 — uncapped CPU power per node (W)",
    ))

    # ------------------------------------------------------------------
    # Step 3: balancer characterization (Fig. 5).
    # ------------------------------------------------------------------
    print("\nStep 3 — power-balancer characterization (needed power)...")
    fig5 = balancer_heatmap(medium, test_ids)
    print(render_heatmap(
        [f"{i:g}" for i in fig5.intensities], fig5.column_labels(),
        fig5.values, title="Fig. 5 — needed CPU power per node (W)",
    ))
    harvest = fig4.values - fig5.values
    r, c = np.unravel_index(np.argmax(harvest), harvest.shape)
    print(f"\nLargest recoverable waste: {harvest[r, c]:.0f} W/node at "
          f"{fig4.intensities[r]:g} FLOPs/byte, {fig4.column_labels()[c]} "
          "— the opportunity application awareness unlocks.")

    # ------------------------------------------------------------------
    # Step 4: budgets for a mix (Table III).
    # ------------------------------------------------------------------
    print("\nStep 4 — deriving budgets for the WastefulPower mix...")
    builder = MixBuilder(nodes_per_job=10, iterations=20)
    mix = builder.build("WastefulPower")
    scheduled = Scheduler(medium).allocate(mix)
    char = characterize_mix(mix, scheduled.efficiencies)
    budgets = derive_budgets(char)
    hosts = char.host_count
    print(render_table(
        ["level", "total", "per node", "meaning"],
        [
            ["min", f"{budgets.min_w / 1e3:.1f} kW",
             f"{budgets.min_w / hosts:.0f} W",
             "aggressive over-provisioning"],
            ["ideal", f"{budgets.ideal_w / 1e3:.1f} kW",
             f"{budgets.ideal_w / hosts:.0f} W",
             "exactly the needed power"],
            ["max", f"{budgets.max_w / 1e3:.1f} kW",
             f"{budgets.max_w / hosts:.0f} W",
             "conservative over-provisioning"],
        ],
        title=f"Table III — budgets for {mix.name} ({hosts} nodes)",
    ))


if __name__ == "__main__":
    main()
