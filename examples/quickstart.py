#!/usr/bin/env python3
"""Quickstart: run the paper's evaluation grid and check its takeaways.

This is the five-minute tour: build a (scaled-down) cluster, run all five
power-management policies over the six workload mixes at three budget
levels, and print the savings each policy achieves against the StaticCaps
baseline — the reproduction of the paper's Figs. 7-8 in miniature.

Run with::

    python examples/quickstart.py [--full]

``--full`` uses the paper's scale (2 000-node survey, 900-node mixes,
100 iterations); the default is a fast 90-node configuration with
identical structure.
"""

import argparse

from repro import ExperimentConfig, ExperimentGrid, check_takeaways
from repro.analysis.render import render_table
from repro.experiments.metrics import savings_grid
from repro.workload.mixes import MIX_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run at the paper's full scale")
    args = parser.parse_args()

    config = ExperimentConfig() if args.full else ExperimentConfig.small()
    print(f"Building environment: {config.survey_nodes}-node survey, "
          f"{config.nodes_per_job * config.jobs_per_mix}-node mixes, "
          f"{config.iterations} iterations per job\n")

    grid = ExperimentGrid(config)
    sizes = grid.survey.cluster_sizes()
    print(f"Fig. 6 survey: low={sizes['low']}  medium={sizes['medium']}  "
          f"high={sizes['high']}  (paper: 522/918/560 at 2000 nodes)\n")

    results = grid.run_all()
    savings = savings_grid(results)

    rows = []
    for mix in MIX_NAMES:
        for level in ("min", "ideal", "max"):
            for policy in ("MinimizeWaste", "JobAdaptive", "MixedAdaptive"):
                s = savings[(mix, level, policy)]
                rows.append([
                    mix, level, policy,
                    f"{100 * s.time_savings.mean:+.1f}%",
                    f"{100 * s.energy_savings.mean:+.1f}%",
                ])
    print(render_table(
        ["mix", "budget", "policy", "time savings", "energy savings"],
        rows,
        title="Savings vs StaticCaps (paper Fig. 8)",
    ))

    print("\nPaper takeaways, machine-checked:")
    report = check_takeaways(results)
    for name, ok in report.checks.items():
        status = "PASS" if ok else "FAIL"
        print(f"  [{status}] {name}")
        print(f"         {report.evidence[name]}")

    best_time = max(s.time_savings.mean for s in savings.values())
    best_energy = max(s.energy_savings.mean for s in savings.values())
    print(f"\nHeadlines: up to {100 * best_time:.1f}% time savings "
          f"(paper: 7%) and up to {100 * best_energy:.1f}% energy savings "
          f"(paper: 11%).")


if __name__ == "__main__":
    main()
