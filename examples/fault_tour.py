#!/usr/bin/env python3
"""Beyond the paper: fault injection and graceful degradation.

The paper's conclusion asks for policies that "minimize the loss of
quality of service in exceptional cases".  This tour makes the
exceptional cases concrete:

1. **A fault timeline** — one deterministic `FaultSchedule` describing a
   shift that loses budget, hosts, and telemetry.
2. **The degradation ladder** — what the manager plans when the full
   re-plan, the characterization, or the budget itself is unavailable.
3. **A resilience matrix** — two policies scored against named scenarios
   on QoS loss and budget-overshoot watt-seconds.

Run with::

    python examples/fault_tour.py
"""

import numpy as np

from repro.analysis.render import render_table
from repro.core.registry import create_policy
from repro.faults import FaultSchedule, plan_with_degradation
from repro.experiments.resilience import run_resilience_suite


def timeline_demo() -> None:
    print("Part 1 — one shift's fault timeline\n")
    schedule = (
        FaultSchedule(name="bad-afternoon")
        .budget_drop(120.0, 4000.0, ramp_s=60.0)
        .node_failure(200.0, (3, 7))
        .sensor_dropout(260.0, 90.0)
        .node_recovery(400.0, (3, 7))
        .budget_restore(480.0, 6000.0)
    )
    rows = []
    for t in (0.0, 150.0, 220.0, 300.0, 500.0):
        failed = sorted(schedule.failed_hosts_at(t))
        dark = bool(schedule.sensor_dropout_at(t))
        rows.append([
            f"{t:.0f} s",
            f"{schedule.budget_at(t, 6000.0) / 1e3:.2f} kW",
            str(failed) if failed else "-",
            "DARK" if dark else "ok",
        ])
    print(render_table(
        ["time", "budget in force", "failed hosts", "telemetry"],
        rows,
        title="FaultSchedule queries (base budget 6.0 kW)",
    ))
    print("\nThe same object drives every layer: the site loop reads the "
          "budget and failed\nhosts, the engine applies cap faults, the "
          "runtime injector blinds the agent.\n")


def ladder_demo() -> None:
    print("Part 2 — the graceful-degradation ladder\n")
    from repro.characterization import derive_budgets
    from repro.hardware import Cluster
    from repro.manager import PowerManager, Scheduler
    from repro.workload.mixes import MixBuilder

    cluster = Cluster(node_count=30, seed=2021)
    mix = MixBuilder(nodes_per_job=3, iterations=6).build("WastefulPower")
    scheduled = Scheduler(cluster).allocate(mix)
    char = PowerManager().characterize(scheduled)
    budgets = derive_budgets(char)
    floor_w = char.host_count * char.min_cap_w

    policy = create_policy("MixedAdaptive")
    rows = []
    for label, budget, have_char in (
        ("budget drop, characterization fresh", budgets.ideal_w, True),
        ("same drop, telemetry dark", budgets.ideal_w, False),
        ("brownout below the floor", 0.9 * floor_w, False),
    ):
        decision = plan_with_degradation(
            policy, budget,
            characterization=char if have_char else None,
            current_caps_w=None if have_char else np.full(
                char.host_count, 220.0
            ),
        )
        rows.append([
            label,
            f"{budget / 1e3:.2f} kW",
            decision.tier,
            "yes" if decision.feasible else "NO",
            f"{float(np.sum(decision.caps_w)) / 1e3:.2f} kW",
        ])
    print(render_table(
        ["situation", "budget", "tier", "feasible", "planned caps sum"],
        rows,
        title=f"plan_with_degradation on {char.host_count} hosts "
              f"(floor {floor_w / 1e3:.2f} kW)",
    ))
    print("\nTier 'replan' re-runs the policy; 'clamp' scales above-floor "
          "caps without job\nknowledge; 'floor' refuses to pretend — the "
          "budget is infeasible and says so.\n")


def resilience_demo() -> None:
    print("Part 3 — policies under the standard scenarios\n")
    report = run_resilience_suite(
        scenarios=("budget-step", "sensor-blackout", "stuck-caps"),
        policies=("StaticCaps", "MixedAdaptive"),
        jobs=3,
        nodes_per_job=3,
        iterations=6,
    )
    print(report.render())
    losses = report.qos_loss_by_policy()
    best = min(losses, key=losses.get)
    print("\nMean QoS loss over feasible scenarios: " + ", ".join(
        f"{p}: {q:+.1f}%" for p, q in losses.items()
    ))
    print(f"Lowest loss: {best}. Stuck RAPL domains dominate the loss "
          "(a floor-pinned host drags\nthe whole bulk-synchronous job); "
          "sensor blackouts degrade planning to the\n"
          "characterization-free clamp tier. Planned overshoot stays zero "
          "on feasible\nscenarios — `python -m repro faults --check` "
          "gates CI on exactly that.")


def main() -> None:
    timeline_demo()
    ladder_demo()
    resilience_demo()


if __name__ == "__main__":
    main()
