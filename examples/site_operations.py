#!/usr/bin/env python3
"""A day at the site: admission control, dispatch, and the power dashboard.

This example plays out the resource-manager workflow end to end, the way
an operator would see it:

1. users submit a queue of jobs (some with power hints, most without);
2. power-aware admission decides which jobs start now against the site's
   deliverable power and node pool — with and without backfill;
3. the admitted set runs under the MixedAdaptive policy;
4. a session of mixes produces the facility power trace the Fig. 1
   dashboard would show.

Run with::

    python examples/site_operations.py
"""


from repro.analysis.render import render_table
from repro.core.registry import create_policy
from repro.experiments.facility_integration import simulate_session
from repro.experiments.grid import ExperimentConfig, ExperimentGrid
from repro.hardware.cluster import Cluster
from repro.manager.admission import PowerAwareAdmission
from repro.manager.power_manager import PowerManager
from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.manager.scheduler import Scheduler
from repro.workload.job import WorkloadMix
from repro.workload.kernel import KernelConfig


def admission_demo() -> None:
    print("Step 1-2 — the morning queue meets the power budget\n")
    queue = JobQueue()
    queue.submit(JobRequest("climate-ensemble", KernelConfig(intensity=16.0),
                            node_count=12))
    queue.submit(JobRequest(
        "graph-analytics",
        KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=2),
        node_count=8,
    ))
    queue.submit(JobRequest("cfd-sweep", KernelConfig(intensity=32.0),
                            node_count=10, power_hint_w=225.0))
    queue.submit(JobRequest("post-processing", KernelConfig(intensity=0.5),
                            node_count=4))

    budget_w = 30 * 200.0   # 6 kW deliverable to this partition
    nodes = 30
    admission = PowerAwareAdmission(backfill=True)
    decision = admission.decide(queue, budget_w, nodes, mark=False)

    rows = []
    for request in queue.pending():
        estimate = decision.estimates_w[request.name]
        status = "ADMIT" if request.name in decision.admitted else "defer"
        rows.append([
            request.name, request.node_count,
            f"{estimate / request.node_count:.0f} W",
            f"{estimate / 1e3:.2f} kW", status,
        ])
    print(render_table(
        ["job", "nodes", "est. W/node", "est. total", "decision"],
        rows,
        title=f"Admission against {budget_w / 1e3:.1f} kW / {nodes} nodes "
              "(backfill on)",
    ))
    print(f"\nAdmitted draw: {decision.admitted_power_w / 1e3:.2f} kW of "
          f"{budget_w / 1e3:.1f} kW; {decision.admitted_nodes} of "
          f"{nodes} nodes.\n")

    strict = PowerAwareAdmission(backfill=False).decide(
        queue, budget_w, nodes, mark=False
    )
    print(f"Strict FIFO would admit {len(strict.admitted)} job(s); backfill "
          f"admits {len(decision.admitted)} — the blocked job never starves, "
          "it just stops later arrivals only in FIFO mode.\n")


def dispatch_demo() -> None:
    print("Step 3 — the admitted set runs under MixedAdaptive\n")
    queue = JobQueue()
    queue.submit(JobRequest("climate-ensemble", KernelConfig(intensity=16.0),
                            node_count=12, iterations=30))
    queue.submit(JobRequest(
        "graph-analytics",
        KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=2),
        node_count=8, iterations=30,
    ))
    budget_w = 20 * 225.0
    admission = PowerAwareAdmission()
    decision = admission.decide(queue, budget_w, nodes_available=20)
    admitted = [queue.get(name) for name in decision.admitted]
    mix = WorkloadMix(
        name="morning-batch", jobs=tuple(r.to_job() for r in admitted)
    )

    cluster = Cluster(node_count=40, seed=7)
    scheduled = Scheduler(cluster).allocate(mix)
    manager = PowerManager()
    run = manager.launch(scheduled, create_policy("MixedAdaptive"), budget_w)
    for name in decision.admitted:
        queue.mark(name, JobState.RUNNING)
        queue.mark(name, JobState.COMPLETED)

    rows = [
        [job, f"{elapsed:.2f} s", f"{energy / 1e3:.0f} kJ"]
        for job, elapsed, energy in zip(
            run.result.job_names, run.result.job_elapsed_s,
            run.result.job_energy_j,
        )
    ]
    print(render_table(["job", "elapsed", "energy"], rows,
                       title=f"Batch outcome at {budget_w / 1e3:.1f} kW "
                             f"({run.result.budget_utilization():.0%} utilised)"))
    print()


def dashboard_demo() -> None:
    print("Step 4 — the facility dashboard over a session of mixes\n")
    grid = ExperimentGrid(ExperimentConfig.small(nodes_per_job=10, iterations=30))
    rows = []
    for policy in ("StaticCaps", "MixedAdaptive"):
        session = simulate_session(
            grid, policy, budget_level="ideal",
            mixes=["WastefulPower", "HighPower", "LowPower"],
        )
        stats = session.utilisation_stats()
        rows.append([
            policy,
            f"{session.total_duration_s:.1f} s",
            f"{session.total_energy_j / 1e6:.2f} MJ",
            f"{stats['peak_utilisation']:.0%}",
            f"{stats['mean_utilisation']:.0%}",
        ])
    print(render_table(
        ["policy", "session length", "energy", "utilisation (full)",
         "utilisation (mean)"],
        rows,
        title="Three mixes back to back at the ideal budget",
    ))
    print(
        "\nTwo observations an operator acts on: the integrated policy "
        "finishes the\nsame work with less energy, and mean utilisation sags "
        "well below the\nfull-cluster level because jobs drain at different "
        "times — exactly the\nstranded power that admission-control backfill "
        "(step 2) exists to reclaim."
    )


def main() -> None:
    admission_demo()
    dispatch_demo()
    dashboard_demo()


if __name__ == "__main__":
    main()
