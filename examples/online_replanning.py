#!/usr/bin/env python3
"""Beyond the paper: execution-time re-planning and multi-phase workloads.

The paper emulates RM/runtime coordination with *pre*-characterization and
names the execution-time protocol as future work (§VIII).  This example
runs the two extensions this reproduction implements:

1. **Online re-planning** — the resource manager re-derives the
   characterization from live telemetry every epoch and re-runs the
   policy; no offline characterization runs at all.
2. **Multi-phase workloads** — an application alternating memory-bound
   and compute-bound phases, re-planned at each phase boundary versus a
   frozen phase-0 allocation.

Run with::

    python examples/online_replanning.py
"""

import numpy as np

from repro.analysis.render import render_table
from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.manager.online import OnlinePowerManager
from repro.manager.scheduler import Scheduler
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig
from repro.workload.phases import (
    PhasedWorkload,
    WorkloadPhase,
    simulate_phased_job,
)


def online_demo() -> None:
    print("Extension 1 — online re-planning (no pre-characterization)\n")
    cluster = Cluster(node_count=40, seed=3)
    mix = WorkloadMix(
        name="online",
        jobs=(
            Job(name="hungry", config=KernelConfig(intensity=32.0),
                node_count=10, iterations=100),
            Job(
                name="waster",
                config=KernelConfig(intensity=8.0, waiting_fraction=0.75,
                                    imbalance=3),
                node_count=10,
                iterations=100,
            ),
        ),
    )
    scheduled = Scheduler(cluster).allocate(mix)
    manager = OnlinePowerManager(iterations_per_epoch=10)
    budget = 20 * 200.0
    run = manager.run(scheduled, create_policy("MixedAdaptive"),
                      budget_w=budget, epochs=5)

    rows = []
    for epoch in run.epochs:
        hungry = float(np.mean(epoch.caps_w[:10]))
        waster = float(np.mean(epoch.caps_w[10:]))
        rows.append([
            epoch.index,
            f"{hungry:.0f} W",
            f"{waster:.0f} W",
            f"{epoch.result.job_elapsed_s[0]:.2f} s",
            f"{epoch.mean_power_w / budget:.0%}",
        ])
    print(render_table(
        ["epoch", "hungry-job cap", "waster-job cap", "hungry elapsed",
         "budget used"],
        rows,
        title=f"MixedAdaptive re-planned every 10 iterations "
              f"(budget {budget / 1e3:.1f} kW)",
    ))
    print(f"\nCaps converged: {run.caps_converged(tolerance_w=1.0)} — epoch 0 "
          "runs uniform, epoch 1 already shifts the waster's slack to the "
          "hungry job.\n")


def phased_demo() -> None:
    print("Extension 2 — multi-phase workload with boundary re-planning\n")
    workload = PhasedWorkload(
        name="solver",
        phases=(
            WorkloadPhase(
                "assembly",
                KernelConfig(intensity=32.0, waiting_fraction=0.75, imbalance=3),
                iterations=40,
            ),
            WorkloadPhase("smoother", KernelConfig(intensity=0.5), iterations=40),
            WorkloadPhase("kernel", KernelConfig(intensity=32.0), iterations=40),
        ),
        node_count=12,
    )
    eff = np.ones(12)
    policy = create_policy("MixedAdaptive")
    budget = 12 * 180.0

    replanned = simulate_phased_job(workload, eff, policy, budget,
                                    replan_each_phase=True)
    frozen = simulate_phased_job(workload, eff, policy, budget,
                                 replan_each_phase=False)

    rows = []
    for (name, r_row), f_row in zip(
        [(p.name, r) for p, r in zip(workload.phases, replanned.phase_summary())],
        frozen.phase_summary(),
    ):
        rows.append([
            name,
            f"{r_row['elapsed_s']:.2f} s",
            f"{f_row['elapsed_s']:.2f} s",
            f"{r_row['energy_j'] / 1e3:.0f} kJ",
            f"{f_row['energy_j'] / 1e3:.0f} kJ",
        ])
    print(render_table(
        ["phase", "replanned time", "frozen time", "replanned energy",
         "frozen energy"],
        rows,
        title="Per-phase outcomes: boundary re-planning vs frozen phase-0 caps",
    ))
    gain = 1 - replanned.total_elapsed_s / frozen.total_elapsed_s
    last_r = replanned.phase_summary()[-1]["elapsed_s"]
    last_f = frozen.phase_summary()[-1]["elapsed_s"]
    phase_gain = 1 - last_r / last_f
    print(f"\nEnd-to-end: re-planning saves {100 * gain:.1f}% wall time "
          f"({replanned.total_elapsed_s:.2f} s vs {frozen.total_elapsed_s:.2f} s);"
          f"\non the final balanced phase alone it saves {100 * phase_gain:.1f}% "
          "— the frozen plan keeps starving\nnodes it classified as 'waiting' "
          "during assembly, which the execution-time protocol\nthe paper "
          "calls for avoids.")


def main() -> None:
    online_demo()
    phased_demo()


if __name__ == "__main__":
    main()
