#!/usr/bin/env python3
"""Policy deep-dive: watch the five policies allocate one constrained mix.

The paper's argument in one scenario: the WastefulPower mix (heavy
barrier polling next to power-hungry balanced jobs) at its ideal budget.
For each policy this script shows

* the per-job power allocation it computes,
* the measured per-job elapsed time and energy,
* and the budget utilisation — making visible *why* MixedAdaptive's
  combination of system awareness and application awareness wins.

Run with::

    python examples/policy_comparison.py [--mix WastefulPower] [--budget ideal]
"""

import argparse

import numpy as np

from repro.analysis.render import render_table
from repro.core.registry import POLICY_NAMES
from repro.experiments.grid import ExperimentConfig, ExperimentGrid
from repro.experiments.metrics import savings_vs_baseline
from repro.workload.mixes import MIX_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mix", default="WastefulPower", choices=MIX_NAMES)
    parser.add_argument("--budget", default="ideal",
                        choices=("min", "ideal", "max"))
    args = parser.parse_args()

    grid = ExperimentGrid(ExperimentConfig.small(nodes_per_job=10, iterations=50))
    prepared = grid.prepare_mix(args.mix)
    char = prepared.characterization
    budget = prepared.budgets.by_level()[args.budget]
    hosts = char.host_count
    print(f"Mix {args.mix}: {char.job_count} jobs on {hosts} nodes; "
          f"{args.budget} budget = {budget / 1e3:.1f} kW "
          f"({budget / hosts:.0f} W/node)\n")

    # Show what each policy *knows* and what it decides.
    job_names = [j.name.split("-", 2)[-1] for j in prepared.scheduled.mix.jobs]
    observed = [
        float(np.mean(char.monitor_power_w[char.job_slice(j)]))
        for j in range(char.job_count)
    ]
    needed = [
        float(np.mean(char.needed_power_w[char.job_slice(j)]))
        for j in range(char.job_count)
    ]

    runs = {}
    for name in POLICY_NAMES:
        cell = grid.run_cell(args.mix, args.budget, name)
        runs[name] = cell.run

    rows = []
    for j, job in enumerate(job_names):
        row = [job, f"{observed[j]:.0f}", f"{needed[j]:.0f}"]
        for name in POLICY_NAMES:
            caps = runs[name].allocation.caps_w[char.job_slice(j)]
            row.append(f"{float(np.mean(caps)):.0f}")
        rows.append(row)
    print(render_table(
        ["job", "observed W", "needed W"] + [n[:9] for n in POLICY_NAMES],
        rows,
        title="Per-job mean node power: characterization vs each policy's caps",
    ))

    base = runs["StaticCaps"].result
    rows = []
    for name in POLICY_NAMES:
        result = runs[name].result
        if name == "StaticCaps":
            time_s = energy_s = "baseline"
        else:
            s = savings_vs_baseline(result, base)
            time_s = f"{100 * s.time_savings.mean:+.1f}%"
            energy_s = f"{100 * s.energy_savings.mean:+.1f}%"
        rows.append([
            name,
            f"{result.mean_elapsed_s:.2f} s",
            f"{result.total_energy_j / 1e6:.2f} MJ",
            f"{result.budget_utilization():.0%}",
            time_s,
            energy_s,
        ])
    print("\n" + render_table(
        ["policy", "mean elapsed", "energy", "budget used", "time vs base",
         "energy vs base"],
        rows,
        title="Measured outcomes (paper Figs. 7-8 for this cell)",
    ))

    print(
        "\nReading the table: Precharacterized ignores the budget (util > "
        "100%);\nStaticCaps wastes power on pollers; MinimizeWaste cannot "
        "see that waste\n(pollers draw real watts); JobAdaptive recovers it "
        "but only within each job;\nMixedAdaptive moves it across jobs to "
        "whoever's critical path can use it."
    )


if __name__ == "__main__":
    main()
