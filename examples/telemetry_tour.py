#!/usr/bin/env python3
"""Tour of the unified telemetry subsystem.

Every layer of this stack — the GEOPM-style runtime, the resource
manager, the simulator, the experiment grid — records what it does
through one pipeline: structured events on a process-global
:class:`~repro.telemetry.EventBus` plus counters/gauges/histograms in a
:class:`~repro.telemetry.MetricsRegistry`.  This example shows the three
ways to consume it:

1. **live subscription** — attach a callback and watch events as the
   stack runs (how a dashboard or an external RM would integrate);
2. **metrics snapshot** — the end-of-run roll-up every report embeds;
3. **event-log export** — JSONL for offline analysis.

Run with::

    python examples/telemetry_tour.py
"""

import tempfile
from pathlib import Path

from repro import telemetry
from repro.characterization import derive_budgets
from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.manager import PowerManager, Scheduler
from repro.workload.mixes import MixBuilder


def main() -> None:
    print("Telemetry tour\n")
    telemetry.reset()  # start from a clean global pipeline

    # 1. Live subscription: print manager-layer completions as they
    #    happen.  Producers never know we are listening.
    def on_launch(event):
        payload = event.payload
        print(
            f"  [live] {event.source}/{event.kind}: "
            f"policy={payload['policy']} "
            f"mean_power={payload['mean_power_w']:.0f} W"
        )

    token = telemetry.get_bus().subscribe(
        on_launch, kinds=["launch_complete"]
    )

    # Run a real workload: characterize one mix, then launch it under
    # two policies against the ideal budget.
    cluster = Cluster(node_count=100, seed=2021)
    mix = MixBuilder(nodes_per_job=5, iterations=20).build("WastefulPower")
    scheduled = Scheduler(cluster).allocate(mix)
    manager = PowerManager()
    char = manager.characterize(scheduled)
    budgets = derive_budgets(char)
    print("Launching WastefulPower under two policies:")
    for policy_name in ("StaticCaps", "MixedAdaptive"):
        manager.launch(
            scheduled, create_policy(policy_name), budgets.ideal_w,
            characterization=char,
        )
    telemetry.get_bus().unsubscribe(token)

    # 2. The metrics snapshot: what `python -m repro telemetry` and the
    #    report's Telemetry section print.
    print("\n" + telemetry.TelemetrySummary.capture().render())

    # 3. Export the event log for offline analysis.
    out = Path(tempfile.mkdtemp()) / "events.jsonl"
    telemetry.get_bus().to_jsonl(out)
    print(f"\nEvent log written to {out}")
    print(f"Sources seen: {', '.join(telemetry.get_bus().sources())}")


if __name__ == "__main__":
    main()
