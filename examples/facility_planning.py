#!/usr/bin/env python3
"""Facility power planning — from the Fig. 1 motivation to budget choices.

The paper opens with a year of Quartz telemetry: a 1.35 MW-rated system
that averages 0.83 MW.  This example regenerates that trace, quantifies
the stranded capacity, and then shows what the three Table III budget
levels mean for a facility deciding how aggressively to over-provision:
more nodes under tighter caps versus fewer nodes running unconstrained.

Run with::

    python examples/facility_planning.py
"""


from repro.analysis.render import render_table
from repro.experiments.grid import ExperimentConfig, ExperimentGrid
from repro.experiments.metrics import savings_vs_baseline
from repro.workload.facility import FacilityTraceConfig, generate_facility_trace


def main() -> None:
    # ------------------------------------------------------------------
    # Fig. 1: how much procured power actually gets used?
    # ------------------------------------------------------------------
    trace = generate_facility_trace(FacilityTraceConfig())
    stats = trace.statistics()
    print(render_table(
        ["quantity", "value"],
        [
            ["Power rating", f"{stats['rating_mw']:.2f} MW"],
            ["Mean draw", f"{stats['mean_mw']:.2f} MW"],
            ["Peak draw", f"{stats['peak_mw']:.2f} MW"],
            ["Mean utilisation", f"{stats['mean_utilization']:.0%}"],
            ["Stranded capacity", f"{stats['stranded_power_mw']:.2f} MW"],
        ],
        title="Fig. 1 — a year of facility power (synthetic Quartz trace)",
    ))
    stranded_nodes = stats["stranded_power_mw"] * 1e6 / 240.0
    print(f"\nThe stranded {stats['stranded_power_mw']:.2f} MW would power "
          f"~{stranded_nodes:.0f} additional 240 W nodes — the "
          "over-provisioning opportunity the paper opens with.\n")

    # ------------------------------------------------------------------
    # What over-provisioning costs under each budget level.
    # ------------------------------------------------------------------
    grid = ExperimentGrid(ExperimentConfig.small(nodes_per_job=10, iterations=40))
    prepared = grid.prepare_mix("RandomLarge")
    hosts = prepared.characterization.host_count

    rows = []
    for level in ("min", "ideal", "max"):
        budget = prepared.budgets.by_level()[level]
        static = grid.run_cell("RandomLarge", level, "StaticCaps").run.result
        mixed = grid.run_cell("RandomLarge", level, "MixedAdaptive").run.result
        s = savings_vs_baseline(mixed, static)
        extra_nodes = (prepared.budgets.max_w - budget) / (budget / hosts)
        rows.append([
            level,
            f"{budget / hosts:.0f} W",
            f"{extra_nodes:.0f}",
            f"{static.mean_elapsed_s:.2f} s",
            f"{100 * s.time_savings.mean:+.1f}%",
            f"{100 * s.energy_savings.mean:+.1f}%",
        ])
    print(render_table(
        ["budget", "per node", "extra nodes affordable*", "StaticCaps time",
         "MixedAdaptive time", "MixedAdaptive energy"],
        rows,
        title="Over-provisioning trade-off on the RandomLarge mix",
    ))
    print("\n* nodes the saved budget (vs the max level) could power at "
          "this level's per-node allocation.")
    print(
        "\nThe tighter the budget, the more an integrated policy matters: "
        "at min,\nMixedAdaptive buys back part of the throttling penalty; "
        "at max it converts\nthe surplus into energy savings instead."
    )


if __name__ == "__main__":
    main()
