"""Bench: the streaming site engine under sustained Poisson load.

The acceptance benchmark of the event-driven site engine: a rolling
engine fed a high-rate Poisson arrival stream whose rate extrapolates
to over half a million arrivals per simulated day, with per-job
bookkeeping disabled (``record_jobs=False``) so memory stays bounded by
the backpressure window rather than the arrival count.  Concurrent
in-flight batch physics runs through the vectorised batched engines
(``batched_physics=True``): arrivals accumulate over a quantised
admission window (``admission_interval_s``) and every batch in flight
at a flush is simulated as rows of one stacked tensor step instead of
one scalar engine call each.

The run asserts the memory contract directly — terminal jobs
forgotten, no per-batch records retained, peak tracked jobs a small
multiple of ``max_pending`` — plus the concurrency contract (at least
eight batches in flight at the peak) and, on a short paired window with
records enabled, bit-identity between the batched and scalar physics
paths: identical stats and identical per-batch records.

The arrival stream is seeded, so the arrival count (and therefore the
``arrivals_per_day`` metric) is deterministic; wall-clock metrics vary
by host and are gated only by the very generous perf-trajectory
tolerance in CI.  The timed run is preceded by a short warm-up (numpy
dispatch caches, layout-stack memo) and repeated twice, keeping the
faster wall, so the ratio metric reflects steady state rather than
first-call overheads.

Under ``REPRO_SMOKE=1`` the simulated window shrinks from one hour to
ten minutes (same rate, same contract) so the CI job stays fast.

Writes ``benchmarks/output/site_stream.txt`` and the machine-readable
``BENCH_site_stream.json`` perf-trajectory bundle.
"""

import gc
import os
import time

from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.io.bench_artifacts import BenchMetric
from repro.stream import SiteStreamEngine, poisson_stream, synthetic_job_factory

SMOKE = os.environ.get("REPRO_SMOKE") == "1"

RATE_PER_S = 6.5
DURATION_S = 600.0 if SMOKE else 3600.0
MAX_PENDING = 64
NODE_COUNT = 160
BUDGET_W = 35_000.0
ADMISSION_INTERVAL_S = 4.0
SEED = 11


def _build_engine(duration_s, *, batched=True, record_batches=False):
    cluster = Cluster(node_count=NODE_COUNT, variation=None, seed=0)
    engine = SiteStreamEngine(
        cluster, create_policy("StaticCaps"), BUDGET_W,
        rolling=True, max_pending=MAX_PENDING,
        record_jobs=False, record_batches=record_batches,
        run_seed=None, batched_physics=batched,
        admission_interval_s=ADMISSION_INTERVAL_S,
        per_job_batches=True,
    )
    engine.attach_source(poisson_stream(
        RATE_PER_S, duration_s, synthetic_job_factory(), seed=SEED
    ))
    return engine


def _timed_run(duration_s):
    engine = _build_engine(duration_s)
    # A collector pause mid-run is measurement noise, not engine cost;
    # the engine allocates no cycles on the hot path, so deferring
    # collection is safe and keeps single-shot timings honest.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        stats = engine.run()
        wall_s = time.perf_counter() - start
    finally:
        gc.enable()
    return engine, stats, wall_s


def test_sustained_stream_throughput_and_memory(emit):
    # Warm-up: primes numpy ufunc dispatch and the planner/layout memos
    # so the timed runs measure the steady-state hot path.
    _timed_run(30.0)

    # Best-of-3: on shared single-vCPU CI hosts a run can absorb
    # scheduler steal an order of magnitude larger than the engine's
    # own variance; the minimum wall is the least-contended estimate.
    engine, stats, wall_s = _timed_run(DURATION_S)
    for _ in range(2):
        _, stats_again, wall_again = _timed_run(DURATION_S)
        # Seeded stream: reruns are bit-identical.
        assert stats == stats_again
        wall_s = min(wall_s, wall_again)

    arrivals_per_day = stats.arrivals / DURATION_S * 86_400.0
    sim_per_wall = engine.clock / wall_s

    # Sustained-load floor: the stream must represent > 500k arrivals
    # per simulated day, and every accepted job must be accounted for.
    assert arrivals_per_day >= 500_000.0
    assert stats.jobs_completed + stats.jobs_failed == \
        stats.arrivals - stats.rejected

    # Concurrency floor: quantised admission must actually pile up
    # concurrent in-flight batches for the stacked step to vectorise.
    assert stats.peak_in_flight >= 8

    # Bounded memory: terminal jobs are forgotten, aggregates kept.
    assert len(engine.queue) == 0
    assert engine.batches == []
    assert engine.turnaround_s == {}
    assert stats.peak_tracked_jobs <= 2 * MAX_PENDING
    assert stats.mean_turnaround_s() > 0.0

    # Bit-identity spot check: on a short paired window with records
    # enabled, the batched physics path must reproduce the scalar path
    # exactly — same stats, same per-batch records, same turnarounds.
    # Quantised admission is an engine-level scheduling choice, not a
    # physics one; both engines share it so the pairing isolates the
    # batched-vs-scalar execution difference.
    batched = _build_engine(60.0, batched=True, record_batches=True)
    scalar = _build_engine(60.0, batched=False, record_batches=True)
    stats_b = batched.run()
    stats_s = scalar.run()
    assert stats_b == stats_s
    assert batched.batches == scalar.batches
    assert batched.turnaround_s == scalar.turnaround_s

    lines = [
        "Streaming site engine: sustained Poisson load "
        f"({RATE_PER_S}/s for {DURATION_S:.0f} simulated seconds, "
        f"batched physics @ {ADMISSION_INTERVAL_S:.0f}s admission)",
        "",
        f"  arrivals:            {stats.arrivals}"
        f"  (= {arrivals_per_day:,.0f}/simulated day)",
        f"  completed / failed:  {stats.jobs_completed}"
        f" / {stats.jobs_failed}",
        f"  backpressure drops:  {stats.rejected}"
        f"  (max_pending = {MAX_PENDING})",
        f"  batches executed:    {stats.batches}",
        f"  peak in-flight:      {stats.peak_in_flight}",
        f"  peak tracked jobs:   {stats.peak_tracked_jobs}",
        f"  mean turnaround:     {stats.mean_turnaround_s():.1f} s",
        f"  wall time:           {wall_s:.2f} s"
        f"  ({sim_per_wall:,.0f} simulated s / wall s)",
    ]
    emit(
        "site_stream", "\n".join(lines),
        metrics=[
            BenchMetric("arrivals_per_day", arrivals_per_day,
                        "jobs/day", direction="higher_better"),
            BenchMetric("sim_seconds_per_wall_second", sim_per_wall,
                        "s/s", direction="higher_better"),
            BenchMetric("wall_s", wall_s, "s", direction="lower_better"),
            BenchMetric("peak_tracked_jobs",
                        float(stats.peak_tracked_jobs), "jobs",
                        direction="lower_better"),
            BenchMetric("mean_turnaround_s", stats.mean_turnaround_s(),
                        "s", direction="two_sided"),
        ],
        params={"rate_per_s": RATE_PER_S, "duration_s": DURATION_S,
                "max_pending": MAX_PENDING, "node_count": NODE_COUNT,
                "budget_w": BUDGET_W,
                "admission_interval_s": ADMISSION_INTERVAL_S,
                "batched_physics": True, "smoke": SMOKE},
        seed=SEED,
    )
