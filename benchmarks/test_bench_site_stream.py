"""Bench: the streaming site engine under sustained Poisson load.

The acceptance benchmark of the event-driven site engine: a rolling
engine fed a Poisson arrival stream whose rate extrapolates to well over
100 000 arrivals per simulated day, with per-job bookkeeping disabled
(``record_jobs=False``) so memory stays bounded by the backpressure
window rather than the arrival count.  The run asserts the memory
contract directly — terminal jobs forgotten, no per-batch records
retained, peak tracked jobs a small multiple of ``max_pending`` — and
records the simulated-time-per-wall-time ratio as the throughput metric.

The arrival stream is seeded, so the arrival count (and therefore the
``arrivals_per_day`` metric) is deterministic; wall-clock metrics vary
by host and are gated only by the very generous perf-trajectory
tolerance in CI.

Under ``REPRO_SMOKE=1`` the simulated window shrinks from one hour to
four minutes (same rate, same contract) so the CI job stays fast.

Writes ``benchmarks/output/site_stream.txt`` and the machine-readable
``BENCH_site_stream.json`` perf-trajectory bundle.
"""

import os
import time

from repro.core.registry import create_policy
from repro.hardware.cluster import Cluster
from repro.io.bench_artifacts import BenchMetric
from repro.stream import SiteStreamEngine, poisson_stream, synthetic_job_factory

SMOKE = os.environ.get("REPRO_SMOKE") == "1"

RATE_PER_S = 2.0
DURATION_S = 240.0 if SMOKE else 3600.0
MAX_PENDING = 64
SEED = 11


def test_sustained_stream_throughput_and_memory(emit):
    cluster = Cluster(node_count=12, variation=None, seed=0)
    engine = SiteStreamEngine(
        cluster, create_policy("StaticCaps"), 2500.0,
        rolling=True, max_pending=MAX_PENDING,
        record_jobs=False, record_batches=False,
    )
    engine.attach_source(poisson_stream(
        RATE_PER_S, DURATION_S, synthetic_job_factory(), seed=SEED
    ))

    start = time.perf_counter()
    stats = engine.run()
    wall_s = time.perf_counter() - start

    arrivals_per_day = stats.arrivals / DURATION_S * 86_400.0
    sim_per_wall = engine.clock / wall_s

    # Sustained-load floor: the stream must represent > 100k arrivals
    # per simulated day, and every accepted job must be accounted for.
    assert arrivals_per_day >= 100_000.0
    assert stats.jobs_completed + stats.jobs_failed == \
        stats.arrivals - stats.rejected

    # Bounded memory: terminal jobs are forgotten, aggregates kept.
    assert len(engine.queue) == 0
    assert engine.batches == []
    assert engine.turnaround_s == {}
    assert stats.peak_tracked_jobs <= 2 * MAX_PENDING
    assert stats.mean_turnaround_s() > 0.0

    lines = [
        "Streaming site engine: sustained Poisson load "
        f"({RATE_PER_S}/s for {DURATION_S:.0f} simulated seconds)",
        "",
        f"  arrivals:            {stats.arrivals}"
        f"  (= {arrivals_per_day:,.0f}/simulated day)",
        f"  completed / failed:  {stats.jobs_completed}"
        f" / {stats.jobs_failed}",
        f"  backpressure drops:  {stats.rejected}"
        f"  (max_pending = {MAX_PENDING})",
        f"  batches executed:    {stats.batches}",
        f"  peak tracked jobs:   {stats.peak_tracked_jobs}",
        f"  mean turnaround:     {stats.mean_turnaround_s():.1f} s",
        f"  wall time:           {wall_s:.2f} s"
        f"  ({sim_per_wall:,.0f} simulated s / wall s)",
    ]
    emit(
        "site_stream", "\n".join(lines),
        metrics=[
            BenchMetric("arrivals_per_day", arrivals_per_day,
                        "jobs/day", direction="higher_better"),
            BenchMetric("sim_seconds_per_wall_second", sim_per_wall,
                        "s/s", direction="higher_better"),
            BenchMetric("wall_s", wall_s, "s", direction="lower_better"),
            BenchMetric("peak_tracked_jobs",
                        float(stats.peak_tracked_jobs), "jobs",
                        direction="lower_better"),
            BenchMetric("mean_turnaround_s", stats.mean_turnaround_s(),
                        "s", direction="two_sided"),
        ],
        params={"rate_per_s": RATE_PER_S, "duration_s": DURATION_S,
                "max_pending": MAX_PENDING, "smoke": SMOKE},
        seed=SEED,
    )
