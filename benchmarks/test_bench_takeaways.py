"""Bench: the paper's §VI takeaways, machine-checked at paper scale.

Runs the takeaway/marker predicates over the full grid and prints the
evidence table — the one-screen summary of whether the reproduction
agrees with every qualitative claim the paper makes.
"""

from repro.analysis.render import render_table
from repro.experiments.takeaways import check_takeaways
from repro.io.bench_artifacts import BenchMetric


def test_takeaways(benchmark, paper_results, emit):
    report = benchmark(check_takeaways, paper_results)

    rows = [
        ["PASS" if report.checks[name] else "FAIL", name, report.evidence[name]]
        for name in report.checks
    ]
    emit(
        "takeaways",
        render_table(["status", "check", "evidence"], rows,
                     title="Paper takeaways and markers, checked at paper scale"),
        metrics=[
            BenchMetric("checks_passed",
                        float(sum(report.checks.values())), "checks",
                        direction="higher_better"),
        ],
        params={"checks_total": len(report.checks)},
    )

    assert report.all_hold(), report.failed()
