"""Bench: regenerate Fig. 2 — anatomy of one bulk-synchronous iteration.

Fig. 2 is the kernel's design schematic: common work, imbalance work on
the critical path, and waiting ranks polling at the barrier.  The bench
reproduces the quantitative version — phase durations for a 50 %-waiting,
2x-imbalance configuration — and checks the slack fraction the schematic
implies (waiting ranks idle for half the iteration at 2x imbalance).
"""

import pytest

from repro.analysis.render import render_table
from repro.experiments.figures import fig2_phase_timeline
from repro.io.bench_artifacts import BenchMetric
from repro.workload.kernel import KernelConfig


def test_fig2_kernel_anatomy(benchmark, emit):
    config = KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=2)
    data = benchmark(fig2_phase_timeline, config)

    slack_fraction = data["slack_time_s"] / data["iteration_time_s"]
    rows = [
        ["Iteration (critical path)", f"{1e3 * data['iteration_time_s']:.1f} ms"],
        ["Common work (waiting ranks)", f"{1e3 * data['common_work_time_s']:.1f} ms"],
        ["Slack / polling phase", f"{1e3 * data['slack_time_s']:.1f} ms"],
        ["Slack fraction", f"{slack_fraction:.0%}"],
        ["Waiting ranks", f"{data['waiting_fraction']:.0%}"],
        ["Imbalance", f"{data['imbalance']:.0f}x"],
    ]
    emit(
        "fig2_kernel_anatomy",
        render_table(["interval", "reproduced"], rows,
                     title="Fig. 2 — synthetic kernel iteration anatomy "
                           "(8 FLOPs/byte, 50% waiting at 2x)"),
        metrics=[
            BenchMetric("iteration_time_ms",
                        1e3 * data["iteration_time_s"], "ms"),
            BenchMetric("slack_fraction", slack_fraction, "fraction"),
        ],
        params={"intensity": 8.0, "waiting_fraction": 0.5, "imbalance": 2},
    )

    # 2x imbalance => non-critical ranks finish in ~half the iteration.
    assert slack_fraction == pytest.approx(0.5, abs=0.05)
