"""Bench: emergency budget-drop response — QoS in exceptional cases.

The paper's conclusion asks for a policy that "works well in the common
case, and minimizes the loss of quality of service in exceptional cases."
This bench drops each mix's budget from max to min mid-stride and
measures, per policy, the slowdown of the blunt stage-1 clamp versus the
stage-2 re-plan — quantifying how much an application-aware policy is
worth precisely when the facility is in trouble.
"""

from repro.analysis.render import render_table
from repro.core.registry import create_policy
from repro.io.bench_artifacts import BenchMetric
from repro.manager.emergency import respond_to_budget_drop
from repro.sim.execution import SimulationOptions


def test_emergency_response(benchmark, paper_grid, emit):
    mixes = ("WastefulPower", "HighPower", "RandomLarge")
    policies = ("StaticCaps", "MixedAdaptive")

    def drill():
        out = {}
        for mix_name in mixes:
            prepared = paper_grid.prepare_mix(mix_name)
            for policy_name in policies:
                response = respond_to_budget_drop(
                    prepared.scheduled,
                    prepared.characterization,
                    create_policy(policy_name),
                    old_budget_w=prepared.budgets.max_w,
                    new_budget_w=prepared.budgets.min_w,
                    model=paper_grid.model,
                    options=SimulationOptions(noise_std=0.0),
                )
                out[(mix_name, policy_name)] = response
        return out

    responses = benchmark.pedantic(drill, rounds=1, iterations=1)

    rows = []
    for (mix_name, policy_name), response in responses.items():
        impact = response.qos_impact()
        rows.append([
            mix_name, policy_name,
            f"{100 * impact['clamp_slowdown']:.1f}%",
            f"{100 * impact['replanned_slowdown']:.1f}%",
            f"{100 * impact['recovered']:.0f}%",
        ])
    mixed_recovered = [
        responses[(mix, "MixedAdaptive")].qos_impact()["recovered"]
        for mix in mixes
    ]
    emit(
        "emergency_response",
        render_table(
            ["mix", "policy", "clamp slowdown", "replanned slowdown",
             "penalty recovered"],
            rows,
            title="Emergency budget drop (max -> min): two-stage response",
        ),
        metrics=[
            BenchMetric("mean_recovered_mixed_adaptive",
                        sum(mixed_recovered) / len(mixed_recovered),
                        "fraction", direction="higher_better"),
            BenchMetric(
                "worst_clamp_slowdown",
                max(r.qos_impact()["clamp_slowdown"]
                    for r in responses.values()),
                "fraction",
            ),
        ],
        params={"mixes": list(mixes), "policies": list(policies)},
    )

    for (mix_name, policy_name), response in responses.items():
        assert response.within_new_budget(), (mix_name, policy_name)
        impact = response.qos_impact()
        # Re-planning never costs materially more than the clamp.  (For
        # StaticCaps it can cost a whisker more: the proportional clamp
        # accidentally preserves per-job differences that the uniform
        # re-plan erases — a finding in its own right.)
        assert impact["replanned_slowdown"] <= impact["clamp_slowdown"] + 0.005

    # Application awareness recovers more of the emergency penalty than
    # the static policy on every drilled mix.
    for mix_name in mixes:
        mixed = responses[(mix_name, "MixedAdaptive")].qos_impact()["recovered"]
        static = responses[(mix_name, "StaticCaps")].qos_impact()["recovered"]
        assert mixed >= static - 1e-9, mix_name
