"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
**paper's full scale** (2 000-node survey, 900-node mixes, 100 iterations)
and both prints the reproduced rows (visible with ``-s``) and writes them
to ``benchmarks/output/<name>.txt`` so the artefacts survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.grid import ExperimentConfig, ExperimentGrid

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def paper_grid() -> ExperimentGrid:
    """The full paper-scale experiment environment (built lazily)."""
    return ExperimentGrid(ExperimentConfig())


@pytest.fixture(scope="session")
def paper_results(paper_grid):
    """The full policy x mix x budget grid at paper scale."""
    return paper_grid.run_all()


@pytest.fixture(scope="session")
def emit():
    """Write a reproduction artefact and echo it to stdout.

    ``metrics`` (a sequence of
    :class:`repro.io.bench_artifacts.BenchMetric`) additionally writes
    the machine-readable ``BENCH_<name>.json`` perf-trajectory bundle at
    the repo root; ``params``/``seed`` record the benchmark's shape for
    the comparator.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str, metrics=None, params=None,
              seed=None) -> Path:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n===== {name} =====\n{text}\n")
        if metrics:
            from benchmarks.artifacts import emit_bench

            emit_bench(name, metrics, params=params, seed=seed)
        return path

    return _emit
