"""Bench: render every SVG figure at paper scale.

Produces the graphical artefacts (``benchmarks/output/figures/*.svg``) a
reader can open next to the paper's figures, and times the full render.
"""

import xml.dom.minidom
from pathlib import Path

from repro.experiments.svg_figures import render_all_figures
from repro.io.bench_artifacts import BenchMetric


def test_svg_figures(benchmark, paper_grid, paper_results, emit):
    out_dir = Path(__file__).parent / "output" / "figures"

    written = benchmark.pedantic(
        render_all_figures,
        args=(paper_grid, out_dir),
        kwargs={"results": paper_results, "heatmap_nodes": 100},
        rounds=1, iterations=1,
    )

    lines = [f"{name}: {path}" for name, path in sorted(written.items())]
    emit(
        "svg_figures", "\n".join(lines),
        metrics=[
            BenchMetric("figures_written", float(len(written)), "figures"),
        ],
        params={"heatmap_nodes": 100},
    )

    assert len(written) == 8
    for path in written.values():
        assert path.exists()
        xml.dom.minidom.parse(str(path))  # well-formed
        assert path.stat().st_size > 1000  # non-trivial content
