"""Bench: batched controller runtime vs the serial feedback loop.

The acceptance benchmark of the batched runtime: the full Fig. 5
characterization sweep — 8 intensities x 7 waiting/imbalance columns =
56 balancer cells on 8 hosts, each converging the real
``PowerBalancerAgent`` under a TDP x hosts budget — run once as 56
serial ``Controller`` loops and once as a single ``ControllerBatch``.
This is the regime the batch was built for: every epoch of the serial
path pays Python-loop and small-array overhead per cell, while the
batch advances all still-active cells through one ``(runs, hosts)``
physics pass and one batched agent step.

Bit-identity between the two paths is asserted unconditionally for
every cell (reports, epochs, and final limits).  The >= 4x speedup
assertion and best-of-N timing are skipped under ``REPRO_SMOKE=1``
(the CI smoke job, which only checks the benchmark still runs).

Writes ``benchmarks/output/controller_batch.txt`` with the measured
timings.
"""

import os
import time

import numpy as np

from repro import telemetry
from repro.hardware.cluster import Cluster
from repro.io.bench_artifacts import BenchMetric
from repro.runtime.batch import ControllerRunSpec, run_controller_batch
from repro.runtime.controller import Controller
from repro.runtime.power_balancer import PowerBalancerAgent
from repro.sim.engine import ExecutionModel
from repro.workload.job import Job
from repro.workload.kernel import WAITING_IMBALANCE_GRID, KernelConfig
from repro.characterization.monitor_runs import DEFAULT_HEATMAP_INTENSITIES

HOSTS = 8
MAX_EPOCHS = 300
SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def _cell_configs():
    return [
        KernelConfig(intensity=intensity, waiting_fraction=waiting,
                     imbalance=imbalance)
        for intensity in DEFAULT_HEATMAP_INTENSITIES
        for waiting, imbalance in WAITING_IMBALANCE_GRID
    ]


def _sweep(model, eff, budget):
    configs = _cell_configs()

    def spec(config):
        job = Job(name=f"bench-{config.label()}", config=config,
                  node_count=HOSTS)
        return job, PowerBalancerAgent(job_budget_w=budget)

    def looped():
        results = []
        for config in configs:
            job, agent = spec(config)
            controller = Controller(job, eff, agent, model=model)
            report = controller.run(max_epochs=MAX_EPOCHS)
            results.append((report, controller.final_limits_w()))
        return results

    def batched():
        specs = [
            ControllerRunSpec(job=job, efficiencies=eff, agent=agent)
            for job, agent in (spec(config) for config in configs)
        ]
        return run_controller_batch(specs, model=model, max_epochs=MAX_EPOCHS)

    return configs, looped, batched


def test_balancer_sweep_batched_vs_looped(emit):
    cluster = Cluster(node_count=HOSTS, variation=None, seed=0)
    eff = cluster.efficiencies
    model = ExecutionModel()
    budget = model.power_model.tdp_w * HOSTS
    repeats = 1 if SMOKE else 3

    with telemetry.disabled():
        configs, looped, batched = _sweep(model, eff, budget)

        # Correctness first, always: every cell bit-identical to serial.
        serial_results = looped()
        batch_result = batched()
        assert len(serial_results) == len(configs)
        for c, (report, limits) in enumerate(serial_results):
            assert report == batch_result.reports[c], configs[c].label()
            np.testing.assert_array_equal(
                limits, batch_result.final_limits_w(c)
            )

        t_loop = min(_timed(looped) for _ in range(repeats))
        t_batch = min(_timed(batched) for _ in range(repeats))

    speedup = t_loop / t_batch
    epochs = batch_result.epochs
    lines = [
        "Batched controller runtime: full Fig. 5 balancer sweep, "
        f"{len(configs)} cells x {HOSTS} hosts",
        "",
        f"convergence: {int(np.min(epochs))}-{int(np.max(epochs))} epochs "
        f"per cell (mean {float(np.mean(epochs)):.1f}), "
        f"{int(np.count_nonzero(batch_result.converged))}/{len(configs)} "
        "converged",
        f"  looped  ({len(configs)}x Controller.run): {t_loop * 1e3:8.2f} ms",
        f"  batched (1x ControllerBatch.run):   {t_batch * 1e3:8.2f} ms",
        f"  speedup: {speedup:.2f}x  (best of {repeats})",
        "  bit-identical to serial: True (all cells, reports + limits)",
    ]
    emit(
        "controller_batch", "\n".join(lines),
        metrics=[
            BenchMetric("speedup", speedup, "x", direction="higher_better"),
            BenchMetric("looped_ms", t_loop * 1e3, "ms",
                        direction="lower_better"),
            BenchMetric("batched_ms", t_batch * 1e3, "ms",
                        direction="lower_better"),
            BenchMetric("mean_epochs", float(np.mean(epochs)), "epochs"),
            BenchMetric(
                "converged_cells",
                float(np.count_nonzero(batch_result.converged)), "cells",
            ),
        ],
        params={"cells": len(configs), "hosts": HOSTS,
                "max_epochs": MAX_EPOCHS, "repeats": repeats,
                "smoke": SMOKE},
        seed=0,
    )
    if not SMOKE:
        assert speedup >= 4.0, (
            f"batched sweep only {speedup:.2f}x faster than the serial loop"
        )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
