"""Bench: hardware-variation sensitivity — what the paper's §V-A2 controls.

The paper runs only on the medium-frequency partition "so that our
results reflect a central tendency of performance".  This study runs the
same mix, budget, and policy on the low / medium / high partitions and an
idealised variation-free cluster, quantifying the spread the selection
step removes.
"""

from repro.analysis.render import render_table
from repro.experiments.sensitivity import variation_sensitivity
from repro.io.bench_artifacts import BenchMetric


def test_variation_study(benchmark, emit):
    outcomes = benchmark.pedantic(
        variation_sensitivity,
        kwargs={"nodes_per_job": 10, "survey_nodes": 1200,
                "budget_per_node_w": 180.0},
        rounds=1, iterations=1,
    )

    rows = []
    for name in ("high", "medium", "novariation", "low"):
        o = outcomes[name]
        rows.append([
            name,
            f"{o['mean_efficiency']:.3f}",
            f"{o['mean_elapsed_s']:.2f} s",
            f"{o['total_energy_j'] / 1e6:.2f} MJ",
        ])
    emit(
        "variation_study",
        render_table(
            ["partition", "mean efficiency", "mean elapsed", "energy"],
            rows,
            title="Variation sensitivity: RandomLarge @ 180 W/node, "
                  "MixedAdaptive",
        ),
        metrics=[
            BenchMetric(f"{name}_elapsed_s",
                        outcomes[name]["mean_elapsed_s"], "s")
            for name in ("high", "medium", "novariation", "low")
        ],
        params={"nodes_per_job": 10, "survey_nodes": 1200,
                "budget_per_node_w": 180.0},
    )

    # Power-inefficient (low-frequency) nodes run strictly slower under
    # the same budget; the medium partition sits between the extremes.
    assert outcomes["low"]["mean_elapsed_s"] > outcomes["medium"]["mean_elapsed_s"]
    assert outcomes["medium"]["mean_elapsed_s"] > outcomes["high"]["mean_elapsed_s"]
    # The idealised cluster tracks the medium partition closely: medium
    # selection is a good stand-in for "no variation".
    med = outcomes["medium"]["mean_elapsed_s"]
    ideal = outcomes["novariation"]["mean_elapsed_s"]
    assert abs(med - ideal) / ideal < 0.05
