"""Bench: the hierarchical facility campaign at 50k-node scale.

The acceptance benchmark of the ``repro.hierarchy`` budget-broker tree:
one :func:`run_facility_campaign` call plans the facility budgets
(trace-driven top allocation, demand-weighted apportioning, feeder-dip
caps on every fourth cluster) and shards the leaf site simulations
across a process pool.  The full run covers the ISSUE/ROADMAP floor of
50 000 nodes in a single command; under ``REPRO_SMOKE=1`` the facility
shrinks to 8 clusters x 800 nodes so the CI job stays fast while still
exercising the trace, the feeder dips, and the sharded path.

The run asserts the determinism contract in-line: a small paired config
must produce bit-identical ``FacilitySimulationResult`` objects under
``workers=1`` and ``workers=2``, and the timed campaign itself is
re-run once and compared ``==`` (best-of-2 wall, identical results).

Writes ``benchmarks/output/facility_campaign.txt`` and the
machine-readable ``BENCH_facility_campaign.json`` perf-trajectory
bundle.
"""

import gc
import os
import time

from repro.experiments.facility_scale import (
    FacilityCampaignConfig,
    run_facility_campaign,
)
from repro.io.bench_artifacts import BenchMetric

SMOKE = os.environ.get("REPRO_SMOKE") == "1"

CLUSTERS = 8 if SMOKE else 16
NODES_PER_CLUSTER = 800 if SMOKE else 3_200
JOBS_PER_CLUSTER = 16 if SMOKE else 48
WORKERS = 2
SEED = 23

CONFIG = FacilityCampaignConfig(
    clusters=CLUSTERS,
    nodes_per_cluster=NODES_PER_CLUSTER,
    jobs_per_cluster=JOBS_PER_CLUSTER,
    seed=SEED,
)


def _timed_run():
    # A collector pause mid-run is measurement noise, not broker cost;
    # deferring collection keeps single-shot timings honest.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run_facility_campaign(CONFIG, workers=WORKERS)
        wall_s = time.perf_counter() - start
    finally:
        gc.enable()
    return result, wall_s


def test_facility_campaign_scale_and_determinism(emit):
    # Warm-up at a fraction of the size: primes numpy dispatch, the
    # layout memos, and the worker pool spawn machinery.
    run_facility_campaign(
        FacilityCampaignConfig(clusters=2, nodes_per_cluster=64,
                               jobs_per_cluster=4, seed=SEED),
        workers=WORKERS,
    )

    # Best-of-2 with an in-run identity assert: the rerun must be
    # bit-identical (the hierarchy's determinism contract), and the
    # minimum wall is the least-contended estimate on shared CI hosts.
    result, wall_s = _timed_run()
    result_again, wall_again = _timed_run()
    assert result == result_again
    wall_s = min(wall_s, wall_again)

    # Scale floor: the full campaign must cover >= 50k nodes in this
    # one command (the smoke config only shrinks, never reshapes).
    if not SMOKE:
        assert result.total_nodes >= 50_000

    # The trace-driven top budget must actually vary across windows,
    # and every epoch's apportioned total must stay within it.
    assert len(set(result.budgets_w)) > 1
    for epoch in range(len(result.epoch_s)):
        assert result.allocated_w(epoch) <= result.budgets_w[epoch] + 1e-6

    # Feeder-dip clusters (every fourth) must show the mid-horizon cap.
    dipped = [c for i, c in enumerate(result.clusters) if i % 4 == 2]
    assert dipped
    for outcome in dipped:
        assert min(outcome.allocations_w) < max(outcome.allocations_w)

    # Every cluster ran real physics: jobs completed, energy consumed.
    completed = result.completed_jobs()
    assert completed > 0
    assert result.total_energy_j > 0.0

    # Shard invariance on a small paired config — workers must never
    # change the result, only the wall clock.
    small = FacilityCampaignConfig(clusters=3, nodes_per_cluster=96,
                                   jobs_per_cluster=6, seed=SEED)
    serial = run_facility_campaign(small, workers=1)
    sharded = run_facility_campaign(small, workers=2)
    assert serial == sharded

    clusters_per_s = CLUSTERS / wall_s
    nodes_per_s = result.total_nodes / wall_s

    lines = [
        "Hierarchical facility campaign: "
        f"{CLUSTERS} clusters x {NODES_PER_CLUSTER} nodes "
        f"(= {result.total_nodes:,} nodes), trace-driven top budget, "
        f"{CONFIG.broker_policy} broker, workers={WORKERS}",
        "",
        f"  nodes simulated:     {result.total_nodes:,}",
        f"  jobs completed:      {completed}",
        f"  epochs planned:      {len(result.epoch_s)}"
        f"  (window = {CONFIG.window_s:.0f} s)",
        f"  stranded power:      {result.stranded_w():,.0f} W"
        " (mean unallocated)",
        f"  total energy:        {result.total_energy_j / 1e6:,.1f} MJ",
        f"  mean turnaround:     {result.mean_turnaround_s():.1f} s",
        f"  wall time:           {wall_s:.2f} s"
        f"  ({clusters_per_s:,.1f} clusters/s,"
        f" {nodes_per_s:,.0f} nodes/s)",
    ]
    emit(
        "facility_campaign", "\n".join(lines),
        metrics=[
            BenchMetric("clusters_per_s", clusters_per_s, "clusters/s",
                        direction="higher_better"),
            BenchMetric("nodes_simulated", float(result.total_nodes),
                        "nodes", direction="two_sided"),
            BenchMetric("jobs_completed", float(completed), "jobs",
                        direction="two_sided"),
            BenchMetric("wall_s", wall_s, "s", direction="lower_better"),
        ],
        params={"clusters": CLUSTERS,
                "nodes_per_cluster": NODES_PER_CLUSTER,
                "jobs_per_cluster": JOBS_PER_CLUSTER,
                "broker_policy": CONFIG.broker_policy,
                "window_s": CONFIG.window_s,
                "horizon_s": CONFIG.horizon_s,
                "workers": WORKERS, "smoke": SMOKE},
        seed=SEED,
    )
