"""Bench: the hierarchical facility campaign at 50k-node scale.

The acceptance benchmark of the ``repro.hierarchy`` budget-broker tree,
now timing **both leaf engines** on the same campaign config: the
sharded engine (one pure task per cluster over a process pool) and the
fused engine (all clusters advanced in lockstep, co-resident batches
routed through shared cross-cluster stacked physics passes).  The full
run covers the ISSUE/ROADMAP floor of 50 000 nodes in a single command;
under ``REPRO_SMOKE=1`` the facility shrinks to 8 clusters x 800 nodes
so the CI job stays fast while still exercising the trace, the feeder
dips, both engines, and the cross-engine identity assert.

Determinism is asserted in-run: the fused result must be ``==`` (bit
identical) to the sharded result, the timed fused campaign is re-run
once and compared ``==`` (best-of-2 wall, identical results), and a
small paired config must agree across ``workers=1`` / ``workers=2`` /
fused.  The headline ``clusters_per_s`` is the fused engine's; the
``fused_speedup`` metric is sharded wall over fused wall on identical
configs, asserted >= 4x on the full (non-smoke) campaign where the
single-core pool tax plus per-cluster scalar physics is the baseline.

Writes ``benchmarks/output/facility_campaign.txt`` and the
machine-readable ``BENCH_facility_campaign.json`` perf-trajectory
bundle.
"""

import gc
import os
import time

from repro.experiments.facility_scale import (
    FacilityCampaignConfig,
    run_facility_campaign,
)
from repro.io.bench_artifacts import BenchMetric

SMOKE = os.environ.get("REPRO_SMOKE") == "1"

CLUSTERS = 8 if SMOKE else 16
NODES_PER_CLUSTER = 800 if SMOKE else 3_200
JOBS_PER_CLUSTER = 16 if SMOKE else 48
WORKERS = 2
SEED = 23

CONFIG = FacilityCampaignConfig(
    clusters=CLUSTERS,
    nodes_per_cluster=NODES_PER_CLUSTER,
    jobs_per_cluster=JOBS_PER_CLUSTER,
    seed=SEED,
)


def _timed_run(engine, workers=WORKERS):
    # A collector pause mid-run is measurement noise, not broker cost;
    # deferring collection keeps single-shot timings honest.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = run_facility_campaign(CONFIG, workers=workers,
                                       engine=engine)
        wall_s = time.perf_counter() - start
    finally:
        gc.enable()
    return result, wall_s


def test_facility_campaign_scale_and_determinism(emit):
    # Warm-up at a fraction of the size: primes numpy dispatch, the
    # layout memos, and the worker pool spawn machinery — both engines.
    warm = FacilityCampaignConfig(clusters=2, nodes_per_cluster=64,
                                  jobs_per_cluster=4, seed=SEED)
    run_facility_campaign(warm, workers=WORKERS)
    run_facility_campaign(warm, engine="fused")

    # The sharded baseline, then the fused engine on the identical
    # config.  Best-of-2 fused with an in-run identity assert: the
    # rerun must be bit-identical (the determinism contract), and the
    # minimum wall is the least-contended estimate on shared CI hosts.
    sharded_result, sharded_wall = _timed_run("sharded")
    result, wall_s = _timed_run("fused")
    result_again, wall_again = _timed_run("fused")
    assert result == result_again
    assert result == sharded_result  # fused ≡ sharded, bit-identical
    wall_s = min(wall_s, wall_again)
    fused_speedup = sharded_wall / wall_s

    # Scale floor: the full campaign must cover >= 50k nodes in this
    # one command (the smoke config only shrinks, never reshapes), and
    # fusing the symmetric 16-cluster campaign into shared stacked
    # passes must pay >= 4x over the sharded baseline.
    if not SMOKE:
        assert result.total_nodes >= 50_000
        assert fused_speedup >= 4.0

    # The trace-driven top budget must actually vary across windows,
    # and every epoch's apportioned total must stay within it.
    assert len(set(result.budgets_w)) > 1
    for epoch in range(len(result.epoch_s)):
        assert result.allocated_w(epoch) <= result.budgets_w[epoch] + 1e-6

    # Feeder-dip clusters (every fourth) must show the mid-horizon cap.
    dipped = [c for i, c in enumerate(result.clusters) if i % 4 == 2]
    assert dipped
    for outcome in dipped:
        assert min(outcome.allocations_w) < max(outcome.allocations_w)

    # Every cluster ran real physics: jobs completed, energy consumed.
    completed = result.completed_jobs()
    assert completed > 0
    assert result.total_energy_j > 0.0

    # Characterization sharing must be doing real work: the fused
    # planner serves the overwhelming majority of same-class
    # characterizations from its facility-wide memo.
    assert result.char_cache_hit_ratio() > 0.5

    # Engine invariance on a small paired config — workers and engine
    # must never change the result, only the wall clock.
    small = FacilityCampaignConfig(clusters=3, nodes_per_cluster=96,
                                   jobs_per_cluster=6, seed=SEED)
    serial = run_facility_campaign(small, workers=1)
    pooled = run_facility_campaign(small, workers=2)
    fused_small = run_facility_campaign(small, engine="fused")
    assert serial == pooled
    assert serial == fused_small

    clusters_per_s = CLUSTERS / wall_s
    nodes_per_s = result.total_nodes / wall_s

    lines = [
        "Hierarchical facility campaign: "
        f"{CLUSTERS} clusters x {NODES_PER_CLUSTER} nodes "
        f"(= {result.total_nodes:,} nodes), trace-driven top budget, "
        f"{CONFIG.broker_policy} broker, fused engine "
        f"(sharded baseline workers={WORKERS})",
        "",
        f"  nodes simulated:     {result.total_nodes:,}",
        f"  jobs completed:      {completed}",
        f"  epochs planned:      {len(result.epoch_s)}"
        f"  (window = {CONFIG.window_s:.0f} s)",
        f"  stranded power:      {result.stranded_w():,.0f} W"
        " (mean unallocated)",
        f"  total energy:        {result.total_energy_j / 1e6:,.1f} MJ",
        f"  mean turnaround:     {result.mean_turnaround_s():.1f} s",
        f"  char cache hits:     {100 * result.char_cache_hit_ratio():.0f}%",
        f"  fused wall time:     {wall_s:.2f} s"
        f"  ({clusters_per_s:,.1f} clusters/s,"
        f" {nodes_per_s:,.0f} nodes/s)",
        f"  sharded wall time:   {sharded_wall:.2f} s"
        f"  (fused speedup {fused_speedup:.1f}x, identical result)",
    ]
    emit(
        "facility_campaign", "\n".join(lines),
        metrics=[
            BenchMetric("clusters_per_s", clusters_per_s, "clusters/s",
                        direction="higher_better"),
            BenchMetric("fused_speedup", fused_speedup, "x",
                        direction="higher_better"),
            BenchMetric("sharded_clusters_per_s", CLUSTERS / sharded_wall,
                        "clusters/s", direction="higher_better"),
            BenchMetric("nodes_simulated", float(result.total_nodes),
                        "nodes", direction="two_sided"),
            BenchMetric("jobs_completed", float(completed), "jobs",
                        direction="two_sided"),
            BenchMetric("wall_s", wall_s, "s", direction="lower_better"),
        ],
        params={"clusters": CLUSTERS,
                "nodes_per_cluster": NODES_PER_CLUSTER,
                "jobs_per_cluster": JOBS_PER_CLUSTER,
                "broker_policy": CONFIG.broker_policy,
                "window_s": CONFIG.window_s,
                "horizon_s": CONFIG.horizon_s,
                "engine": "fused",
                "workers": WORKERS, "smoke": SMOKE},
        seed=SEED,
    )
