"""Bench: regenerate Fig. 3 — the kernel on the platform roofline.

Fig. 3 overlays the kernel's achieved GFLOPS on Intel Advisor's single-
core roofline: DRAM-bound on the left, bounded by the DP vector FMA peak
on the right.  The bench reproduces the envelope and the kernel operating
points and checks the two regimes the paper calls out.
"""

import numpy as np
import pytest

from repro.analysis.render import render_series
from repro.experiments.figures import fig3_roofline_data
from repro.io.bench_artifacts import BenchMetric


def test_fig3_roofline(benchmark, emit):
    data = benchmark(fig3_roofline_data)

    text = render_series(
        data["kernel_intensity"].tolist(),
        {"achieved_gflops": data["kernel_gflops"].tolist()},
        title=(
            "Fig. 3 — kernel operating points on the Advisor roofline\n"
            "ceilings: DRAM 12.44 GB/s | L3 35.18 | L2 84.5 | L1 314.65 GB/s;\n"
            "DP vector FMA 38.49 GFLOPS (paper values)"
        ),
        x_label="intensity",
    )
    emit(
        "fig3_roofline", text,
        metrics=[
            BenchMetric("gflops_dram_bound",
                        float(data["kernel_gflops"][0]), "GFLOPS"),
            BenchMetric("gflops_fma_bound",
                        float(data["kernel_gflops"][-1]), "GFLOPS"),
        ],
        params={"points": int(len(data["kernel_gflops"]))},
    )

    # Left end: DRAM-bound (achieved = intensity * 12.44).
    assert data["kernel_gflops"][0] == pytest.approx(0.25 * 12.44, rel=1e-6)
    # Right end: FMA-bound at the paper's 38.49 GFLOPS ceiling.
    assert data["kernel_gflops"][-1] == pytest.approx(38.49, rel=1e-6)
    # The envelope is the pointwise minimum of DRAM and FMA ceilings.
    env = np.minimum(data["bw:DRAM"], data["compute:dp_vector_fma"])
    np.testing.assert_allclose(data["attainable"], env, rtol=1e-9)
