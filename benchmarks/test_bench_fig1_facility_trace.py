"""Bench: regenerate Fig. 1 — facility power vs the 1.35 MW rating.

The paper's figure shows a year of Quartz telemetry: instantaneous draw,
a one-day moving average near 0.83 MW, and the 1.35 MW rating line.  The
benchmark times the trace generation + analysis and prints the statistics
a reader extracts from the figure.
"""

from repro.analysis.render import render_table
from repro.experiments.figures import fig1_facility_data
from repro.io.bench_artifacts import BenchMetric
from repro.workload.facility import FacilityTraceConfig


def test_fig1_facility_trace(benchmark, emit):
    data = benchmark(fig1_facility_data, FacilityTraceConfig())
    stats = data["statistics"]

    rows = [
        ["Peak power rating", f"{stats['rating_mw']:.2f} MW", "1.35 MW"],
        ["Mean draw", f"{stats['mean_mw']:.2f} MW", "~0.83 MW"],
        ["Mean 1-day average", f"{stats['mean_daily_average_mw']:.2f} MW", "~0.83 MW"],
        ["Peak draw", f"{stats['peak_mw']:.2f} MW", "< rating"],
        ["Mean utilisation", f"{stats['mean_utilization']:.0%}", "~61%"],
        ["Stranded capacity", f"{stats['stranded_power_mw']:.2f} MW", "~0.52 MW"],
    ]
    emit(
        "fig1_facility_trace",
        render_table(["quantity", "reproduced", "paper"], rows,
                     title="Fig. 1 — Quartz facility power (synthetic trace)"),
        metrics=[
            BenchMetric("mean_mw", stats["mean_mw"], "MW"),
            BenchMetric("peak_mw", stats["peak_mw"], "MW"),
            BenchMetric("mean_utilization", stats["mean_utilization"],
                        "fraction"),
            BenchMetric("stranded_power_mw", stats["stranded_power_mw"],
                        "MW"),
        ],
        params={"rating_mw": stats["rating_mw"]},
    )

    assert abs(stats["mean_mw"] - 0.83) < 0.03
    assert stats["peak_mw"] < stats["rating_mw"]
