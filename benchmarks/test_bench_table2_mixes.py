"""Bench: regenerate Table II — the six workload mixes.

The paper's Table II lists each mix's kernel configurations.  The bench
prints the machine-readable equivalent and checks the structural facts the
paper states: nine 100-node jobs per mix (a single 900-node job for
HighImbalance), and each mix's defining property.
"""

from repro.analysis.render import render_table
from repro.experiments.tables import table2_mixes
from repro.io.bench_artifacts import BenchMetric
from repro.workload.mixes import MIX_NAMES


def test_table2_mixes(benchmark, paper_grid, emit):
    rows = benchmark.pedantic(table2_mixes, args=(paper_grid,), rounds=1,
                              iterations=1)

    table_rows = [
        [r["mix"], f"{r['intensity_flop_per_byte']:g}", r["vector"],
         f"{r['waiting_pct']}%", f"{r['imbalance']}x", r["nodes"]]
        for r in rows
    ]
    emit(
        "table2_mixes",
        render_table(
            ["mix", "FLOPs/byte", "vector", "waiting", "imbalance", "nodes"],
            table_rows,
            title="Table II — workloads in each workload mix",
        ),
        metrics=[
            BenchMetric("workload_rows", float(len(rows)), "rows"),
        ],
        params={"mixes": len(MIX_NAMES)},
    )

    by_mix = {name: [r for r in rows if r["mix"] == name] for name in MIX_NAMES}

    # Structure: 9 x 100-node jobs, except HighImbalance's single job.
    for name in MIX_NAMES:
        if name == "HighImbalance":
            assert len(by_mix[name]) == 1
            assert by_mix[name][0]["nodes"] == 900
        else:
            assert len(by_mix[name]) == 9
            assert all(r["nodes"] == 100 for r in by_mix[name])

    # Defining properties.
    assert all(r["imbalance"] == 1 for r in by_mix["NeedUsedPower"])
    assert by_mix["HighImbalance"][0]["imbalance"] == 3
    assert by_mix["HighImbalance"][0]["waiting_pct"] == 75
    assert sum(r["waiting_pct"] >= 50 for r in by_mix["WastefulPower"]) >= 5
    assert all(r["vector"] == "xmm" for r in by_mix["LowPower"])
