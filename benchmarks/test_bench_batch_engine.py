"""Bench: batched scenario engine vs the per-call loop.

The acceptance benchmark of the batched path: a 16-rung uniform-cap
ladder over a 96-host mix, evaluated once as 16 serial ``simulate_mix``
calls and once as a single ``simulate_cap_batch`` pass.  The ladder runs
at the experiment grid's sweep iteration count (10, as in
``ExperimentConfig.small``) — the regime the batch path was built for,
where per-call overhead rather than raw array work dominates the loop.
At 100 iterations with noise both paths are bound by the identical
per-scenario lognormal draw (bit-identity pins the exact RNG stream), so
the ratio shrinks toward 1; the artifact records both shapes.

Bit-identity between the two paths is asserted unconditionally; the
>= 3x speedup assertion and the best-of-5 timing are skipped under
``REPRO_SMOKE=1`` (the CI smoke job, which only checks the benchmark
still runs).

Writes ``benchmarks/output/batch_engine.txt`` with the measured timings.
"""

import dataclasses
import os
import time

import numpy as np

from repro.io.bench_artifacts import BenchMetric
from repro.parallel.seeding import child_seed
from repro.sim.batch import simulate_cap_batch
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig

RUNGS = 16
HOSTS_PER_JOB = 48
ITERATIONS = 10
SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def _ladder_mix(iterations: int) -> WorkloadMix:
    jobs = (
        Job(name="imbalanced",
            config=KernelConfig(intensity=8.0, waiting_fraction=0.5, imbalance=2),
            node_count=HOSTS_PER_JOB, iterations=iterations),
        Job(name="streaming",
            config=KernelConfig(intensity=0.25),
            node_count=HOSTS_PER_JOB, iterations=iterations),
    )
    return WorkloadMix(name=f"bench-ladder-{iterations}", jobs=jobs)


def _run_ladder(iterations: int, repeats: int):
    """Time the looped and batched ladder; assert rung-level bit-identity."""
    mix = _ladder_mix(iterations)
    hosts = mix.total_nodes
    eff = np.random.default_rng(17).uniform(0.9, 1.1, hosts)
    rung_caps = np.linspace(140.0, 240.0, RUNGS)
    seeds = [child_seed(0, index, f"{float(cap)!r}")
             for index, cap in enumerate(rung_caps)]
    options = SimulationOptions(noise_std=0.008, seed=0)
    caps_sw = np.broadcast_to(rung_caps[:, np.newaxis], (RUNGS, hosts))

    def looped():
        return [
            simulate_mix(mix, np.full(hosts, float(cap)), eff, None,
                         dataclasses.replace(options, seed=seed))
            for cap, seed in zip(rung_caps, seeds)
        ]

    def batched():
        return simulate_cap_batch(mix, caps_sw, eff, options=options, seeds=seeds)

    # Correctness first, always: each batched rung bit-identical to serial.
    serial_results = looped()
    batch_results = batched()
    assert all(a == b for a, b in zip(serial_results, batch_results))

    t_loop = min(_timed(looped) for _ in range(repeats))
    t_batch = min(_timed(batched) for _ in range(repeats))
    return hosts, t_loop, t_batch


def test_cap_ladder_batched_vs_looped(emit):
    repeats = 1 if SMOKE else 5
    hosts, t_loop, t_batch = _run_ladder(ITERATIONS, repeats)
    speedup = t_loop / t_batch
    lines = [
        "Batched scenario engine: 16-rung uniform-cap ladder, "
        f"{hosts} hosts, noise_std = 0.008",
        "",
        f"sweep shape ({ITERATIONS} iterations, as in the experiment grid):",
        f"  looped  (16x simulate_mix):      {t_loop * 1e3:8.2f} ms",
        f"  batched (1x simulate_cap_batch): {t_batch * 1e3:8.2f} ms",
        f"  speedup: {speedup:.2f}x  (best of {repeats})",
        "  bit-identical to serial: True",
    ]
    if not SMOKE:
        # The long-iteration shape is RNG-bound on both sides (the noise
        # stream is pinned by the determinism contract), so the ratio is
        # structurally smaller; recorded for honesty, not asserted.
        _, t_loop_long, t_batch_long = _run_ladder(100, repeats)
        lines += [
            "",
            "long shape (100 iterations, noise-generation bound):",
            f"  looped  (16x simulate_mix):      {t_loop_long * 1e3:8.2f} ms",
            f"  batched (1x simulate_cap_batch): {t_batch_long * 1e3:8.2f} ms",
            f"  speedup: {t_loop_long / t_batch_long:.2f}x  (best of {repeats})",
            "  bit-identical to serial: True",
        ]
    emit(
        "batch_engine", "\n".join(lines),
        metrics=[
            BenchMetric("speedup", speedup, "x", direction="higher_better"),
            BenchMetric("looped_ms", t_loop * 1e3, "ms",
                        direction="lower_better"),
            BenchMetric("batched_ms", t_batch * 1e3, "ms",
                        direction="lower_better"),
        ],
        params={"rungs": RUNGS, "hosts": hosts, "iterations": ITERATIONS,
                "repeats": repeats, "smoke": SMOKE},
        seed=0,
    )
    if not SMOKE:
        assert speedup >= 3.0, (
            f"batched ladder only {speedup:.2f}x faster than the loop"
        )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
