"""Bench: the DESIGN.md ablation studies (beyond the paper's grid).

Three sweeps: balancer harvest fraction, MixedAdaptive step-4 weighting,
and characterization-noise sensitivity — the design choices the
reproduction calls out as load-bearing.
"""

from repro.analysis.render import render_table
from repro.experiments.ablations import (
    characterization_noise_sweep,
    harvest_fraction_sweep,
    step4_weighting_ablation,
)
from repro.io.bench_artifacts import BenchMetric


def test_harvest_fraction_sweep(benchmark, paper_grid, emit):
    points = benchmark.pedantic(
        harvest_fraction_sweep, args=(paper_grid,),
        kwargs={"fractions": (0.25, 0.5, 0.75, 1.0)},
        rounds=1, iterations=1,
    )
    rows = [
        [f"{p.value:.2f}", f"{p.time_savings_pct:+.1f}%",
         f"{p.energy_savings_pct:+.1f}%"]
        for p in points
    ]
    emit(
        "ablation_harvest_fraction",
        render_table(
            ["harvest fraction", "time savings", "energy savings"],
            rows,
            title="Ablation — balancer aggressiveness (WastefulPower @ max "
                  "budget, MixedAdaptive vs StaticCaps)",
        ),
        metrics=[
            BenchMetric("time_savings_pct_full_harvest",
                        points[-1].time_savings_pct, "%"),
            BenchMetric("energy_savings_pct_full_harvest",
                        points[-1].energy_savings_pct, "%"),
        ],
        params={"mix": "WastefulPower", "budget_level": "max",
                "fractions": [p.value for p in points]},
    )
    energies = [p.energy_savings_pct for p in points]
    assert energies == sorted(energies), "energy savings must grow with harvest"


def test_step4_weighting(benchmark, paper_grid, emit):
    out = benchmark.pedantic(
        step4_weighting_ablation, args=(paper_grid,), rounds=1, iterations=1
    )
    rows = []
    for level, variants in out.items():
        for variant, (t, e) in variants.items():
            rows.append([level, variant, f"{t:+.1f}%", f"{e:+.1f}%"])
    all_pairs = [
        (t, e) for variants in out.values() for t, e in variants.values()
    ]
    emit(
        "ablation_step4_weighting",
        render_table(
            ["budget", "step-4 surplus", "time savings", "energy savings"],
            rows,
            title="Ablation — MixedAdaptive step-4 weighting (WastefulPower)",
        ),
        metrics=[
            BenchMetric("best_time_savings_pct",
                        max(t for t, _ in all_pairs), "%"),
            BenchMetric("best_energy_savings_pct",
                        max(e for _, e in all_pairs), "%"),
        ],
        params={"mix": "WastefulPower", "variants": len(all_pairs)},
    )
    # Both variants must stay sane at every level.
    for level, variants in out.items():
        for variant, (t, e) in variants.items():
            assert t > -2.0 and e > -5.0, (level, variant)


def test_characterization_noise(benchmark, paper_grid, emit):
    points = benchmark.pedantic(
        characterization_noise_sweep, args=(paper_grid,),
        kwargs={"noise_levels": (0.0, 0.02, 0.05, 0.10)},
        rounds=1, iterations=1,
    )
    rows = [
        [f"{p.value:.0%}", f"{p.time_savings_pct:+.1f}%",
         f"{p.energy_savings_pct:+.1f}%"]
        for p in points
    ]
    emit(
        "ablation_characterization_noise",
        render_table(
            ["characterization noise", "time savings", "energy savings"],
            rows,
            title="Ablation — policy robustness to characterization error "
                  "(RandomLarge @ ideal budget, MixedAdaptive)",
        ),
        metrics=[
            BenchMetric("time_savings_pct_clean",
                        points[0].time_savings_pct, "%"),
            BenchMetric("time_savings_pct_noisiest",
                        points[-1].time_savings_pct, "%"),
        ],
        params={"mix": "RandomLarge", "budget_level": "ideal",
                "noise_levels": [p.value for p in points]},
    )
    clean = points[0]
    assert clean.time_savings_pct > 0
