"""Bench: regenerate Fig. 6 — achieved-frequency clustering of 2000 nodes.

The paper surveys 2 000 nodes under 70 W-per-socket caps with the most
power-hungry configuration, k-means-partitions the achieved frequencies,
and uses the 918-node medium cluster.  The bench reruns the survey and
checks populations (522/918/560) and the frequency band (1.6-1.9 GHz).
"""

import pytest

from repro.analysis.render import render_table
from repro.experiments.figures import fig6_survey_data
from repro.io.bench_artifacts import BenchMetric


def test_fig6_node_clusters(benchmark, paper_grid, emit):
    data = benchmark.pedantic(
        fig6_survey_data, args=(paper_grid,), rounds=1, iterations=1
    )

    paper_counts = {"low": 522, "medium": 918, "high": 560}
    rows = []
    for name in ("low", "medium", "high"):
        cluster = data["clusters"][name]
        rows.append([
            name,
            cluster["count"],
            paper_counts[name],
            f"{cluster['mean_ghz']:.2f}",
            f"{cluster['min_ghz']:.2f}-{cluster['max_ghz']:.2f}",
        ])
    emit(
        "fig6_node_clusters",
        render_table(
            ["cluster", "n (repro)", "n (paper)", "mean GHz", "range GHz"],
            rows,
            title="Fig. 6 — node frequency clusters under 70 W/socket caps",
        ),
        metrics=[
            BenchMetric(f"{name}_count",
                        float(data["clusters"][name]["count"]), "nodes")
            for name in ("low", "medium", "high")
        ] + [
            BenchMetric("medium_mean_ghz",
                        data["clusters"]["medium"]["mean_ghz"], "GHz"),
        ],
        params={"survey_nodes": 2000, "cap_w": 140.0},
    )

    for name in paper_counts:
        assert data["clusters"][name]["count"] == pytest.approx(
            paper_counts[name], abs=30
        ), name
    # Frequency band: the paper's whiskers run ~1.55-2.0 GHz.
    assert data["clusters"]["low"]["min_ghz"] > 1.45
    assert data["clusters"]["high"]["max_ghz"] < 2.1
