"""Bench: telemetry instrumentation overhead on the simulator hot path.

The telemetry subsystem instruments ``simulate_mix`` — the function every
grid cell spends its time in — with a scoped timer, a counter, a gauge,
and one event.  This benchmark times the paper-scale workload (900 hosts,
100 iterations) with telemetry enabled (the default) and disabled, and
pins the relative overhead below 5 % — the budget that justifies leaving
instrumentation on everywhere.
"""

import time

import numpy as np

from repro import telemetry
from repro.io.bench_artifacts import BenchMetric
from repro.sim.execution import SimulationOptions, simulate_mix

#: Accepted instrumentation overhead on the hot path.
OVERHEAD_BUDGET = 0.05


def _best_of(repeats, fn):
    """Minimum wall time over ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_telemetry_overhead_under_budget(paper_grid, emit):
    prepared = paper_grid.prepare_mix("RandomLarge")
    mix = prepared.scheduled.mix
    caps = np.full(mix.total_nodes, 200.0)
    eff = prepared.scheduled.efficiencies
    options = SimulationOptions(seed=1)

    def run():
        simulate_mix(mix, caps, eff, paper_grid.model, options)

    telemetry.reset()
    run()  # warm-up: JIT nothing, but page in arrays and code paths
    repeats = 30
    enabled_s = _best_of(repeats, run)
    with telemetry.disabled():
        disabled_s = _best_of(repeats, run)
    telemetry.reset()

    overhead = enabled_s / disabled_s - 1.0
    text = "\n".join([
        "Telemetry overhead on simulate_mix (900 hosts x 100 iterations)",
        f"best-of-{repeats} telemetry ON : {enabled_s * 1e3:8.3f} ms",
        f"best-of-{repeats} telemetry OFF: {disabled_s * 1e3:8.3f} ms",
        f"relative overhead: {overhead:+.2%} (budget {OVERHEAD_BUDGET:.0%})",
    ])
    emit(
        "telemetry_overhead", text,
        metrics=[
            BenchMetric("relative_overhead", overhead, "fraction",
                        direction="lower_better"),
            BenchMetric("enabled_ms", enabled_s * 1e3, "ms",
                        direction="lower_better"),
            BenchMetric("disabled_ms", disabled_s * 1e3, "ms",
                        direction="lower_better"),
        ],
        params={"repeats": repeats, "hosts": 900, "iterations": 100},
        seed=1,
    )
    assert overhead < OVERHEAD_BUDGET
