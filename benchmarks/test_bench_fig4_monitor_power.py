"""Bench: regenerate Fig. 4 — uncapped CPU power per node (monitor agent).

The paper runs every ymm kernel configuration on 100 test nodes under the
GEOPM monitor agent and reports mean node power per cell.  The bench
regenerates the full 8 x 7 heat map on 100 medium-partition nodes and
checks the calibration against the paper's printed cells.
"""

import numpy as np

from repro.analysis.render import render_heatmap
from repro.experiments.figures import fig4_monitor_heatmap
from repro.io.bench_artifacts import BenchMetric

#: The paper's Fig. 4 ymm heat map, transcribed (W per node).
PAPER_FIG4 = np.array([
    # 0%   25@2x 25@3x 50@2x 50@3x 75@2x 75@3x
    [214, 215, 215, 213, 213, 212, 212],   # 0.25
    [212, 212, 212, 211, 211, 211, 210],   # 0.5
    [209, 210, 210, 209, 209, 209, 209],   # 1
    [213, 214, 214, 213, 213, 212, 212],   # 2
    [223, 223, 223, 221, 220, 219, 217],   # 4
    [232, 231, 230, 228, 226, 225, 222],   # 8
    [222, 221, 221, 220, 218, 218, 216],   # 16
    [216, 214, 215, 214, 213, 213, 211],   # 32
])


def test_fig4_monitor_power(benchmark, paper_grid, emit):
    heatmap = benchmark.pedantic(
        fig4_monitor_heatmap, args=(paper_grid,), kwargs={"test_nodes": 100},
        rounds=1, iterations=1,
    )

    text = render_heatmap(
        [f"{i:g}" for i in heatmap.intensities],
        heatmap.column_labels(),
        heatmap.values,
        title="Fig. 4 — uncapped CPU power per node, ymm (W); paper range 209-232 W",
    )
    deviation = np.abs(heatmap.values - PAPER_FIG4)
    emit(
        "fig4_monitor_power", text,
        metrics=[
            BenchMetric("mean_power_w", float(heatmap.values.mean()), "W"),
            BenchMetric("max_paper_deviation_w", float(deviation.max()),
                        "W", direction="lower_better"),
        ],
        params={"test_nodes": 100, "cells": int(heatmap.values.size)},
    )

    # Cell-level agreement with the paper: within 4 W everywhere.
    assert heatmap.values.shape == PAPER_FIG4.shape
    assert float(deviation.max()) < 4.0, (
        f"worst cell deviates {deviation.max():.1f} W from the paper"
    )
    # Power peaks at intensity 8, as in the paper.
    assert heatmap.intensities[int(np.argmax(heatmap.values[:, 0]))] == 8.0
