"""Bench: continuous budget sweep — the curve behind Figs. 7-8.

The paper samples three budgets; this sweep runs nine between the RAPL
floor and TDP and prints utilisation plus savings at each, exposing the
regions the paper describes: degeneration to StaticCaps near the floor,
the sharing-rich middle, and the inert-surplus top where savings flip
from time to energy.
"""

import numpy as np

from repro.analysis.render import render_table
from repro.experiments.sensitivity import budget_sweep
from repro.io.bench_artifacts import BenchMetric


def test_budget_sweep(benchmark, paper_grid, emit):
    points = benchmark.pedantic(
        budget_sweep, args=(paper_grid,),
        kwargs={"mix_name": "WastefulPower", "points": 9},
        rounds=1, iterations=1,
    )

    by_budget = {}
    for p in points:
        by_budget.setdefault(p.budget_per_node_w, {})[p.policy_name] = p
    rows = []
    for per_node in sorted(by_budget):
        mixed = by_budget[per_node]["MixedAdaptive"]
        static = by_budget[per_node]["StaticCaps"]
        rows.append([
            f"{per_node:.0f}",
            f"{static.utilization:.0%}",
            f"{mixed.utilization:.0%}",
            f"{mixed.time_savings_pct:+.1f}%",
            f"{mixed.energy_savings_pct:+.1f}%",
        ])
    mixed_all = [p for p in points if p.policy_name == "MixedAdaptive"]
    emit(
        "budget_sweep",
        render_table(
            ["W/node", "StaticCaps util", "MixedAdaptive util",
             "time savings", "energy savings"],
            rows,
            title="Budget sweep on WastefulPower (MixedAdaptive vs StaticCaps)",
        ),
        metrics=[
            BenchMetric("peak_time_savings_pct",
                        max(p.time_savings_pct for p in mixed_all), "%"),
            BenchMetric("peak_energy_savings_pct",
                        max(p.energy_savings_pct for p in mixed_all), "%"),
        ],
        params={"mix": "WastefulPower", "points": 9},
    )

    mixed_points = sorted(
        (p for p in points if p.policy_name == "MixedAdaptive"),
        key=lambda p: p.budget_per_node_w,
    )
    # Near the floor the policies converge toward StaticCaps: savings at
    # the first sweep point are small and well below the interior peak.
    assert mixed_points[0].time_savings_pct < 2.0
    assert mixed_points[0].time_savings_pct < max(
        p.time_savings_pct for p in mixed_points
    )
    # Time savings peak strictly inside the sweep, not at either end.
    times = [p.time_savings_pct for p in mixed_points]
    peak = int(np.argmax(times))
    assert 0 < peak < len(times) - 1
    # Energy savings at the top of the sweep beat those at the bottom.
    assert mixed_points[-1].energy_savings_pct > mixed_points[0].energy_savings_pct
    # StaticCaps utilisation falls below 100 % once budgets exceed demand.
    static_points = sorted(
        (p for p in points if p.policy_name == "StaticCaps"),
        key=lambda p: p.budget_per_node_w,
    )
    assert static_points[0].utilization > 0.98
    assert static_points[-1].utilization < 0.95
