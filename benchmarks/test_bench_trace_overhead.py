"""Bench: hierarchical-tracing overhead on the simulator hot path.

The tracing layer wraps every ``simulate_mix`` call in a span that
snapshots wall/CPU clocks and the counter registry on entry and exit.
That cost is fixed per call (~40 us on this class of hardware), so the
honest place to measure it is the same hot path the telemetry-overhead
bench uses: a mix heavy enough that per-call span bookkeeping must stay
in the noise.  The budget is 2 % — the ceiling that justifies leaving
tracing on by default everywhere, including inside the experiment grid
and the site simulator.

Measurement design: single-shot timings on this class of VM carry
multiplicative jitter of the same order as the span cost, so a
best-of-N comparison of independent ON and OFF runs cannot resolve a
2 % budget.  Instead each sample is a *paired* (ON, OFF) run — adjacent
in time so frequency/steal-time drift hits both arms — with the order
alternated to cancel residual drift, GC parked, and the median of the
paired deltas taken to reject scheduler-preemption outliers.

Unlike the smoke-gated speedup benches, the overhead assertion here is
unconditional: CI's perf-trajectory job runs this file *without*
``REPRO_SMOKE`` so the budget is enforced on every push.

Writes ``benchmarks/output/trace_overhead.txt`` and the machine-readable
``BENCH_trace_overhead.json``.
"""

import gc
import statistics
import time

import numpy as np

from repro import telemetry
from repro.io.bench_artifacts import BenchMetric
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig

#: Accepted tracing overhead on the hot path (ISSUE acceptance gate).
OVERHEAD_BUDGET = 0.02

HOSTS_PER_JOB = 192
ITERATIONS = 800
PAIRS = 200


def _overhead_mix() -> WorkloadMix:
    jobs = (
        Job(name="imbalanced",
            config=KernelConfig(intensity=8.0, waiting_fraction=0.5,
                                imbalance=2),
            node_count=HOSTS_PER_JOB, iterations=ITERATIONS),
        Job(name="streaming",
            config=KernelConfig(intensity=0.25),
            node_count=HOSTS_PER_JOB, iterations=ITERATIONS),
    )
    return WorkloadMix(name="trace-overhead", jobs=jobs)


def _paired_deltas(run, pairs):
    """Median (ON - OFF) delta and median OFF wall time, in seconds.

    Each pair times one traced and one untraced run back to back, with
    the order alternated between pairs; deltas within a pair share the
    machine's momentary frequency/steal state, so slow drift cancels and
    the median rejects one-sided preemption outliers.
    """
    deltas, off_times = [], []
    gc.disable()
    try:
        for i in range(pairs):
            first_on = i % 2 == 0
            telemetry.set_tracing(first_on)
            start = time.perf_counter()
            run()
            first = time.perf_counter() - start
            telemetry.set_tracing(not first_on)
            start = time.perf_counter()
            run()
            second = time.perf_counter() - start
            on, off = (first, second) if first_on else (second, first)
            deltas.append(on - off)
            off_times.append(off)
    finally:
        gc.enable()
        telemetry.set_tracing(True)
    return statistics.median(deltas), statistics.median(off_times)


def test_trace_overhead_under_budget(emit):
    mix = _overhead_mix()
    hosts = mix.total_nodes
    caps = np.full(hosts, 200.0)
    eff = np.random.default_rng(17).uniform(0.9, 1.1, hosts)
    options = SimulationOptions(seed=1)

    def run():
        return simulate_mix(mix, caps, eff, None, options)

    telemetry.reset()
    baseline = run()  # warm-up: page in arrays and code paths
    telemetry.set_tracing(False)
    try:
        off_result = run()
    finally:
        telemetry.set_tracing(True)
    telemetry.reset()

    # Tracing is physics-blind: span bookkeeping never touches the RNG,
    # so the simulated result is bit-identical either way.
    assert off_result == baseline

    delta_s, off_s = _paired_deltas(run, PAIRS)
    overhead = delta_s / off_s
    text = "\n".join([
        f"Tracing overhead on simulate_mix ({hosts} hosts x "
        f"{ITERATIONS} iterations)",
        f"median of {PAIRS} paired (on - off) deltas: "
        f"{delta_s * 1e6:+8.1f} us",
        f"median untraced run:                       "
        f"{off_s * 1e3:8.3f} ms",
        f"relative overhead: {overhead:+.2%} (budget {OVERHEAD_BUDGET:.0%})",
    ])
    emit(
        "trace_overhead", text,
        metrics=[
            BenchMetric("relative_overhead", overhead, "fraction",
                        direction="lower_better"),
            BenchMetric("span_delta_us", delta_s * 1e6, "us",
                        direction="lower_better"),
            BenchMetric("untraced_ms", off_s * 1e3, "ms",
                        direction="lower_better"),
        ],
        params={"pairs": PAIRS, "hosts": hosts,
                "iterations": ITERATIONS},
        seed=1,
    )
    assert overhead < OVERHEAD_BUDGET, (
        f"tracing adds {overhead:+.2%} to simulate_mix "
        f"(budget {OVERHEAD_BUDGET:.0%})"
    )
