"""Perf-trajectory emission for the benchmark suites.

Thin wrapper over :mod:`repro.io.bench_artifacts` fixing the output
convention: every suite's machine-readable bundle lands at the repo root
as ``BENCH_<name>.json`` (the humans keep ``benchmarks/output/*.txt``).
CI collects the repo-root bundles and diffs them against the committed
baselines in ``benchmarks/baselines/`` via ``python -m repro
bench-compare``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.io.bench_artifacts import BenchMetric, make_artifact, write_artifact

__all__ = ["REPO_ROOT", "BenchMetric", "emit_bench"]

#: Repo root — where ``BENCH_<name>.json`` bundles are written.
REPO_ROOT = Path(__file__).resolve().parent.parent


def emit_bench(
    name: str,
    metrics: Sequence[BenchMetric],
    params: Optional[Mapping[str, object]] = None,
    seed: Optional[int] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path."""
    bundle = make_artifact(name, metrics, params=params, seed=seed)
    return write_artifact(bundle, REPO_ROOT / f"BENCH_{name}.json")
