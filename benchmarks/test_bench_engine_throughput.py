"""Bench: raw simulator throughput (the classic pytest-benchmark use).

Times the vectorised execution engine on the paper-scale workload — a
900-host mix over 100 bulk-synchronous iterations — and the policy layer
on a full characterization.  These are the two hot paths of the grid.

Each test records its best wall time into a ``BENCH_engine_*.json``
perf-trajectory bundle via its own stopwatch (pytest-benchmark's stats
are unavailable under ``--benchmark-disable``, the CI smoke mode).
"""

import time

import numpy as np

from repro.core.registry import create_policy
from repro.io.bench_artifacts import BenchMetric
from repro.sim.execution import SimulationOptions, simulate_mix


def _stopwatch(fn):
    """Wrap ``fn`` so every call's wall time is collected."""
    times = []

    def wrapper(*args, **kwargs):
        start = time.perf_counter()
        out = fn(*args, **kwargs)
        times.append(time.perf_counter() - start)
        return out

    return wrapper, times


def test_simulate_900_host_mix(benchmark, paper_grid, emit):
    prepared = paper_grid.prepare_mix("RandomLarge")
    mix = prepared.scheduled.mix
    caps = np.full(mix.total_nodes, 200.0)
    eff = prepared.scheduled.efficiencies
    options = SimulationOptions(seed=1)

    timed, times = _stopwatch(simulate_mix)
    result = benchmark(timed, mix, caps, eff, paper_grid.model, options)
    assert result.iteration_times_s.shape == (100, 9)
    emit(
        "engine_simulate_mix",
        f"simulate_mix 900 hosts x 100 iterations: best "
        f"{min(times) * 1e3:.2f} ms over {len(times)} calls",
        metrics=[BenchMetric("best_wall_ms", min(times) * 1e3, "ms",
                             direction="lower_better")],
        params={"hosts": mix.total_nodes, "iterations": 100,
                "calls": len(times)},
        seed=1,
    )


def test_mixed_adaptive_allocation_900_hosts(benchmark, paper_grid, emit):
    prepared = paper_grid.prepare_mix("RandomLarge")
    char = prepared.characterization
    policy = create_policy("MixedAdaptive")
    budget = prepared.budgets.ideal_w

    timed, times = _stopwatch(policy.allocate)
    allocation = benchmark(timed, char, budget)
    assert allocation.within_budget()
    emit(
        "engine_policy_allocate",
        f"MixedAdaptive.allocate over 900 hosts: best "
        f"{min(times) * 1e3:.3f} ms over {len(times)} calls",
        metrics=[BenchMetric("best_wall_ms", min(times) * 1e3, "ms",
                             direction="lower_better")],
        params={"hosts": char.host_count, "policy": "MixedAdaptive",
                "calls": len(times)},
    )


def test_full_characterization_900_hosts(benchmark, paper_grid, emit):
    from repro.characterization.mix_characterization import characterize_mix

    prepared = paper_grid.prepare_mix("HighPower")
    scheduled = prepared.scheduled

    timed, times = _stopwatch(characterize_mix)
    char = benchmark(
        timed, scheduled.mix, scheduled.efficiencies, paper_grid.model
    )
    assert char.host_count == 900
    emit(
        "engine_characterize_mix",
        f"characterize_mix over 900 hosts: best "
        f"{min(times) * 1e3:.2f} ms over {len(times)} calls",
        metrics=[BenchMetric("best_wall_ms", min(times) * 1e3, "ms",
                             direction="lower_better")],
        params={"hosts": char.host_count, "mix": "HighPower",
                "calls": len(times)},
    )
