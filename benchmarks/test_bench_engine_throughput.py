"""Bench: raw simulator throughput (the classic pytest-benchmark use).

Times the vectorised execution engine on the paper-scale workload — a
900-host mix over 100 bulk-synchronous iterations — and the policy layer
on a full characterization.  These are the two hot paths of the grid.
"""

import numpy as np

from repro.core.registry import create_policy
from repro.sim.execution import SimulationOptions, simulate_mix


def test_simulate_900_host_mix(benchmark, paper_grid):
    prepared = paper_grid.prepare_mix("RandomLarge")
    mix = prepared.scheduled.mix
    caps = np.full(mix.total_nodes, 200.0)
    eff = prepared.scheduled.efficiencies
    options = SimulationOptions(seed=1)

    result = benchmark(
        simulate_mix, mix, caps, eff, paper_grid.model, options
    )
    assert result.iteration_times_s.shape == (100, 9)


def test_mixed_adaptive_allocation_900_hosts(benchmark, paper_grid):
    prepared = paper_grid.prepare_mix("RandomLarge")
    char = prepared.characterization
    policy = create_policy("MixedAdaptive")
    budget = prepared.budgets.ideal_w

    allocation = benchmark(policy.allocate, char, budget)
    assert allocation.within_budget()


def test_full_characterization_900_hosts(benchmark, paper_grid):
    from repro.characterization.mix_characterization import characterize_mix

    prepared = paper_grid.prepare_mix("HighPower")
    scheduled = prepared.scheduled

    char = benchmark(
        characterize_mix, scheduled.mix, scheduled.efficiencies, paper_grid.model
    )
    assert char.host_count == 900
