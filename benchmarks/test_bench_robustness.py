"""Bench: policy tournament over randomised mixes (beyond the paper).

Does MixedAdaptive's advantage survive random workload draws, or is it an
artefact of the six constructed mixes?  Twelve random nine-job mixes at
their ideal budgets; per-round winners and mean savings tallied.
"""

from repro.analysis.render import render_table
from repro.experiments.robustness import policy_tournament
from repro.io.bench_artifacts import BenchMetric


def test_policy_tournament(benchmark, emit):
    result = benchmark.pedantic(
        policy_tournament,
        kwargs={"rounds": 12, "nodes_per_job": 10, "iterations": 30},
        rounds=1, iterations=1,
    )

    time_wins = result.win_counts("time")
    energy_wins = result.win_counts("energy")
    time_means = result.mean_savings_pct("time")
    energy_means = result.mean_savings_pct("energy")
    rows = [
        [name, time_wins[name], f"{time_means[name]:+.1f}%",
         energy_wins[name], f"{energy_means[name]:+.1f}%"]
        for name in ("MinimizeWaste", "JobAdaptive", "MixedAdaptive")
    ]
    emit(
        "robustness_tournament",
        render_table(
            ["policy", "time wins", "mean time savings", "energy wins",
             "mean energy savings"],
            rows,
            title="Tournament over 12 random mixes (ideal budgets, vs StaticCaps)",
        ),
        metrics=[
            BenchMetric("mixed_adaptive_time_wins",
                        float(time_wins["MixedAdaptive"]), "rounds",
                        direction="higher_better"),
            BenchMetric("mixed_adaptive_mean_time_savings_pct",
                        time_means["MixedAdaptive"], "%"),
        ],
        params={"rounds": 12, "nodes_per_job": 10, "iterations": 30},
    )

    # MixedAdaptive wins the time metric most often and never strictly
    # loses it by more than half a percent — the paper's integrated-policy
    # claim, generalised beyond the constructed mixes.
    assert time_wins["MixedAdaptive"] == max(time_wins.values())
    assert result.never_strictly_loses("MixedAdaptive", "time",
                                       tolerance_pct=0.5)
    # Application-aware policies dominate the resource-only baseline on
    # average.
    assert time_means["MixedAdaptive"] > time_means["MinimizeWaste"]
    assert energy_means["JobAdaptive"] > energy_means["MinimizeWaste"]
