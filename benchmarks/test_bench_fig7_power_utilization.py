"""Bench: regenerate Fig. 7 — mean power as a percentage of the budget.

One bar per (policy, mix, budget level): how much of the system budget
each policy's execution actually drew.  Checks the paper's annotations:
Precharacterized exceeds the budget except at max (why it is "omitted
from further plots"), marker (a) — job-aware policies draw less under
relaxed limits — and marker (b) — JobAdaptive under-utilises the ideal
budget where system-aware policies fill it.
"""


from repro.analysis.render import render_table
from repro.core.registry import POLICY_NAMES
from repro.experiments.figures import fig7_power_utilization
from repro.io.bench_artifacts import BenchMetric
from repro.workload.mixes import MIX_NAMES


def test_fig7_power_utilization(benchmark, paper_results, emit):
    util = benchmark(fig7_power_utilization, paper_results)

    rows = []
    for mix in MIX_NAMES:
        for level in ("min", "ideal", "max"):
            rows.append(
                [mix, level]
                + [f"{util[mix][level][p]:.0%}" for p in POLICY_NAMES]
            )
    n_mixes = len(MIX_NAMES)
    emit(
        "fig7_power_utilization",
        render_table(
            ["mix", "budget"] + list(POLICY_NAMES),
            rows,
            title="Fig. 7 — mean power used (percent of system budget)",
        ),
        metrics=[
            BenchMetric(
                "mean_util_mixed_adaptive_ideal",
                sum(util[m]["ideal"]["MixedAdaptive"]
                    for m in MIX_NAMES) / n_mixes, "fraction",
            ),
            BenchMetric(
                "mean_overshoot_precharacterized_min",
                sum(util[m]["min"]["Precharacterized"]
                    for m in MIX_NAMES) / n_mixes, "fraction",
            ),
        ],
        params={"mixes": n_mixes, "policies": len(POLICY_NAMES)},
    )

    for mix in MIX_NAMES:
        # Precharacterized ignores the budget: over 100 % except at max.
        assert util[mix]["min"]["Precharacterized"] > 1.0, mix
        assert util[mix]["max"]["Precharacterized"] <= 1.0, mix
        # Marker (a): at max, application-aware policies draw no more
        # than the baseline.
        assert (
            util[mix]["max"]["MixedAdaptive"]
            <= util[mix]["max"]["StaticCaps"] + 1e-9
        ), mix
        # System-aware policies never exceed the budget.
        for level in ("min", "ideal", "max"):
            for policy in ("StaticCaps", "MinimizeWaste", "JobAdaptive",
                           "MixedAdaptive"):
                assert util[mix][level][policy] <= 1.0 + 1e-6, (mix, level, policy)

    # Marker (b): JobAdaptive under-utilises the ideal budget somewhere
    # that MixedAdaptive fills.
    assert any(
        util[mix]["ideal"]["JobAdaptive"]
        < util[mix]["ideal"]["MixedAdaptive"] - 1e-3
        for mix in MIX_NAMES
    )
