"""Bench: regenerate Fig. 5 — needed power per node (power balancer agent).

Under the balancer with a TDP-level budget, hosts off the critical path
settle at the minimum power that preserves iteration time; the heat map
shows the resulting mean node power.  The paper's signature observations,
checked here: vertical bands (needed power drops with the waiting-rank
percentage), mid-intensity cells showing the biggest reductions, and every
cell at or below its Fig. 4 counterpart.
"""

import numpy as np
import pytest

from repro.analysis.render import render_heatmap
from repro.experiments.figures import fig4_monitor_heatmap, fig5_balancer_heatmap
from repro.io.bench_artifacts import BenchMetric

#: Selected cells from the paper's Fig. 5 (W per node).
PAPER_FIG5_CELLS = {
    (0.25, 0.0, 1): 214,
    (1.0, 0.0, 1): 207,
    (8.0, 0.25, 2): 213,
    (8.0, 0.5, 2): 199,
    (8.0, 0.75, 3): 191,
    (16.0, 0.75, 3): 190,
    (32.0, 0.5, 2): 190,
}


def test_fig5_balancer_power(benchmark, paper_grid, emit):
    heatmap = benchmark.pedantic(
        fig5_balancer_heatmap, args=(paper_grid,), kwargs={"test_nodes": 100},
        rounds=1, iterations=1,
    )

    text = render_heatmap(
        [f"{i:g}" for i in heatmap.intensities],
        heatmap.column_labels(),
        heatmap.values,
        title="Fig. 5 — needed CPU power per node, ymm (W); paper range 186-222 W",
    )
    emit(
        "fig5_balancer_power", text,
        metrics=[
            BenchMetric("mean_needed_power_w",
                        float(np.mean(heatmap.values)), "W"),
            BenchMetric("min_needed_power_w",
                        float(np.min(heatmap.values)), "W"),
        ],
        params={"test_nodes": 100, "cells": int(heatmap.values.size)},
    )

    # Selected paper cells within 10 W.
    for (intensity, waiting, imbalance), watts in PAPER_FIG5_CELLS.items():
        cell = heatmap.cell(intensity, waiting, imbalance)
        assert cell == pytest.approx(watts, abs=10.0), (intensity, waiting, imbalance)

    # Vertical bands: monotone decrease with waiting percentage at 2x.
    cols = list(heatmap.columns)
    band = [cols.index(c) for c in [(0.0, 1), (0.25, 2), (0.5, 2), (0.75, 2)]]
    for row in heatmap.values:
        assert all(row[a] >= row[b] for a, b in zip(band, band[1:]))

    # Every cell at or below the monitor heat map.
    monitor = fig4_monitor_heatmap(paper_grid, test_nodes=100)
    assert np.all(heatmap.values <= monitor.values + 1e-6)
