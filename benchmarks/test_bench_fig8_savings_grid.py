"""Bench: regenerate Fig. 8 — the four savings metrics vs StaticCaps.

The paper's headline grid: time savings, energy savings, EDP savings, and
FLOPS/W increase for the three dynamic policies over six mixes and three
budgets, with 95 % CIs over 100 iterations.  Checks the lettered markers
and the abstract's "up to 7 % time / up to 11 % energy" headlines.
"""

import numpy as np

from repro.analysis.render import render_table
from repro.experiments.figures import fig8_savings_grid
from repro.io.bench_artifacts import BenchMetric
from repro.workload.mixes import MIX_NAMES

POLICIES = ("MinimizeWaste", "JobAdaptive", "MixedAdaptive")


def test_fig8_savings_grid(benchmark, paper_results, emit):
    grid = benchmark(fig8_savings_grid, paper_results)

    rows = []
    for mix in MIX_NAMES:
        for level in ("min", "ideal", "max"):
            for policy in POLICIES:
                s = grid[(mix, level, policy)]
                rows.append([
                    mix, level, policy,
                    f"{100 * s.time_savings.mean:+.1f}±{100 * s.time_savings.half_width:.1f}",
                    f"{100 * s.energy_savings.mean:+.1f}±{100 * s.energy_savings.half_width:.1f}",
                    f"{100 * s.edp_savings.mean:+.1f}",
                    f"{100 * s.flops_per_watt_increase.mean:+.1f}",
                ])
    best_time = max(s.time_savings.mean for s in grid.values())
    best_energy = max(s.energy_savings.mean for s in grid.values())
    emit(
        "fig8_savings_grid",
        render_table(
            ["mix", "budget", "policy", "time %", "energy %", "EDP %", "FLOPS/W %"],
            rows,
            title="Fig. 8 — savings vs StaticCaps (mean ± 95% CI over 100 iters)",
        ),
        metrics=[
            BenchMetric("best_time_savings", best_time, "fraction"),
            BenchMetric("best_energy_savings", best_energy, "fraction"),
        ],
        params={"cells": len(grid)},
    )

    # Headlines: "up to 7% reduction in system time and up to 11% savings
    # in energy" — same order of magnitude, same winners.
    assert 0.05 <= best_time <= 0.12, f"best time savings {best_time:.1%}"
    assert 0.08 <= best_energy <= 0.16, f"best energy savings {best_energy:.1%}"

    # Marker (d): at the max budget on WastefulPower, MixedAdaptive's
    # energy savings are the grid's standout (>= 9 %).
    d = grid[("WastefulPower", "max", "MixedAdaptive")]
    assert d.energy_savings.mean > 0.09

    # Marker (c): at the ideal budget on NeedUsedPower, MinimizeWaste
    # saves at least as much time as JobAdaptive.
    c_waste = grid[("NeedUsedPower", "ideal", "MinimizeWaste")]
    c_job = grid[("NeedUsedPower", "ideal", "JobAdaptive")]
    assert c_waste.time_savings.mean >= c_job.time_savings.mean - 0.002

    # Takeaway 4: NeedUsedPower shows no energy-saving opportunity.
    nup = max(
        grid[("NeedUsedPower", lvl, pol)].energy_savings.mean
        for lvl in ("min", "ideal", "max")
        for pol in POLICIES
    )
    assert nup < 0.02

    # Trends: time savings shrink and energy savings grow with the budget
    # (MixedAdaptive, averaged over mixes).
    def level_mean(metric, level):
        return float(np.mean([
            getattr(grid[(m, level, "MixedAdaptive")], metric).mean
            for m in MIX_NAMES
        ]))

    assert level_mean("time_savings", "min") > level_mean("time_savings", "max")
    assert level_mean("energy_savings", "max") > level_mean("energy_savings", "min")
