"""Bench: regenerate Table III — min/ideal/max power budgets per mix.

The paper derives three budgets per mix from the characterizations and
footnotes "TDP of all CPUs is 216 kW".  The bench prints the reproduced
kW values next to the paper's and checks ordering plus range agreement.
"""

import pytest

from repro.analysis.render import render_table
from repro.experiments.tables import table3_budgets
from repro.io.bench_artifacts import BenchMetric

#: The paper's Table III (kW).
PAPER_TABLE3 = {
    "NeedUsedPower": (167, 171, 209),
    "HighImbalance": (141, 163, 209),
    "WastefulPower": (136, 144, 209),
    "LowPower": (138, 152, 209),
    "HighPower": (140, 177, 209),
    "RandomLarge": (139, 164, 209),
}


def test_table3_budgets(benchmark, paper_grid, emit):
    rows = benchmark.pedantic(table3_budgets, args=(paper_grid,), rounds=1,
                              iterations=1)

    table_rows = []
    for row in rows:
        paper = PAPER_TABLE3[row["mix"]]
        table_rows.append([
            row["mix"],
            f"{row['min_kw']:.0f} ({paper[0]})",
            f"{row['ideal_kw']:.0f} ({paper[1]})",
            f"{row['max_kw']:.0f} ({paper[2]})",
            f"{row['total_tdp_kw']:.0f} (216)",
        ])
    emit(
        "table3_budgets",
        render_table(
            ["mix", "min kW (paper)", "ideal kW (paper)", "max kW (paper)",
             "TDP kW (paper)"],
            table_rows,
            title="Table III — power budgets for each workload mix",
        ),
        metrics=[
            BenchMetric("mean_min_kw",
                        sum(r["min_kw"] for r in rows) / len(rows), "kW"),
            BenchMetric("mean_ideal_kw",
                        sum(r["ideal_kw"] for r in rows) / len(rows), "kW"),
            BenchMetric("mean_max_kw",
                        sum(r["max_kw"] for r in rows) / len(rows), "kW"),
        ],
        params={"mixes": len(rows)},
    )

    for row in rows:
        # Ordering invariant.
        assert row["min_kw"] <= row["ideal_kw"] <= row["max_kw"]
        # The TDP footnote is exact: 900 nodes x 240 W.
        assert row["total_tdp_kw"] == pytest.approx(216.0)
        # Range agreement with the paper: min within [135, 170] kW,
        # ideal within [140, 195] kW, max within [185, 216] kW (the
        # paper's max is 209 kW everywhere; our LowPower mix is all-xmm,
        # whose hungriest node sits a little lower — see EXPERIMENTS.md).
        assert 135.0 <= row["min_kw"] <= 170.0, row["mix"]
        assert 140.0 <= row["ideal_kw"] <= 195.0, row["mix"]
        assert 185.0 <= row["max_kw"] <= 216.0, row["mix"]
