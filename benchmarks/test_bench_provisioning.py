"""Bench: the over-provisioning curve behind the paper's motivation.

For a fixed 216 kW facility budget (the Table III TDP footnote), sweep
fleet sizes from TDP-provisioned (900 nodes, uncapped) toward
floor-provisioned (~1588 nodes, maximally capped) for a compute-bound and
a memory-bound workload.  For fleet-parallel throughput both curves rise
monotonically — capped nodes are more energy-proportional than uncapped
ones — with the memory-bound gain far larger; that monotone gain is the
economic case for the over-provisioned, policy-managed operation the
paper's stack enables (paper §I and ref [7]).
"""

from repro.analysis.render import render_table
from repro.experiments.provisioning import overprovisioning_curve
from repro.io.bench_artifacts import BenchMetric
from repro.workload.kernel import KernelConfig

FACILITY_W = 216_000.0  # Table III footnote: TDP of all CPUs


def test_overprovisioning_curve(benchmark, emit):
    compute_bound = KernelConfig(intensity=32.0)
    memory_bound = KernelConfig(intensity=0.25)

    def sweep():
        return (
            overprovisioning_curve(compute_bound, FACILITY_W, points=12),
            overprovisioning_curve(memory_bound, FACILITY_W, points=12),
        )

    cpu_curve, mem_curve = benchmark(sweep)

    rows = []
    for point_cpu, point_mem in zip(cpu_curve.points, mem_curve.points):
        rows.append([
            point_cpu.nodes,
            f"{point_cpu.cap_per_node_w:.0f} W",
            f"{point_cpu.fleet_gflops / 1e3:.1f}",
            f"{point_mem.fleet_gflops / 1e3:.1f}",
        ])
    emit(
        "provisioning_curve",
        render_table(
            ["nodes", "cap/node", "compute-bound TFLOPS",
             "memory-bound TFLOPS"],
            rows,
            title=f"Fleet throughput at a fixed {FACILITY_W / 1e3:.0f} kW "
                  "facility budget",
        ),
        metrics=[
            BenchMetric("cpu_gain_over_tdp",
                        cpu_curve.gain_over_tdp_provisioning(), "fraction"),
            BenchMetric("mem_gain_over_tdp",
                        mem_curve.gain_over_tdp_provisioning(), "fraction"),
        ],
        params={"facility_w": FACILITY_W, "points": 12},
    )

    # Over-provisioning beats TDP sizing for both workload classes.
    assert cpu_curve.gain_over_tdp_provisioning() > 0.05
    assert mem_curve.gain_over_tdp_provisioning() > 0.05
    # For fleet-parallel throughput the gain is monotone in fleet size
    # (capped nodes are more energy-proportional than uncapped ones)...
    cpu_tput = [p.fleet_gflops for p in cpu_curve.points]
    assert all(b >= a for a, b in zip(cpu_tput, cpu_tput[1:]))
    # ...and memory-bound workloads, nearly cap-insensitive, gain the most.
    assert (
        mem_curve.gain_over_tdp_provisioning()
        > cpu_curve.gain_over_tdp_provisioning() + 0.1
    )
    # Per-node performance falls as caps tighten (nothing is free).
    assert (
        cpu_curve.points[-1].per_node_gflops
        < cpu_curve.points[0].per_node_gflops
    )