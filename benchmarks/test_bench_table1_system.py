"""Bench: regenerate Table I — Quartz system properties."""

from repro.analysis.render import render_table
from repro.experiments.tables import table1_system_properties
from repro.io.bench_artifacts import BenchMetric

PAPER_TABLE1 = {
    "CPU": "Intel Xeon E5-2695, dual-socket",
    "Cores Per Node": "36",
    "Thermal Design Power": "120 W per CPU socket",
    "Minimum RAPL Limit": "68 W per CPU socket",
    "Base Frequency": "2.1 GHz",
}


def test_table1_system_properties(benchmark, emit):
    table = benchmark(table1_system_properties)

    rows = [[k, table[k], PAPER_TABLE1[k]] for k in PAPER_TABLE1]
    emit(
        "table1_system_properties",
        render_table(["property", "reproduced", "paper"], rows,
                     title="Table I — Quartz system properties"),
        metrics=[
            BenchMetric("cores_per_node", float(table["Cores Per Node"]),
                        "cores"),
        ],
    )

    assert table["Cores Per Node"] == PAPER_TABLE1["Cores Per Node"]
    assert table["Thermal Design Power"] == PAPER_TABLE1["Thermal Design Power"]
    assert table["Minimum RAPL Limit"] == PAPER_TABLE1["Minimum RAPL Limit"]
    assert table["Base Frequency"] == PAPER_TABLE1["Base Frequency"]
    assert "E5-2695" in table["CPU"]
