"""Bench: parallel execution and characterization-cache speedup (Fig. 8 grid).

Before/after wall-clock comparison of the three execution modes on the
paper-scale Fig. 8 savings grid, with the non-negotiable invariant that
every mode produces **byte-identical grid report output**:

* ``serial / uncached`` — the baseline every earlier PR ran.
* ``warm cache`` — a second run against a populated on-disk
  characterization cache (``repro.parallel.cache``): every
  characterize/simulate call is a hit, so the grid pays only
  orchestration and decode.  This is the speedup a re-analysis,
  an online re-planning loop, or a replayed shift sees.
* ``--workers 4`` — the process-pool fan-out.  Its wall-clock gain
  scales with available cores (the recorded artefact includes the host
  core count; on a single-core container the pool cannot beat serial
  and the asserted floor applies to the cache instead).

The physics per cell grows with ``iterations``; 300 iterations keeps the
cell compute realistically heavy relative to the fixed orchestration
cost, matching how the cache is used at paper scale and above.
"""

import dataclasses
import os
import time

from repro.analysis.render import render_table
from repro.experiments.grid import ExperimentConfig, ExperimentGrid
from repro.experiments.metrics import savings_grid
from repro.io.bench_artifacts import BenchMetric
from repro.io.serialize import save_grid_results
from repro.parallel import activate_cache, deactivate_cache
from repro.workload.mixes import MIX_NAMES

HEAVY_ITERATIONS = 300
WORKERS = 4


def _savings_report(results):
    """The Fig. 8 savings table rendered to text (the grid report)."""
    savings = savings_grid(results)
    rows = []
    for key in sorted(savings):
        s = savings[key]
        rows.append([
            *key,
            f"{100 * s.time_savings.mean:+.3f}",
            f"{100 * s.energy_savings.mean:+.3f}",
        ])
    return render_table(
        ["mix", "budget", "policy", "time %", "energy %"], rows,
        title="Fig. 8 savings vs StaticCaps",
    )


def _timed_grid_run(config, workers=1):
    grid = ExperimentGrid(config)
    start = time.perf_counter()
    results = grid.run_all(workers=workers)
    report = _savings_report(results)
    return time.perf_counter() - start, results, report


def test_parallel_and_cache_speedup(emit, tmp_path):
    config = dataclasses.replace(ExperimentConfig(),
                                 iterations=HEAVY_ITERATIONS)
    cache_dir = tmp_path / "cache"

    serial_s, serial_results, serial_report = _timed_grid_run(config)

    pooled_s, pooled_results, pooled_report = _timed_grid_run(
        config, workers=WORKERS
    )

    try:
        cache = activate_cache(cache_dir=cache_dir)
        prime_s, _, _ = _timed_grid_run(config)   # populates the store
        warm_s, warm_results, warm_report = _timed_grid_run(config)
        stats = cache.stats()
    finally:
        deactivate_cache()

    # ------------------------------------------------------------------
    # Correctness before speed: every mode, byte-identical report + CSV.
    assert pooled_report == serial_report
    assert warm_report == serial_report
    serial_csv = save_grid_results(serial_results, tmp_path / "serial.csv")
    pooled_csv = save_grid_results(pooled_results, tmp_path / "pooled.csv")
    warm_csv = save_grid_results(warm_results, tmp_path / "warm.csv")
    assert pooled_csv.read_bytes() == serial_csv.read_bytes()
    assert warm_csv.read_bytes() == serial_csv.read_bytes()
    for key in serial_results.cells:
        assert pooled_results.cells[key].run.result == \
            serial_results.cells[key].run.result
        assert warm_results.cells[key].run.result == \
            serial_results.cells[key].run.result

    # ------------------------------------------------------------------
    # Speed: the warm cache must at least halve the grid's wall clock.
    cache_speedup = serial_s / warm_s
    pool_speedup = serial_s / pooled_s
    cores = os.cpu_count() or 1
    assert cache_speedup >= 2.0, (
        f"warm-cache run only {cache_speedup:.2f}x faster "
        f"({serial_s:.3f}s -> {warm_s:.3f}s)"
    )
    if cores >= WORKERS:
        assert pool_speedup >= 2.0, (
            f"--workers {WORKERS} only {pool_speedup:.2f}x faster on "
            f"{cores} cores ({serial_s:.3f}s -> {pooled_s:.3f}s)"
        )

    cells = len(MIX_NAMES) * 3 * 5
    emit(
        "parallel_speedup",
        render_table(
            ["mode", "wall s", "speedup", "identical output"],
            [
                ["serial, uncached", f"{serial_s:.3f}", "1.00x", "baseline"],
                [f"--workers {WORKERS} ({cores} core(s))",
                 f"{pooled_s:.3f}", f"{pool_speedup:.2f}x", "yes"],
                ["cold cache (miss + store)", f"{prime_s:.3f}",
                 f"{serial_s / prime_s:.2f}x", "yes"],
                ["warm cache (all hits)", f"{warm_s:.3f}",
                 f"{cache_speedup:.2f}x", "yes"],
            ],
            title=(
                f"Fig. 8 savings grid ({cells} cells, "
                f"{HEAVY_ITERATIONS} iterations): execution modes "
                f"[cache {stats['hits']} hits / {stats['misses']} misses]"
            ),
        ),
        metrics=[
            BenchMetric("cache_speedup", cache_speedup, "x",
                        direction="higher_better"),
            BenchMetric("pool_speedup", pool_speedup, "x",
                        direction="higher_better"),
            BenchMetric("serial_s", serial_s, "s", direction="lower_better"),
        ],
        params={"cells": cells, "iterations": HEAVY_ITERATIONS,
                "workers": WORKERS, "cores": cores},
        seed=0,
    )
