"""Power-balancer characterization: the paper's Fig. 5 heat map.

"We obtain Metric-(b) by observing the actual power consumed by each
workload when subjected to an average power budget equal to the total TDP
of each node ... using the GEOPM power balancer agent" (§IV-B).  Under the
balancer, hosts off the critical path are throttled down to the power that
just preserves the job's iteration time, so the measured mean power is the
workload's *needed* power.

Two paths are provided:

* :func:`needed_caps_for_job` / :func:`balancer_heatmap` — the analytic
  steady state (shared physics with
  :func:`~repro.characterization.mix_characterization.characterize_mix`);
* :func:`balancer_power_for_config` — the authentic feedback loop through
  :class:`~repro.runtime.power_balancer.PowerBalancerAgent`, used by the
  test suite to validate the analytic path and by users who want to watch
  the balancer converge.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.hardware.cluster import Cluster
from repro.runtime.controller import Controller
from repro.runtime.power_balancer import BalancerOptions, PowerBalancerAgent
from repro.sim.engine import ExecutionModel
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import (
    WAITING_IMBALANCE_GRID,
    KernelConfig,
    Precision,
    VectorWidth,
)
from repro.characterization.monitor_runs import DEFAULT_HEATMAP_INTENSITIES, HeatmapGrid

__all__ = [
    "needed_caps_for_job",
    "balancer_power_for_config",
    "balancer_heatmap",
    "balancer_heatmap_runtime",
]


def needed_caps_for_job(
    job: Job,
    efficiencies: np.ndarray,
    model: Optional[ExecutionModel] = None,
) -> np.ndarray:
    """Analytic balancer steady state: per-host needed power for one job.

    Wraps the mix-level characterization for the single-job case and
    returns the per-host needed power (W), already bounded by the floor
    consumption and the unconstrained draw.
    """
    from repro.characterization.mix_characterization import characterize_mix

    mix = WorkloadMix(name=job.name, jobs=(job,))
    char = characterize_mix(mix, efficiencies, model)
    return char.needed_power_w.copy()


def balancer_power_for_config(
    config: KernelConfig,
    cluster: Cluster,
    node_ids: Sequence[int],
    model: Optional[ExecutionModel] = None,
    options: Optional[BalancerOptions] = None,
    max_epochs: int = 300,
) -> Tuple[float, np.ndarray]:
    """Run the real balancer feedback loop for one configuration.

    The job budget is TDP x hosts (the paper's Fig. 5 operating point).
    Returns ``(mean node power at steady state, per-host steady powers)``.
    """
    ids = np.asarray(node_ids, dtype=int)
    model = model if model is not None else ExecutionModel()
    options = options if options is not None else BalancerOptions()
    job = Job(name=f"balance-{config.label()}", config=config,
              node_count=int(ids.size), iterations=max_epochs)
    budget = model.power_model.tdp_w * ids.size
    agent = PowerBalancerAgent(job_budget_w=budget, options=options)
    controller = Controller(
        job=job,
        efficiencies=cluster.efficiencies[ids],
        agent=agent,
        model=model,
    )
    controller.run(max_epochs=max_epochs)
    steady = controller.steady_state_sample()
    return float(np.mean(steady.host_power_w)), np.asarray(steady.host_power_w)


def balancer_heatmap(
    cluster: Cluster,
    node_ids: Sequence[int],
    vector: VectorWidth = VectorWidth.YMM,
    intensities: Sequence[float] = DEFAULT_HEATMAP_INTENSITIES,
    columns: Sequence[Tuple[float, int]] = WAITING_IMBALANCE_GRID,
    model: Optional[ExecutionModel] = None,
    precision: Precision = Precision.DOUBLE,
) -> HeatmapGrid:
    """The full Fig. 5 grid via the analytic steady state.

    Cell value = mean node power when the configuration runs under the
    power balancer with a TDP-level budget: critical-path hosts draw their
    unconstrained power, waiting hosts draw the minimum that preserves the
    iteration time (plus barrier polling at the reduced limit).

    All cells are evaluated as one batch: the per-cell layouts stack into
    an ``(S, hosts)`` :class:`~repro.sim.batch.LayoutBatch`, both
    characterization passes and the deterministic cap execution run once
    over the scenario axis, and each cell value is bit-identical to the
    former per-cell ``characterize_mix`` + ``simulate_mix`` loop.
    """
    from repro.characterization.mix_characterization import (
        DEFAULT_HARVEST_FRACTION,
        _apply_harvest,
        _characterization_arrays,
    )
    from repro.sim.batch import stack_layouts
    from repro.sim.execution import DEFAULT_OPTIONS, _execute_scenarios

    model = model if model is not None else ExecutionModel()
    ids = np.asarray(node_ids, dtype=int)
    eff = cluster.efficiencies[ids]
    layouts = []
    for intensity in intensities:
        for waiting, imbalance in columns:
            config = KernelConfig(
                intensity=intensity,
                vector=vector,
                precision=precision,
                waiting_fraction=waiting,
                imbalance=imbalance,
            )
            job = Job(name="cell", config=config, node_count=int(ids.size), iterations=1)
            layouts.append(WorkloadMix(name="cell", jobs=(job,)).layout())
    batch = stack_layouts(layouts)
    monitor_power, theoretical = _characterization_arrays(model, batch, eff)
    _, needed_cap = _apply_harvest(
        monitor_power, theoretical, DEFAULT_HARVEST_FRACTION, model.power_model
    )
    # Measured power under the balancer's converged caps: run the
    # deterministic execution with needed caps applied.
    out = _execute_scenarios(
        batch, needed_cap, eff, model, n_iter=1, noise_std=0.0,
        barrier_overhead_s=DEFAULT_OPTIONS.barrier_overhead_s,
        seeds=[0] * batch.scenario_count,
    )
    values = np.mean(out.host_mean_power, axis=1).reshape(
        len(intensities), len(columns)
    )
    return HeatmapGrid(
        title=f"Needed CPU power per node ({vector.value}, power balancer agent)",
        intensities=tuple(intensities),
        columns=tuple(columns),
        values=values,
    )


def balancer_heatmap_runtime(
    cluster: Cluster,
    node_ids: Sequence[int],
    vector: VectorWidth = VectorWidth.YMM,
    intensities: Sequence[float] = DEFAULT_HEATMAP_INTENSITIES,
    columns: Sequence[Tuple[float, int]] = WAITING_IMBALANCE_GRID,
    model: Optional[ExecutionModel] = None,
    precision: Precision = Precision.DOUBLE,
    options: Optional[BalancerOptions] = None,
    max_epochs: int = 300,
) -> HeatmapGrid:
    """The full Fig. 5 grid through the *authentic* balancer feedback loop.

    Every cell converges the real :class:`PowerBalancerAgent` under a
    TDP x hosts budget, exactly as :func:`balancer_power_for_config` does,
    but all cells advance in lockstep through one
    :class:`~repro.runtime.batch.ControllerBatch`; converged cells freeze
    while stragglers keep iterating.  Cell ``(r, c)`` is bit-identical to
    the per-cell serial helper, so the test suite can validate the
    feedback-loop grid against the analytic :func:`balancer_heatmap` at
    every cell instead of a sampled handful.
    """
    from repro.runtime.batch import ControllerRunSpec, run_controller_batch

    model = model if model is not None else ExecutionModel()
    options = options if options is not None else BalancerOptions()
    ids = np.asarray(node_ids, dtype=int)
    eff = cluster.efficiencies[ids]
    budget = model.power_model.tdp_w * ids.size
    specs = []
    for intensity in intensities:
        for waiting, imbalance in columns:
            config = KernelConfig(
                intensity=intensity,
                vector=vector,
                precision=precision,
                waiting_fraction=waiting,
                imbalance=imbalance,
            )
            job = Job(
                name=f"balance-{config.label()}", config=config,
                node_count=int(ids.size), iterations=max_epochs,
            )
            specs.append(
                ControllerRunSpec(
                    job=job,
                    efficiencies=eff,
                    agent=PowerBalancerAgent(job_budget_w=budget, options=options),
                )
            )
    result = run_controller_batch(specs, model=model, max_epochs=max_epochs)
    values = np.array(
        [
            float(np.mean(result.steady_state_sample(c).host_power_w))
            for c in range(result.run_count)
        ]
    ).reshape(len(intensities), len(columns))
    return HeatmapGrid(
        title=f"Needed CPU power per node ({vector.value}, power balancer "
              "agent, feedback loop)",
        intensities=tuple(intensities),
        columns=tuple(columns),
        values=values,
    )
