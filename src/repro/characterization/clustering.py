"""Hardware-variation survey and k-means node selection (paper Fig. 6).

"We first monitored the achieved frequency of each node in the cluster
while running our most power-hungry workload configurations under a low
power limit.  We used k-means clustering over the achieved frequencies to
partition the nodes into three groups" (§V-A2).  The paper then uses the
918 medium-frequency nodes of 2 000 surveyed so results reflect central-
tendency hardware.

The 1-D k-means here is a small exact-update Lloyd's iteration —
deterministic given the initial centroids (placed at the min / median /
max of the data), which keeps the node selection reproducible without
depending on scipy's RNG behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.hardware.cluster import Cluster
from repro.sim.engine import ExecutionModel

__all__ = ["kmeans_1d", "FrequencySurvey", "survey_and_cluster"]


def kmeans_1d(
    values: np.ndarray,
    k: int = 3,
    max_iters: int = 200,
) -> Tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm on 1-D data with quantile-spread initial centroids.

    Returns ``(labels, centroids)`` with centroids sorted ascending and
    labels numbered accordingly (0 = lowest-centroid cluster).  Raises if
    the data cannot support ``k`` distinct clusters.
    """
    x = np.asarray(values, dtype=float).ravel()
    if x.size < k:
        raise ValueError(f"need at least {k} samples for k={k}")
    if np.unique(x).size < k:
        raise ValueError(f"data has fewer than {k} distinct values")
    quantiles = np.linspace(0.0, 1.0, k)
    centroids = np.quantile(x, quantiles)
    for _ in range(max_iters):
        labels = np.argmin(np.abs(x[:, None] - centroids[None, :]), axis=1)
        new_centroids = centroids.copy()
        for j in range(k):
            members = x[labels == j]
            if members.size:
                new_centroids[j] = members.mean()
        if np.allclose(new_centroids, centroids, rtol=0, atol=1e-12):
            break
        centroids = new_centroids
    order = np.argsort(centroids)
    remap = np.empty(k, dtype=int)
    remap[order] = np.arange(k)
    return remap[labels], centroids[order]


@dataclass(frozen=True)
class FrequencySurvey:
    """Outcome of the Fig. 6 survey on one cluster.

    ``labels`` numbers clusters by ascending centroid frequency:
    0 = low, 1 = medium, 2 = high (for the default k=3).
    """

    frequencies_ghz: np.ndarray
    labels: np.ndarray
    centroids_ghz: np.ndarray
    cap_w: float
    kappa: float

    def cluster_sizes(self) -> Dict[str, int]:
        """Cluster populations, keyed low/medium/high for k=3."""
        names = self._names()
        return {
            names[j]: int(np.sum(self.labels == j))
            for j in range(self.centroids_ghz.size)
        }

    def cluster_node_ids(self, name: str) -> np.ndarray:
        """Node ids belonging to the named cluster."""
        names = self._names()
        try:
            j = names.index(name)
        except ValueError:
            raise KeyError(f"unknown cluster {name!r}; have {names}") from None
        return np.flatnonzero(self.labels == j)

    def _names(self):
        k = self.centroids_ghz.size
        if k == 3:
            return ["low", "medium", "high"]
        return [f"cluster{j}" for j in range(k)]


def survey_and_cluster(
    cluster: Cluster,
    cap_w: float = 140.0,
    kappa: float = 1.0,
    k: int = 3,
    model: Optional[ExecutionModel] = None,
) -> FrequencySurvey:
    """Run the Fig. 6 survey: frequencies under a low cap, then k-means.

    Defaults follow the paper: 70 W per socket (140 W per node) with the
    most power-hungry configuration (activity factor 1).
    """
    freqs = cluster.survey_frequencies(cap_w, kappa)
    labels, centroids = kmeans_1d(freqs, k=k)
    return FrequencySurvey(
        frequencies_ghz=freqs,
        labels=labels,
        centroids_ghz=centroids,
        cap_w=float(cap_w),
        kappa=float(kappa),
    )
