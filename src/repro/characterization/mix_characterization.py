"""Per-mix characterization bundle: the policies' complete input.

Every policy in the paper is a pure function of (a) the system power
budget and (b) characterization data from GEOPM reports: the observed
unconstrained power per host (monitor agent) and the performance-aware
needed power per host (power balancer).  :class:`MixCharacterization`
carries exactly those arrays, plus the per-job index structure, so the
policy layer depends on nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.engine import ExecutionModel
from repro.telemetry import emit, timed
from repro.workload.job import HostLayout, WorkloadMix

__all__ = [
    "MixCharacterization",
    "characterize_mix",
    "characterize_mix_batch",
    "DEFAULT_HARVEST_FRACTION",
]

#: Fraction of the theoretical slack (observed power minus the power that
#: just preserves the critical path) the balancer actually harvests.
#: Calibrated against the paper's Fig. 5: e.g. at 8 FLOPs/byte with 75 %
#: waiting ranks at 3x imbalance, waiting nodes could theoretically drop
#: from ~220 W to the ~137 W floor, but the measured cell (191 W job mean,
#: i.e. ~181 W on waiting nodes) shows GEOPM's feedback loop stopping
#: roughly halfway — it cuts in bounded steps with a safety margin around
#: the critical path and holds where further cuts risk epoch-time noise.
DEFAULT_HARVEST_FRACTION = 0.5


@dataclass(frozen=True)
class MixCharacterization:
    """Characterization arrays for one mix on its allocated hosts.

    Attributes
    ----------
    mix_name:
        The characterized mix.
    job_boundaries:
        Host-block offsets per job (with final sentinel), as in
        :class:`~repro.workload.job.HostLayout`.
    monitor_power_w:
        Per-host mean power observed in the unconstrained monitor run
        (paper metric (a)).
    needed_power_w:
        Per-host steady-state power under the power balancer — the
        minimum power that preserves the job's critical path (metric (b)).
    needed_cap_w:
        ``needed_power_w`` clamped into the settable RAPL range: the cap a
        policy programs to grant exactly the needed power.
    min_cap_w / tdp_w:
        Node-level RAPL floor and ceiling, recorded so policies and budget
        derivation share one source of truth.
    """

    mix_name: str
    job_boundaries: np.ndarray
    monitor_power_w: np.ndarray
    needed_power_w: np.ndarray
    needed_cap_w: np.ndarray
    min_cap_w: float
    tdp_w: float

    def __post_init__(self) -> None:
        n = self.monitor_power_w.size
        if self.needed_power_w.size != n or self.needed_cap_w.size != n:
            raise ValueError("characterization arrays must share one host count")
        if int(self.job_boundaries[-1]) != n:
            raise ValueError("job_boundaries sentinel must equal host count")

    # ------------------------------------------------------------------
    @property
    def host_count(self) -> int:
        """Hosts across the mix."""
        return int(self.monitor_power_w.size)

    @property
    def job_count(self) -> int:
        """Jobs in the mix."""
        return int(self.job_boundaries.size - 1)

    def host_job_index(self) -> np.ndarray:
        """Job index per host (reconstructed from the boundaries)."""
        counts = np.diff(self.job_boundaries)
        return np.repeat(np.arange(self.job_count), counts)

    def job_slice(self, job: int) -> slice:
        """Host slice of one job's block."""
        if not 0 <= job < self.job_count:
            raise IndexError(f"job {job} out of range")
        return slice(int(self.job_boundaries[job]), int(self.job_boundaries[job + 1]))

    # --- per-job aggregates the policies use ---------------------------
    def job_max_monitor_power_w(self) -> np.ndarray:
        """Per job: the most power-hungry host's observed power.

        ``Precharacterized`` submits each job with exactly this cap, and
        the max budget of Table III provisions this much for every node.
        """
        return np.maximum.reduceat(self.monitor_power_w, self.job_boundaries[:-1])

    def job_total_needed_w(self) -> np.ndarray:
        """Per job: sum of needed power over its hosts."""
        return np.add.reduceat(self.needed_power_w, self.job_boundaries[:-1])

    def waste_w(self) -> np.ndarray:
        """Per host: observed-minus-needed power — the harvestable waste."""
        return np.maximum(self.monitor_power_w - self.needed_power_w, 0.0)


def _characterization_arrays(
    model: ExecutionModel, layout, eff: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Both characterization physics passes for one layout.

    Returns ``(monitor_power, theoretical)``: the unconstrained observed
    power per host (metric (a)) and the minimum power that preserves each
    job's critical path, clipped into the feasible band (the idealised
    metric (b) before harvest-fraction conservatism is applied).

    ``layout`` may be a :class:`~repro.workload.job.HostLayout` or a
    :class:`~repro.sim.batch.LayoutBatch`; every step broadcasts over
    leading scenario axes, so ``(S, hosts)`` layouts yield ``(S, hosts)``
    arrays bit-identical per scenario slice to the serial computation.
    """
    pm = model.power_model

    # --- metric (a): unconstrained observed power ----------------------
    tdp_caps = np.full(layout.kappa.shape, pm.tdp_w)
    freq_unc = model.frequencies(tdp_caps, layout, eff)
    t_unc = model.compute_time(freq_unc, layout)
    p_compute_unc = pm.power_at_freq(freq_unc, layout.kappa, eff)
    p_poll_unc = model.poll_power(tdp_caps, layout, eff)
    t_crit = np.maximum.reduceat(t_unc, layout.job_boundaries[:-1], axis=-1)
    t_crit_per_host = t_crit[..., layout.job_index]
    slack = np.maximum(t_crit_per_host - t_unc, 0.0)
    monitor_power = (p_compute_unc * t_unc + p_poll_unc * slack) / t_crit_per_host

    # --- metric (b): minimum power preserving the critical path --------
    needed_compute_power = model.required_power(layout, t_crit_per_host, eff)
    floor_caps = np.full(layout.kappa.shape, pm.min_cap_w)
    floor_freq = model.frequencies(floor_caps, layout, eff)
    floor_power = pm.power_at_freq(floor_freq, layout.kappa, eff)
    theoretical = np.clip(needed_compute_power, floor_power, monitor_power)
    return monitor_power, theoretical


def _apply_harvest(
    monitor_power: np.ndarray, theoretical: np.ndarray,
    harvest_fraction: float, pm,
) -> Tuple[np.ndarray, np.ndarray]:
    """Conservative harvest: ``(needed_power, needed_cap)`` for one fraction.

    The balancer recovers only a calibrated fraction of the
    observed-minus-theoretical slack (see :data:`DEFAULT_HARVEST_FRACTION`).
    """
    needed_power = monitor_power - harvest_fraction * (monitor_power - theoretical)
    return needed_power, pm.clamp_cap(needed_power)


@timed("characterization.characterize_mix_s")
def characterize_mix(
    mix: WorkloadMix,
    efficiencies: np.ndarray,
    model: Optional[ExecutionModel] = None,
    harvest_fraction: float = DEFAULT_HARVEST_FRACTION,
) -> MixCharacterization:
    """Run both characterizations for a mix (analytic steady states).

    The monitor characterization is the deterministic unconstrained run:
    every host at TDP, mean power read off the steady state.  The balancer
    characterization computes, per job, the critical-path iteration time at
    unconstrained speed and then each host's minimum power to meet it (the
    converged balancer operating point; validated against the feedback
    loop in the test suite).

    ``harvest_fraction`` models the balancer's conservatism (see
    :data:`DEFAULT_HARVEST_FRACTION`): the recorded needed power is the
    observed power minus that fraction of the theoretical slack.  Pass 1.0
    for an idealised balancer that cuts all the way to the critical path.

    Needed power is bounded above by the observed power (a host never
    *needs* more than it draws unconstrained) and below by what the node
    consumes at the RAPL floor.

    When a :func:`~repro.parallel.cache.active_cache` is installed, the
    characterization is memoized under a content hash of (mix spec,
    efficiencies, model parameters, harvest fraction); repeated grid
    cells and online re-planning rounds then skip the physics entirely.
    A :func:`~repro.parallel.char_store.active_char_store`, consulted
    after the name-keyed cache, additionally shares characterizations
    across *differently named* mixes of the same job shapes (the label
    is rewritten to this mix's name; every numeric field round-trips
    bit-exactly).
    """
    if not 0.0 < harvest_fraction <= 1.0:
        raise ValueError("harvest_fraction must be in (0, 1]")
    model = model if model is not None else ExecutionModel()
    from repro.parallel.cache import active_cache
    from repro.parallel.char_store import active_char_store

    cache = active_cache()
    cache_key = None
    if cache is not None:
        cache_key = cache.key(
            "char", mix, np.asarray(efficiencies, dtype=float), model,
            float(harvest_fraction),
        )
        payload = cache.get(cache_key)
        if payload is not None:
            from repro.io.serialize import characterization_from_dict

            return characterization_from_dict(payload)
    store = active_char_store()
    store_key = None
    if store is not None:
        store_key = store.key_for(mix, efficiencies, model, harvest_fraction)
        payload = store.get(store_key)
        if payload is not None:
            import dataclasses as _dc

            from repro.io.serialize import characterization_from_dict

            shared = characterization_from_dict(payload)
            if shared.mix_name == mix.name:
                return shared
            return _dc.replace(shared, mix_name=mix.name)
    layout: HostLayout = mix.layout()
    eff = np.asarray(efficiencies, dtype=float)
    if eff.shape != (layout.host_count,):
        raise ValueError(
            f"efficiencies must have shape ({layout.host_count},), got {eff.shape}"
        )
    pm = model.power_model
    monitor_power, theoretical = _characterization_arrays(model, layout, eff)
    needed_power, needed_cap = _apply_harvest(
        monitor_power, theoretical, harvest_fraction, pm
    )

    emit(
        "characterization.mix", "mix_characterized",
        mix=mix.name, hosts=layout.host_count,
        jobs=int(layout.job_boundaries.size - 1),
        mean_monitor_w=float(np.mean(monitor_power)),
        mean_needed_w=float(np.mean(needed_power)),
        harvest_fraction=harvest_fraction,
    )
    char = MixCharacterization(
        mix_name=mix.name,
        job_boundaries=layout.job_boundaries.copy(),
        monitor_power_w=monitor_power,
        needed_power_w=needed_power,
        needed_cap_w=needed_cap,
        min_cap_w=pm.min_cap_w,
        tdp_w=pm.tdp_w,
    )
    if (cache is not None and cache_key is not None) or store_key is not None:
        from repro.io.serialize import characterization_to_dict

        payload = characterization_to_dict(char)
        if cache is not None and cache_key is not None:
            cache.put(cache_key, payload)
        if store is not None and store_key is not None:
            store.put(store_key, payload)
    return char


@timed("characterization.characterize_mix_batch_s")
def characterize_mix_batch(
    mix: WorkloadMix,
    efficiencies: np.ndarray,
    harvest_fractions: Sequence[float],
    model: Optional[ExecutionModel] = None,
) -> List[MixCharacterization]:
    """Characterize one mix at a ladder of harvest fractions in one pass.

    The two physics passes (monitor observation and the critical-path
    minimum) do not depend on the harvest fraction, so a fraction ladder
    needs them exactly once; each rung then applies its conservatism
    factor to the shared arrays.  Rung ``i`` is bit-identical to
    ``characterize_mix(mix, efficiencies, model, harvest_fractions[i])``.

    Per-rung cache entries are looked up and stored under the same keys
    the serial path uses, so batched and serial characterizations share
    the content-addressed cache.
    """
    fractions = [float(f) for f in harvest_fractions]
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("harvest_fraction must be in (0, 1]")
    model = model if model is not None else ExecutionModel()
    layout: HostLayout = mix.layout()
    eff = np.asarray(efficiencies, dtype=float)
    if eff.shape != (layout.host_count,):
        raise ValueError(
            f"efficiencies must have shape ({layout.host_count},), got {eff.shape}"
        )
    from repro.parallel.cache import active_cache

    cache = active_cache()
    results: List[Optional[MixCharacterization]] = [None] * len(fractions)
    keys: List[Optional[str]] = [None] * len(fractions)
    misses = list(range(len(fractions)))
    if cache is not None:
        from repro.io.serialize import characterization_from_dict

        misses = []
        for i, fraction in enumerate(fractions):
            keys[i] = cache.key("char", mix, eff, model, fraction)
            payload = cache.get(keys[i])
            if payload is not None:
                results[i] = characterization_from_dict(payload)
            else:
                misses.append(i)

    if misses:
        pm = model.power_model
        monitor_power, theoretical = _characterization_arrays(model, layout, eff)
        for i in misses:
            needed_power, needed_cap = _apply_harvest(
                monitor_power, theoretical, fractions[i], pm
            )
            results[i] = MixCharacterization(
                mix_name=mix.name,
                job_boundaries=layout.job_boundaries.copy(),
                monitor_power_w=monitor_power.copy(),
                needed_power_w=needed_power,
                needed_cap_w=needed_cap,
                min_cap_w=pm.min_cap_w,
                tdp_w=pm.tdp_w,
            )
        if cache is not None:
            from repro.io.serialize import characterization_to_dict

            for i in misses:
                cache.put(keys[i], characterization_to_dict(results[i]))
    emit(
        "characterization.mix", "mix_batch_characterized",
        mix=mix.name, hosts=layout.host_count,
        rungs=len(fractions), cache_hits=len(fractions) - len(misses),
    )
    return results  # type: ignore[return-value]
