"""System power budget derivation — the paper's Table III.

Three budgets per workload mix, representing degrees of over-provisioning
(§V-C):

``min``
    Aggressively over-provisioned: "the workload in the mix [that] has the
    least power consumed by a single node under the performance-aware
    characterization", provisioned for every node.  Below this cap every
    policy degenerates to ``StaticCaps``.
``ideal``
    "Summing the power used by each node for all workloads in the mix, as
    determined by the performance-aware characterization" — exactly enough
    to meet every host's needed power, so cross-job sharing is maximally
    valuable.
``max``
    Conservatively over-provisioned: "which workload in the mix has the
    most power consumed by a single node under the uncapped
    characterization", provisioned for every node.  Above this cap every
    policy can allocate at least ``Precharacterized`` levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization

__all__ = ["PowerBudgets", "derive_budgets"]

#: Budget level names in the paper's presentation order.
BUDGET_LEVELS = ("min", "ideal", "max")


@dataclass(frozen=True)
class PowerBudgets:
    """The three Table III budgets for one mix, in watts."""

    mix_name: str
    min_w: float
    ideal_w: float
    max_w: float
    total_tdp_w: float

    def __post_init__(self) -> None:
        if not self.min_w <= self.ideal_w <= self.max_w:
            raise ValueError(
                f"budgets must be ordered min <= ideal <= max, got "
                f"{self.min_w} / {self.ideal_w} / {self.max_w}"
            )

    def by_level(self) -> Dict[str, float]:
        """Budgets keyed by level name."""
        return {"min": self.min_w, "ideal": self.ideal_w, "max": self.max_w}

    def as_kilowatts(self) -> Dict[str, float]:
        """Table III row: budgets plus the TDP footnote value, in kW."""
        return {
            "min": self.min_w / 1e3,
            "ideal": self.ideal_w / 1e3,
            "max": self.max_w / 1e3,
            "tdp": self.total_tdp_w / 1e3,
        }


def derive_budgets(char: MixCharacterization) -> PowerBudgets:
    """Compute the Table III budgets from a mix characterization.

    ``min`` provisions every node with "the least power consumed by a
    single node under the performance-aware characterization" — the
    smallest per-host needed power in the mix.  ``ideal`` is the exact sum
    of needed powers; ``max`` provisions every node with the single most
    power-hungry node's observed draw.  The ordering
    ``min <= ideal <= max`` holds by construction: the mean of needed
    powers is at least their minimum, and needed power never exceeds
    observed power.
    """
    n = char.host_count
    min_w = float(np.min(char.needed_power_w)) * n
    # Per-job maximum of per-node observed power, then the most over jobs.
    max_w = float(np.max(char.job_max_monitor_power_w())) * n
    ideal_w = float(np.sum(char.needed_power_w))
    # With identical hosts the three rules agree mathematically but can
    # disagree by one ulp (sum vs min*n round differently); re-impose the
    # exact ordering.
    ideal_w = max(ideal_w, min_w)
    max_w = max(max_w, ideal_w)
    return PowerBudgets(
        mix_name=char.mix_name,
        min_w=min_w,
        ideal_w=ideal_w,
        max_w=max_w,
        total_tdp_w=char.tdp_w * n,
    )
