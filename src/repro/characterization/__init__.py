"""Pre-characterization pipeline: the paper's §IV-B / §V-C inputs.

The paper emulates an execution-time feedback loop between the job runtime
and the resource manager by *pre-characterizing* every workload (§VIII:
"we emulated this execution time behavior by pre-characterizing our
workloads and determining the steady-state power management properties
ahead of time").  This subpackage performs that pipeline:

* :mod:`.monitor_runs` — metric (a): maximum (unconstrained) power per
  workload, via monitor-agent runs (Fig. 4 heat map).
* :mod:`.balancer_runs` — metric (b): minimum power each workload needs,
  via power-balancer steady states (Fig. 5 heat map), with both the
  analytic fast path and the feedback-loop slow path.
* :mod:`.clustering` — the Fig. 6 hardware-variation survey: achieved
  frequency of every node under a low cap, k-means partitioned into
  low/medium/high clusters; experiments use the medium cluster.
* :mod:`.budgets` — Table III: the min/ideal/max system power budgets
  derived per mix from the two characterizations.
* :mod:`.mix_characterization` — the bundle of per-host arrays
  (observed power, needed power/cap) every policy consumes.
"""

from repro.characterization.mix_characterization import (
    MixCharacterization,
    characterize_mix,
)
from repro.characterization.monitor_runs import (
    monitor_heatmap,
    monitor_heatmap_runtime,
    monitor_power_for_config,
    HeatmapGrid,
)
from repro.characterization.balancer_runs import (
    balancer_heatmap,
    balancer_heatmap_runtime,
    balancer_power_for_config,
    needed_caps_for_job,
)
from repro.characterization.clustering import (
    kmeans_1d,
    survey_and_cluster,
    FrequencySurvey,
)
from repro.characterization.budgets import PowerBudgets, derive_budgets

__all__ = [
    "MixCharacterization",
    "characterize_mix",
    "monitor_heatmap",
    "monitor_heatmap_runtime",
    "monitor_power_for_config",
    "HeatmapGrid",
    "balancer_heatmap",
    "balancer_heatmap_runtime",
    "balancer_power_for_config",
    "needed_caps_for_job",
    "kmeans_1d",
    "survey_and_cluster",
    "FrequencySurvey",
    "PowerBudgets",
    "derive_budgets",
]
