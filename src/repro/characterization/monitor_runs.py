"""Monitor-agent characterization: the paper's Fig. 4 heat map.

"We obtain Metric-(a) by executing each workload with the GEOPM monitor
agent across 100 test nodes" (§IV-B).  Each heat-map cell is the mean node
power of one kernel configuration (intensity row x waiting/imbalance
column) running unconstrained on the ymm variant.

:func:`monitor_power_for_config` runs one such characterization through
the runtime controller (the authentic path); :func:`monitor_heatmap`
produces the full grid using the fast analytic steady state, which the
test suite verifies agrees with the controller path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.hardware.cluster import Cluster
from repro.runtime.controller import Controller
from repro.runtime.monitor import MonitorAgent
from repro.sim.engine import ExecutionModel
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import (
    INTENSITY_GRID,
    WAITING_IMBALANCE_GRID,
    KernelConfig,
    Precision,
    VectorWidth,
)

__all__ = [
    "HeatmapGrid",
    "monitor_power_for_config",
    "monitor_heatmap",
    "monitor_heatmap_runtime",
]

#: Default heat-map axes (paper Figs. 4/5: eight intensities, seven columns).
DEFAULT_HEATMAP_INTENSITIES: Tuple[float, ...] = tuple(
    i for i in INTENSITY_GRID if i > 0.0
)


@dataclass(frozen=True)
class HeatmapGrid:
    """A characterization heat map (intensity rows x waiting/imbalance cols)."""

    title: str
    intensities: Tuple[float, ...]
    columns: Tuple[Tuple[float, int], ...]
    values: np.ndarray  # shape (len(intensities), len(columns))

    def __post_init__(self) -> None:
        expected = (len(self.intensities), len(self.columns))
        if self.values.shape != expected:
            raise ValueError(f"values must have shape {expected}, got {self.values.shape}")

    def column_labels(self) -> Tuple[str, ...]:
        """Labels matching the paper's figure columns."""
        return tuple(
            KernelConfig.grid_column_label(w, m) for (w, m) in self.columns
        )

    def cell(self, intensity: float, waiting: float, imbalance: int) -> float:
        """One cell by its paper coordinates."""
        try:
            r = self.intensities.index(intensity)
            c = self.columns.index((waiting, imbalance))
        except ValueError:
            raise KeyError(
                f"no cell intensity={intensity} waiting={waiting} imbalance={imbalance}"
            ) from None
        return float(self.values[r, c])


def monitor_power_for_config(
    config: KernelConfig,
    cluster: Cluster,
    node_ids: Sequence[int],
    model: Optional[ExecutionModel] = None,
    epochs: int = 5,
) -> float:
    """Mean node power of one configuration, via a monitor-agent run.

    Runs the runtime controller with the monitor agent (no limit changes)
    over ``epochs`` iterations on the given test nodes and averages the
    per-host mean powers from the resulting GEOPM-style report — exactly
    the paper's measurement procedure.
    """
    ids = np.asarray(node_ids, dtype=int)
    job = Job(name=f"characterize-{config.label()}", config=config,
              node_count=int(ids.size), iterations=epochs)
    controller = Controller(
        job=job,
        efficiencies=cluster.efficiencies[ids],
        agent=MonitorAgent(),
        model=model,
    )
    report = controller.run(max_epochs=epochs, min_epochs=epochs)
    return float(np.mean(report.mean_power_w()))


def monitor_heatmap(
    cluster: Cluster,
    node_ids: Sequence[int],
    vector: VectorWidth = VectorWidth.YMM,
    intensities: Sequence[float] = DEFAULT_HEATMAP_INTENSITIES,
    columns: Sequence[Tuple[float, int]] = WAITING_IMBALANCE_GRID,
    model: Optional[ExecutionModel] = None,
    precision: Precision = Precision.DOUBLE,
) -> HeatmapGrid:
    """The full Fig. 4 grid via the analytic steady state (fast path).

    Cell value = mean over the test nodes of each node's time-averaged
    power in an unconstrained run.  Uses the characterization math from
    :func:`repro.characterization.mix_characterization.characterize_mix`
    on single-job mixes, so the fast path and the controller path share
    one physics implementation.
    """
    from repro.characterization.mix_characterization import characterize_mix
    from repro.workload.job import WorkloadMix

    model = model if model is not None else ExecutionModel()
    ids = np.asarray(node_ids, dtype=int)
    eff = cluster.efficiencies[ids]
    values = np.empty((len(intensities), len(columns)))
    for r, intensity in enumerate(intensities):
        for c, (waiting, imbalance) in enumerate(columns):
            config = KernelConfig(
                intensity=intensity,
                vector=vector,
                precision=precision,
                waiting_fraction=waiting,
                imbalance=imbalance,
            )
            job = Job(name="cell", config=config, node_count=int(ids.size))
            mix = WorkloadMix(name="cell", jobs=(job,))
            char = characterize_mix(mix, eff, model)
            values[r, c] = float(np.mean(char.monitor_power_w))
    return HeatmapGrid(
        title=f"Uncapped CPU power per node ({vector.value}, monitor agent)",
        intensities=tuple(intensities),
        columns=tuple(columns),
        values=values,
    )


def monitor_heatmap_runtime(
    cluster: Cluster,
    node_ids: Sequence[int],
    vector: VectorWidth = VectorWidth.YMM,
    intensities: Sequence[float] = DEFAULT_HEATMAP_INTENSITIES,
    columns: Sequence[Tuple[float, int]] = WAITING_IMBALANCE_GRID,
    model: Optional[ExecutionModel] = None,
    precision: Precision = Precision.DOUBLE,
    epochs: int = 5,
) -> HeatmapGrid:
    """The full Fig. 4 grid through the *authentic* feedback loop.

    Every cell runs the real monitor-agent controller, exactly as
    :func:`monitor_power_for_config` does — but all cells advance together
    through one :class:`~repro.runtime.batch.ControllerBatch`, so the grid
    costs one vectorised physics pass per epoch instead of
    ``cells × epochs`` Python iterations.  Cell ``(r, c)`` is bit-identical
    to the per-cell serial helper with the same arguments, which is what
    lets the test suite validate the feedback-loop grid against the
    analytic :func:`monitor_heatmap` at every cell.
    """
    from repro.runtime.batch import ControllerRunSpec, run_controller_batch

    ids = np.asarray(node_ids, dtype=int)
    eff = cluster.efficiencies[ids]
    specs = []
    for intensity in intensities:
        for waiting, imbalance in columns:
            config = KernelConfig(
                intensity=intensity,
                vector=vector,
                precision=precision,
                waiting_fraction=waiting,
                imbalance=imbalance,
            )
            job = Job(
                name=f"characterize-{config.label()}", config=config,
                node_count=int(ids.size), iterations=epochs,
            )
            specs.append(
                ControllerRunSpec(job=job, efficiencies=eff, agent=MonitorAgent())
            )
    result = run_controller_batch(
        specs, model=model, max_epochs=epochs, min_epochs=epochs
    )
    values = np.array(
        [float(np.mean(report.mean_power_w())) for report in result.reports]
    ).reshape(len(intensities), len(columns))
    return HeatmapGrid(
        title=f"Uncapped CPU power per node ({vector.value}, monitor agent, "
              "feedback loop)",
        intensities=tuple(intensities),
        columns=tuple(columns),
        values=values,
    )
