"""Concrete fan-out tasks: grid cells, ladders, site replays.

Module-level task functions (they must pickle by reference) plus thin
orchestration helpers that pair them with a
:class:`~repro.parallel.runner.ParallelRunner`.  Three fan-out shapes
from the paper's evaluation:

grid cells
    :func:`init_grid_worker` / :func:`grid_cell_task` — used by
    :meth:`repro.experiments.grid.ExperimentGrid.run_all`; the prepared
    environment ships once per worker through the pool initializer, and
    each task is just a ``(mix, level, policy)`` key.
characterization ladders
    :func:`characterize_ladder` (harvest-fraction rungs) and
    :func:`simulate_cap_ladder` (uniform-cap rungs) — the sweeps behind
    the sensitivity/ablation analyses, one independent physics run per
    rung.
site replays
    :func:`site_replays` — replay one arrival stream under many noise
    seeds (confidence intervals over whole simulated shifts), seeds
    derived per replay via :func:`~repro.parallel.seeding.child_seed`.

Imports of the heavier layers happen inside functions: this module is
imported by the grid (and by pool workers at unpickle time), and eager
imports would create cycles with ``repro.experiments.grid``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.runner import ParallelRunner
from repro.parallel.seeding import child_seed

__all__ = [
    "init_grid_worker",
    "grid_cell_task",
    "characterize_ladder",
    "simulate_cap_ladder",
    "site_replays",
]

# ----------------------------------------------------------------------
# grid cells
# ----------------------------------------------------------------------
#: Per-worker grid environment, installed once by the pool initializer so
#: each cell task ships only its (mix, level, policy) key.
_GRID_ENV: Optional[Tuple] = None


def init_grid_worker(config, model, prepared) -> None:
    """Install the prepared grid environment in this worker process."""
    global _GRID_ENV
    _GRID_ENV = (config, model, dict(prepared))


def grid_cell_task(key: Tuple[str, str, str]):
    """Run one grid cell against the installed environment."""
    from repro.experiments.grid import run_grid_cell

    if _GRID_ENV is None:
        raise RuntimeError("grid worker not initialised (init_grid_worker)")
    config, model, prepared = _GRID_ENV
    mix_name, budget_level, policy_name = key
    return run_grid_cell(
        config, model, prepared[mix_name], mix_name, budget_level, policy_name
    )


# ----------------------------------------------------------------------
# characterization ladders
# ----------------------------------------------------------------------
def _chunk_indices(count: int, chunks: int) -> List[range]:
    """Split ``range(count)`` into at most ``chunks`` contiguous ranges."""
    chunks = max(1, min(chunks, count))
    bounds = np.linspace(0, count, chunks + 1).astype(int)
    return [range(int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]


def _characterize_chunk(payload):
    from repro.characterization.mix_characterization import characterize_mix_batch

    mix, efficiencies, model, fractions = payload
    return characterize_mix_batch(mix, efficiencies, fractions, model)


def characterize_ladder(
    mix,
    efficiencies: np.ndarray,
    harvest_fractions: Sequence[float],
    model=None,
    workers: Optional[int] = None,
) -> List:
    """Characterize one mix at a ladder of harvest fractions.

    Returns one :class:`MixCharacterization` per rung, in rung order.
    Rungs are split into one contiguous chunk per pool worker and each
    worker evaluates its chunk through
    :func:`~repro.characterization.mix_characterization.characterize_mix_batch`
    — the physics passes run once per *chunk*, not once per rung, and the
    batched results are bit-identical to per-rung serial runs at any
    worker count.
    """
    runner = ParallelRunner(workers)
    fractions = [float(fraction) for fraction in harvest_fractions]
    ranges = _chunk_indices(len(fractions), runner.workers)
    payloads = [
        (mix, efficiencies, model, [fractions[i] for i in chunk])
        for chunk in ranges
    ]
    chunked = runner.map(_characterize_chunk, payloads)
    return [result for chunk in chunked for result in chunk]


def _simulate_chunk(payload):
    from repro.sim.batch import simulate_cap_batch
    from repro.sim.execution import SimulationOptions

    mix, efficiencies, model, rungs, noise_std = payload
    caps_col = np.array([cap for cap, _ in rungs], dtype=float)[:, np.newaxis]
    caps_sw = np.broadcast_to(caps_col, (len(rungs), mix.total_nodes))
    options = SimulationOptions(noise_std=noise_std)
    return simulate_cap_batch(
        mix, caps_sw, efficiencies, model, options,
        seeds=[seed for _, seed in rungs],
        policy_names="cap_ladder",
        budgets_w=[cap * mix.total_nodes for cap, _ in rungs],
    )


def simulate_cap_ladder(
    mix,
    efficiencies: np.ndarray,
    caps_w: Sequence[float],
    model=None,
    noise_std: float = 0.008,
    run_seed: int = 0,
    workers: Optional[int] = None,
) -> List:
    """Simulate one mix under a ladder of uniform per-host caps.

    One :class:`MixRunResult` per rung, in rung order.  Each rung's
    noise seed is content-addressed from ``(run_seed, rung index)`` via
    ``SeedSequence``, so the ladder is bit-identical at any worker
    count.  Rungs are split into one contiguous chunk per pool worker
    and each worker runs its chunk as one
    :func:`~repro.sim.batch.simulate_cap_batch` engine pass — batching
    inside the process, parallelism across processes.
    """
    runner = ParallelRunner(workers)
    rungs = [
        (float(cap), child_seed(run_seed, index, f"{float(cap)!r}"))
        for index, cap in enumerate(caps_w)
    ]
    ranges = _chunk_indices(len(rungs), runner.workers)
    payloads = [
        (mix, efficiencies, model, [rungs[i] for i in chunk], noise_std)
        for chunk in ranges
    ]
    chunked = runner.map(_simulate_chunk, payloads)
    return [result for chunk in chunked for result in chunk]


# ----------------------------------------------------------------------
# site-simulation replays
# ----------------------------------------------------------------------
def _site_replay(payload):
    from repro.core.registry import create_policy
    from repro.manager.site_simulation import run_site_simulation

    (arrivals, cluster, policy_name, budget_w, noise_std, max_batches,
     replay_seed) = payload
    return run_site_simulation(
        arrivals, cluster, create_policy(policy_name), budget_w,
        noise_std=noise_std, max_batches=max_batches, run_seed=replay_seed,
    )


def site_replays(
    arrivals,
    cluster,
    policy_name: str,
    budget_w: float,
    replays: int = 8,
    noise_std: float = 0.004,
    max_batches: int = 100,
    run_seed: int = 0,
    workers: Optional[int] = None,
) -> List:
    """Replay one arrival stream under ``replays`` independent noise seeds.

    Every replay is a full :func:`run_site_simulation` with its own
    ``SeedSequence``-derived seed — the batch-level Monte Carlo the site
    metrics (makespan, turnaround, peak power) need for confidence
    intervals.  Replays are independent, so they fan out per item.
    """
    if replays < 1:
        raise ValueError("replays must be positive")
    runner = ParallelRunner(workers)
    payloads = [
        (list(arrivals), cluster, policy_name, float(budget_w), noise_std,
         max_batches, child_seed(run_seed, "site-replay", index))
        for index in range(replays)
    ]
    return runner.map(_site_replay, payloads)
