"""Content-addressed characterization cache: skip redundant physics.

Repeated grid cells, online re-planning rounds, and replayed site
simulations keep re-deriving the same characterizations and executions.
This cache memoizes them behind a *stable content hash*: the key is a
SHA-256 digest of the canonical JSON form of every input that influences
the result (mix spec, model parameters, caps, efficiencies, options), so
two calls collide exactly when the physics would be identical.

Storage is two-tier: an in-memory LRU (`max_entries`) backed by an
optional on-disk JSON store (one file per entry under ``cache_dir``).
Values are stored as JSON-ready payload dicts and decoded through
:mod:`repro.io.serialize` on every hit — the same code path the disk
store uses — so a memory hit, a disk hit, and a fresh compute are
guaranteed bit-identical (pinned by the round-trip tests).  A corrupted
or unreadable disk entry is treated as a miss and recomputed.

The cache is opt-in and process-global once activated (mirroring the
telemetry context): :func:`activate_cache` installs one, hot paths
consult :func:`active_cache`, and worker processes activate their own
instance pointing at the same ``cache_dir`` so a pool shares hits
through the filesystem.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.telemetry import emit, enabled, get_registry

__all__ = [
    "CharacterizationCache",
    "stable_digest",
    "canonical",
    "activate_cache",
    "active_cache",
    "deactivate_cache",
]

_PAYLOAD_FORMAT = "repro.cache-entry.v1"


def canonical(obj: object) -> object:
    """A JSON-serialisable canonical form of ``obj`` for hashing.

    Handles the types cache keys are built from: dataclasses (tagged
    with their class name so two option types with equal fields do not
    collide), numpy arrays and scalars (dtype + shape + exact values),
    enums, containers, and JSON primitives.  Floats rely on ``repr``
    round-tripping (exact for IEEE-754 doubles), so bit-different inputs
    always produce different keys.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": canonical(obj.value)}
    if isinstance(obj, np.ndarray):
        return {
            "__ndarray__": str(obj.dtype),
            "shape": list(obj.shape),
            "data": obj.tolist(),
        }
    if isinstance(obj, np.generic):
        return canonical(obj.item())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, "fields": fields}
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items())}
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for cache keying")


def stable_digest(*parts: object) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``parts``."""
    text = json.dumps([canonical(p) for p in parts], sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CharacterizationCache:
    """Two-tier (memory LRU + disk JSON) store of computed physics.

    Parameters
    ----------
    max_entries:
        In-memory LRU capacity.  256 comfortably holds a full paper
        grid (6 mixes x 3 budgets x 5 policies) plus characterizations.
    cache_dir:
        Optional directory for the persistent JSON store; created on
        first write.  ``None`` keeps the cache memory-only.
    """

    def __init__(self, max_entries: int = 256,
                 cache_dir: Optional[Union[str, Path]] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memory: "OrderedDict[str, Dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_errors = 0

    # ------------------------------------------------------------------
    def key(self, namespace: str, *parts: object) -> str:
        """The cache key for ``parts`` under a namespace (``char``,
        ``simulate``, ...)."""
        return f"{namespace}-{stable_digest(*parts)}"

    def _path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict]:
        """The stored payload dict for ``key``, or ``None`` on a miss.

        Checks memory first, then disk.  A disk entry that fails to
        parse or carries the wrong format tag counts as a miss (the
        caller recomputes and overwrites it).
        """
        if key in self._memory:
            self._memory.move_to_end(key)
            self._record(hit=True)
            return self._memory[key]["payload"]
        if self.cache_dir is not None:
            path = self._path(key)
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                if entry.get("format") != _PAYLOAD_FORMAT:
                    raise ValueError(f"bad cache entry format {entry.get('format')!r}")
                payload = entry["payload"]
            except FileNotFoundError:
                pass
            except (OSError, ValueError, KeyError, TypeError):
                self.disk_errors += 1
                if enabled():
                    get_registry().counter("parallel.cache.disk_errors").inc()
                    emit("parallel.cache", "corrupt_entry", key=key)
            else:
                self._remember(key, payload)
                self._record(hit=True)
                return payload
        self._record(hit=False)
        return None

    def put(self, key: str, payload: Dict) -> None:
        """Store a JSON-ready payload under ``key`` (memory + disk)."""
        self._remember(key, payload)
        if self.cache_dir is not None:
            entry = {"format": _PAYLOAD_FORMAT, "key": key, "payload": payload}
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                path = self._path(key)
                tmp = path.with_suffix(".tmp")
                tmp.write_text(json.dumps(entry), encoding="utf-8")
                tmp.replace(path)
            except OSError:
                # A read-only or full disk must never fail the computation;
                # the result simply stays memory-only.
                self.disk_errors += 1
                if enabled():
                    get_registry().counter("parallel.cache.disk_errors").inc()

    # ------------------------------------------------------------------
    def _remember(self, key: str, payload: Dict) -> None:
        self._memory[key] = {"payload": payload}
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def _record(self, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        if enabled():
            name = "parallel.cache.hits" if hit else "parallel.cache.misses"
            get_registry().counter(name).inc()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Entries currently held in memory."""
        return len(self._memory)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/error counts since construction."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_errors": self.disk_errors,
            "memory_entries": len(self._memory),
        }


# ----------------------------------------------------------------------
# process-global activation (mirrors the telemetry context)
# ----------------------------------------------------------------------
_active: Optional[CharacterizationCache] = None


def activate_cache(cache: Optional[CharacterizationCache] = None,
                   **kwargs) -> CharacterizationCache:
    """Install a process-global cache; returns it.

    Pass an existing instance, or keyword arguments
    (``max_entries``/``cache_dir``) to construct one.
    """
    global _active
    _active = cache if cache is not None else CharacterizationCache(**kwargs)
    return _active


def active_cache() -> Optional[CharacterizationCache]:
    """The installed cache, or ``None`` when caching is off."""
    return _active


def deactivate_cache() -> None:
    """Remove the process-global cache (in-flight entries are dropped)."""
    global _active
    _active = None
