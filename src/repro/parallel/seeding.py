"""Deterministic child-seed derivation for fanned-out work items.

Every parallel work item (a grid cell, a ladder rung, a site replay)
needs its own noise seed.  Drawing those seeds from a parent RNG would
make them depend on *submission order* — which worker counts and
chunking change — so instead each child seed is derived from
``np.random.SeedSequence`` spawned purely from ``(run_seed, item
identity)``.  Identical inputs produce identical seeds whether the item
runs serially, in a pool of 4, or alone; the parent RNG is never
consulted.

String identities are folded to integers with CRC-32 (Python's
``hash()`` is salted per process and therefore unusable for
reproducibility).
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Tuple, Union

import numpy as np

__all__ = ["child_seed", "child_seeds"]

_SeedPart = Union[int, str]


def _fold(part: _SeedPart) -> int:
    """One entropy word from an identity component."""
    if isinstance(part, bool) or not isinstance(part, (int, str)):
        raise TypeError(f"seed parts must be int or str, got {type(part).__name__}")
    if isinstance(part, int):
        if part < 0:
            raise ValueError("integer seed parts must be non-negative")
        return part
    return zlib.crc32(part.encode("utf-8"))


def child_seed(run_seed: int, *identity: _SeedPart) -> int:
    """The deterministic seed for one work item.

    Parameters
    ----------
    run_seed:
        The experiment-level seed (e.g. ``ExperimentConfig.run_seed``).
    identity:
        What the item *is* — indices and/or names.  Content-addressed:
        the same identity yields the same seed regardless of how many
        other items exist or in what order they are submitted.

    Returns
    -------
    int
        A 32-bit seed suitable for ``np.random.default_rng`` and
        :class:`~repro.sim.execution.SimulationOptions`.
    """
    entropy = [_fold(run_seed)] + [_fold(part) for part in identity]
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def child_seeds(
    run_seed: int,
    identities: Iterable[Union[_SeedPart, Tuple[_SeedPart, ...]]],
) -> List[int]:
    """Seeds for a batch of items, one per identity.

    Each identity may be a single part or a tuple of parts (e.g. a grid
    cell's ``(mix, level, policy)`` key).
    """
    return [
        child_seed(run_seed, *identity)
        if isinstance(identity, (tuple, list))
        else child_seed(run_seed, identity)
        for identity in identities
    ]
