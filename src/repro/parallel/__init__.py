"""Parallel execution & characterization caching.

The paper's evaluation sweeps policies x mixes x budgets; every cell is
independent, which is the exact fan-out shape process pools exploit.
This package provides:

:class:`~repro.parallel.runner.ParallelRunner`
    Fans independent work items over a ``ProcessPoolExecutor`` with a
    graceful serial fallback, per-worker telemetry merged back into the
    parent's registry, and deterministic results regardless of worker
    count.
:mod:`~repro.parallel.seeding`
    ``SeedSequence``-based child-seed derivation: every work item's seed
    is a pure function of ``run_seed`` and the item's identity — never a
    draw from a parent RNG — so serial and parallel runs are
    bit-identical.
:class:`~repro.parallel.cache.CharacterizationCache`
    Content-addressed memoization of ``characterize_mix`` /
    ``simulate_mix`` keyed by a stable hash of (mix spec, model
    parameters, caps, options), with an in-memory LRU plus an optional
    on-disk JSON store.
:class:`~repro.parallel.char_store.SharedCharStore`
    Name-free, shape-keyed characterization sharing across differently
    named mixes of the same job classes (the facility fan-out case),
    read through by ``characterize_mix`` after the name-keyed cache.
"""

from repro.parallel.cache import (
    CharacterizationCache,
    activate_cache,
    active_cache,
    deactivate_cache,
    stable_digest,
)
from repro.parallel.char_store import (
    SharedCharStore,
    activate_char_store,
    active_char_store,
    deactivate_char_store,
)
from repro.parallel.runner import ParallelRunner, resolve_workers
from repro.parallel.seeding import child_seed, child_seeds

__all__ = [
    "CharacterizationCache",
    "ParallelRunner",
    "SharedCharStore",
    "activate_cache",
    "active_cache",
    "deactivate_cache",
    "activate_char_store",
    "active_char_store",
    "deactivate_char_store",
    "stable_digest",
    "resolve_workers",
    "child_seed",
    "child_seeds",
]
