"""The process-pool fan-out engine with a graceful serial fallback.

:class:`ParallelRunner` maps a pure task function over independent
payloads — grid cells, characterization ladder rungs, site-simulation
replays — across a ``concurrent.futures.ProcessPoolExecutor``.  Design
rules that keep parallel runs trustworthy:

* **Determinism.**  Tasks must be pure functions of their payload; any
  randomness comes from seeds embedded in the payload (derived via
  :mod:`repro.parallel.seeding`), so results are identical for any
  worker count.  Results are returned in payload order regardless of
  completion order.
* **Graceful degradation.**  ``workers=1`` (or a single payload) never
  touches multiprocessing.  If the pool dies mid-run
  (``BrokenProcessPool``) or cannot be used at all (sandboxed
  environments, unpicklable payloads), the remaining items run serially
  in-process and the incident is recorded as a telemetry event — the
  answer is always produced.
* **Telemetry.**  Each worker isolates its telemetry context, records
  normally, and ships per-task metric state and events back with the
  result; the parent merges them into the global
  :class:`~repro.telemetry.MetricsRegistry` and replays events on the
  global bus, so a parallel run is as observable as a serial one.

The default worker count honours the ``REPRO_WORKERS`` environment
variable (used by CI to exercise the pool path), falling back to 1.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.parallel.cache import active_cache, activate_cache
from repro.parallel.char_store import activate_char_store, active_char_store
from repro.telemetry import (
    ScopedTimer,
    emit,
    enabled,
    get_bus,
    get_registry,
    get_tracer,
    span,
)

__all__ = ["ParallelRunner", "resolve_workers", "WORKERS_ENV"]

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count.

    ``None`` consults ``$REPRO_WORKERS`` and defaults to 1 (serial).
    Anything below 1 is rejected — the CLI maps this to an argparse
    error.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be a positive integer, got {env!r}"
            ) from None
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


# ----------------------------------------------------------------------
# worker-side plumbing (module-level so it pickles by reference)
# ----------------------------------------------------------------------
def _init_worker(cache_settings: Optional[Tuple[int, Optional[str]]],
                 char_store_settings: Optional[Tuple[int, Optional[str]]],
                 user_initializer: Optional[Callable],
                 user_initargs: Tuple) -> None:
    """Per-worker setup: isolate telemetry, mirror the parent's caches.

    The telemetry context is replaced (not just cleared) so parent-side
    subscribers — which may hold open file handles — never fire in the
    child.  If the parent had an active characterization cache (or a
    shape-keyed shared characterization store), the worker activates its
    own with the same settings; a shared ``cache_dir`` lets workers
    reuse each other's entries through the filesystem.
    """
    from repro.telemetry import isolate

    isolate()
    if cache_settings is not None:
        max_entries, cache_dir = cache_settings
        activate_cache(max_entries=max_entries, cache_dir=cache_dir)
    if char_store_settings is not None:
        max_entries, cache_dir = char_store_settings
        activate_char_store(max_entries=max_entries, cache_dir=cache_dir)
    if user_initializer is not None:
        user_initializer(*user_initargs)


def _run_task(
    fn: Callable, payload: object
) -> Tuple[object, Optional[dict], Optional[list], Optional[list]]:
    """Execute one task in a worker and capture its telemetry delta.

    Returns ``(result, metric state, events, spans)``; the trailing three
    are ``None`` when telemetry is disabled.  The task runs under a
    ``parallel.task`` span so the worker's span tree has a single root
    the parent can adopt under its ``parallel.map`` span.
    """
    from repro.telemetry import (
        enabled as _enabled,
        get_bus as _get_bus,
        get_registry as _get_registry,
        get_tracer as _get_tracer,
        reset as _reset,
        span as _span,
    )

    _reset()  # each task ships a clean delta
    with _span("parallel.task", pid=os.getpid()):
        result = fn(payload)
    if not _enabled():
        return result, None, None, None
    return (result, _get_registry().state(), _get_bus().events(),
            _get_tracer().state())


class ParallelRunner:
    """Maps pure tasks over payloads, in-process or across a pool.

    Parameters
    ----------
    workers:
        Pool size; ``None`` reads ``$REPRO_WORKERS`` (default 1).
        ``1`` is a strict serial mode with zero multiprocessing
        machinery.
    initializer / initargs:
        Optional per-worker setup (e.g. building a shared environment
        once per process instead of once per task).  Runs after the
        built-in telemetry/cache setup.
    """

    def __init__(self, workers: Optional[int] = None,
                 initializer: Optional[Callable] = None,
                 initargs: Tuple = ()) -> None:
        self.workers = resolve_workers(workers)
        self._initializer = initializer
        self._initargs = initargs
        self.pool_failures = 0

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether this runner will attempt a process pool."""
        return self.workers > 1

    def _serial(self, fn: Callable, payloads: Sequence[object],
                done: Optional[List[object]] = None) -> List[object]:
        """Run (the remaining) payloads in-process."""
        results = list(done) if done is not None else []
        if self._initializer is not None:
            # Serial mode (and the mid-run fallback) still honours the
            # user initializer so the task function sees the same module
            # state as in a worker; initializers must be idempotent.
            self._initializer(*self._initargs)
        for payload in payloads[len(results):]:
            results.append(fn(payload))
        return results

    def map(self, fn: Callable, payloads: Iterable[object]) -> List[object]:
        """Apply ``fn`` to every payload; results in payload order.

        Tasks must be module-level callables with picklable payloads and
        results.  Telemetry recorded inside tasks is merged back into
        the parent's global registry/bus whether the run was serial or
        pooled.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        if not self.parallel or len(payloads) == 1:
            return self._serial(fn, payloads)

        cache = active_cache()
        cache_settings = None
        if cache is not None:
            cache_dir = str(cache.cache_dir) if cache.cache_dir else None
            cache_settings = (cache.max_entries, cache_dir)
        store = active_char_store()
        char_store_settings = None
        if store is not None:
            store_dir = str(store.cache_dir) if store.cache_dir else None
            char_store_settings = (store.max_entries, store_dir)

        registry = get_registry()
        bus = get_bus()
        results: List[object] = []
        with span("parallel.map", tasks=len(payloads),
                  workers=self.workers) as map_sp, \
                ScopedTimer("parallel.runner.map_s"):
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(payloads)),
                    initializer=_init_worker,
                    initargs=(cache_settings, char_store_settings,
                              self._initializer, self._initargs),
                ) as pool:
                    futures = [pool.submit(_run_task, fn, p) for p in payloads]
                    for future in futures:
                        result, state, events, spans = future.result()
                        if state is not None and enabled():
                            registry.merge_state(state)
                        if events and enabled():
                            bus.replay(events)
                        if spans and map_sp is not None:
                            # Adopt the worker's span tree under this
                            # map span; when tracing is off in the
                            # parent the shipped spans are dropped,
                            # matching the parent's own recording.
                            get_tracer().merge_state(spans, parent=map_sp)
                        results.append(result)
            except (BrokenProcessPool, pickle.PicklingError, AttributeError,
                    OSError, ImportError) as exc:
                # The pool died or could not start: finish the job
                # serially.  Completed prefix results are kept; tasks are
                # pure, so re-running the rest in-process is safe.
                # (AttributeError is how CPython reports an unpicklable
                # local callable; a genuine task AttributeError re-raises
                # from the serial re-run below.)
                self.pool_failures += 1
                if enabled():
                    get_registry().counter("parallel.runner.pool_failures").inc()
                    emit(
                        "parallel.runner", "pool_fallback",
                        error=type(exc).__name__, detail=str(exc)[:200],
                        completed=len(results), total=len(payloads),
                    )
                results = self._serial(fn, payloads, done=results)
        if enabled():
            get_registry().counter("parallel.runner.tasks").inc(len(payloads))
            get_registry().gauge("parallel.runner.workers").set(self.workers)
            emit(
                "parallel.runner", "map_complete",
                tasks=len(payloads), workers=self.workers,
                fallback=bool(self.pool_failures),
            )
        return results
