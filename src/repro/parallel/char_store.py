"""Shape-keyed shared characterization store: one physics pass per class.

The content-addressed :class:`~repro.parallel.cache.CharacterizationCache`
keys characterizations on the *full mix* — job names included — so two
clusters streaming the same synthetic job class (identical kernel
config, node count, and iterations, different job names) never share an
entry, and a sharded facility run re-characterizes the same class once
per worker per name.  This store closes that gap with a **name-free**
key: the per-job ``(kernel config, node count, iterations)`` shapes, the
host-efficiency vector, the execution model, and the harvest fraction —
exactly the inputs :func:`~repro.characterization.characterize_mix`'s
numerics depend on (``mix_name`` is a label; it appears in no array).

Hits are bit-identical to fresh computes: payloads are the JSON dicts of
:func:`~repro.io.serialize.characterization_to_dict`, and IEEE-754
doubles round-trip exactly through ``repr``-based JSON — the same
guarantee the content-addressed cache relies on (pinned by the
round-trip tests).  Storage therefore reuses
:class:`~repro.parallel.cache.CharacterizationCache` outright (memory
LRU + optional shared disk directory), and activation mirrors the same
process-global pattern: :func:`activate_char_store` installs one,
:func:`~repro.characterization.characterize_mix` consults
:func:`active_char_store` after the name-keyed cache, and pool workers
activate their own instance against the same directory (wired through
:class:`~repro.parallel.runner.ParallelRunner`), so a sharded facility
characterizes each job class once *facility-wide* instead of once per
cluster per worker.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.parallel.cache import CharacterizationCache

__all__ = [
    "SharedCharStore",
    "activate_char_store",
    "active_char_store",
    "deactivate_char_store",
]


class SharedCharStore(CharacterizationCache):
    """A :class:`CharacterizationCache` with name-free characterization keys.

    Same two-tier storage and hit/miss statistics; only the key schema
    differs (``charshape-`` namespace over job *shapes* rather than the
    full named mix).  Keeping the store a separate instance from the
    content-addressed cache keeps the two key universes — and their
    statistics — cleanly apart.
    """

    def key_for(self, mix, efficiencies, model,
                harvest_fraction: float) -> str:
        """The store key for one ``characterize_mix`` call's inputs."""
        return self.key(
            "charshape",
            [(job.config, job.node_count, job.iterations)
             for job in mix.jobs],
            np.asarray(efficiencies, dtype=float),
            model,
            float(harvest_fraction),
        )


# ----------------------------------------------------------------------
# process-global activation (mirrors repro.parallel.cache)
# ----------------------------------------------------------------------
_active: Optional[SharedCharStore] = None


def activate_char_store(store: Optional[SharedCharStore] = None,
                        **kwargs) -> SharedCharStore:
    """Install a process-global store; returns it.

    Pass an existing instance, or keyword arguments
    (``max_entries``/``cache_dir``) to construct one.
    """
    global _active
    _active = store if store is not None else SharedCharStore(**kwargs)
    return _active


def active_char_store() -> Optional[SharedCharStore]:
    """The installed store, or ``None`` when shape sharing is off."""
    return _active


def deactivate_char_store() -> None:
    """Remove the process-global store (entries are dropped)."""
    global _active
    _active = None
