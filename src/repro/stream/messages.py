"""Wire protocol of the streaming site daemon (``repro.stream.v1``).

Newline-delimited JSON in both directions, validated the same way the
telemetry provenance ledger is (:mod:`repro.telemetry.provenance`): a
schema tag pins the message version, a required-field table drives a
``validate_*`` pass that returns a list of human-readable problems, and
the daemon rejects a malformed message with an ``error`` reply instead of
dying — NRM's upstream/downstream API split, scaled to this repo.

Upstream (client -> daemon) operations:

``submit``
    Enqueue one job: a kernel spec plus node count, iterations, and the
    optional precharacterized power hint.
``set_budget``
    Move the facility budget mid-stream; admission re-runs against it.
``stats``
    Request the engine's :class:`~repro.stream.engine.StreamStats`.
``subscribe`` / ``unsubscribe``
    Start/stop the pub/sub telemetry feed (optionally filtered by event
    kind) bridged from the process :class:`~repro.telemetry.events.EventBus`.
``shutdown``
    Stop the daemon.

Downstream (daemon -> client) message types: ``ack``, ``error``,
``stats``, and ``event`` (one bus event, forwarded).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.manager.queue import JobRequest
from repro.workload.kernel import KernelConfig, Precision, VectorWidth

__all__ = [
    "STREAM_SCHEMA",
    "UPSTREAM_OPS",
    "DOWNSTREAM_TYPES",
    "validate_upstream",
    "validate_downstream",
    "encode_message",
    "decode_message",
    "job_payload",
    "job_request_from_payload",
    "submit_message",
    "set_budget_message",
    "stats_message",
    "subscribe_message",
    "unsubscribe_message",
    "shutdown_message",
    "ack_message",
    "error_message",
    "stats_reply",
    "event_message",
]

#: Schema tag every message must carry (versioned like the provenance
#: ledger's ``repro.provenance.v1``).
STREAM_SCHEMA = "repro.stream.v1"

#: Upstream operation -> required operation-specific fields and types.
UPSTREAM_OPS: Dict[str, Dict[str, type]] = {
    "submit": {"job": dict},
    "set_budget": {"budget_w": (int, float)},
    "stats": {},
    "subscribe": {},
    "unsubscribe": {},
    "shutdown": {},
}

#: Downstream type -> required type-specific fields.
DOWNSTREAM_TYPES: Dict[str, Dict[str, type]] = {
    "ack": {"op": str},
    "error": {"reason": str},
    "stats": {"stats": dict},
    "event": {"source": str, "kind": str, "payload": dict},
}

#: Required fields of a ``submit`` job spec.
_JOB_REQUIRED: Dict[str, type] = {
    "name": str,
    "intensity": (int, float),
    "node_count": int,
    "iterations": int,
}


def _check_envelope(message: Any, key: str,
                    table: Dict[str, Dict[str, type]]) -> List[str]:
    problems: List[str] = []
    if not isinstance(message, dict):
        return [f"message must be an object, got {type(message).__name__}"]
    schema = message.get("schema")
    if schema != STREAM_SCHEMA:
        problems.append(
            f"schema mismatch: expected {STREAM_SCHEMA!r}, got {schema!r}"
        )
    tag = message.get(key)
    if not isinstance(tag, str):
        problems.append(f"missing {key!r} field")
        return problems
    if tag not in table:
        problems.append(
            f"unknown {key} {tag!r} (expected one of {sorted(table)})"
        )
        return problems
    for name, types in table[tag].items():
        value = message.get(name)
        if not isinstance(value, types) or isinstance(value, bool):
            expected = types.__name__ if isinstance(types, type) else \
                "/".join(t.__name__ for t in types)
            problems.append(
                f"{tag}: field {name!r} must be {expected}, "
                f"got {type(value).__name__}"
            )
    return problems


def validate_upstream(message: Any) -> List[str]:
    """Problems with a client -> daemon message ([] when valid)."""
    problems = _check_envelope(message, "op", UPSTREAM_OPS)
    if not problems and message["op"] == "submit":
        job = message["job"]
        for name, types in _JOB_REQUIRED.items():
            value = job.get(name)
            if not isinstance(value, types) or isinstance(value, bool):
                problems.append(f"submit: job field {name!r} invalid")
    return problems


def validate_downstream(message: Any) -> List[str]:
    """Problems with a daemon -> client message ([] when valid)."""
    return _check_envelope(message, "type", DOWNSTREAM_TYPES)


def encode_message(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON, newline-terminated."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire frame (raises ``ValueError`` on malformed JSON)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ValueError("frame must decode to an object")
    return message


# ----------------------------------------------------------------------
# job spec <-> JobRequest
def job_payload(request: JobRequest,
                time_s: Optional[float] = None) -> Dict[str, Any]:
    """The JSON job spec of one request (inverse of
    :func:`job_request_from_payload`)."""
    payload: Dict[str, Any] = {
        "name": request.name,
        "intensity": request.config.intensity,
        "vector": request.config.vector.value,
        "precision": request.config.precision.value,
        "waiting_fraction": request.config.waiting_fraction,
        "imbalance": request.config.imbalance,
        "node_count": request.node_count,
        "iterations": request.iterations,
    }
    if request.power_hint_w is not None:
        payload["power_hint_w"] = request.power_hint_w
    if time_s is not None:
        payload["time_s"] = time_s
    return payload


def job_request_from_payload(job: Dict[str, Any]) -> JobRequest:
    """Materialise a :class:`JobRequest` from a validated job spec.

    Domain errors (negative nodes, bad vector name, …) surface as
    ``ValueError`` for the daemon to turn into an ``error`` reply.
    """
    try:
        vector = VectorWidth(job.get("vector", "ymm"))
        precision = Precision(job.get("precision", "dp"))
    except ValueError as exc:
        raise ValueError(f"bad kernel spec: {exc}") from exc
    config = KernelConfig(
        intensity=float(job["intensity"]),
        vector=vector,
        precision=precision,
        waiting_fraction=float(job.get("waiting_fraction", 0.0)),
        imbalance=int(job.get("imbalance", 1)),
    )
    hint = job.get("power_hint_w")
    return JobRequest(
        name=str(job["name"]),
        config=config,
        node_count=int(job["node_count"]),
        iterations=int(job["iterations"]),
        power_hint_w=float(hint) if hint is not None else None,
    )


# ----------------------------------------------------------------------
# builders (every message carries the schema tag)
def _upstream(op: str, **fields: Any) -> Dict[str, Any]:
    return {"schema": STREAM_SCHEMA, "op": op, **fields}


def _downstream(type_: str, **fields: Any) -> Dict[str, Any]:
    return {"schema": STREAM_SCHEMA, "type": type_, **fields}


def submit_message(request: JobRequest,
                   time_s: Optional[float] = None) -> Dict[str, Any]:
    """Upstream ``submit`` for one request."""
    return _upstream("submit", job=job_payload(request, time_s=time_s))


def set_budget_message(budget_w: float) -> Dict[str, Any]:
    """Upstream ``set_budget``."""
    return _upstream("set_budget", budget_w=float(budget_w))


def stats_message() -> Dict[str, Any]:
    """Upstream ``stats`` request."""
    return _upstream("stats")


def subscribe_message(kinds: Optional[List[str]] = None) -> Dict[str, Any]:
    """Upstream ``subscribe`` (optionally filtered by event kinds)."""
    message = _upstream("subscribe")
    if kinds is not None:
        message["kinds"] = list(kinds)
    return message


def unsubscribe_message() -> Dict[str, Any]:
    """Upstream ``unsubscribe``."""
    return _upstream("unsubscribe")


def shutdown_message() -> Dict[str, Any]:
    """Upstream ``shutdown``."""
    return _upstream("shutdown")


def ack_message(op: str, **fields: Any) -> Dict[str, Any]:
    """Downstream ``ack`` of one upstream operation."""
    return _downstream("ack", op=op, **fields)


def error_message(reason: str, **fields: Any) -> Dict[str, Any]:
    """Downstream ``error``."""
    return _downstream("error", reason=reason, **fields)


def stats_reply(stats: Dict[str, Any]) -> Dict[str, Any]:
    """Downstream ``stats`` snapshot."""
    return _downstream("stats", stats=stats)


def event_message(source: str, kind: str,
                  payload: Dict[str, Any]) -> Dict[str, Any]:
    """Downstream ``event``: one forwarded telemetry bus event."""
    return _downstream("event", source=source, kind=kind, payload=payload)
