"""Heap-ordered discrete-event core for the streaming site engine.

Modeled on NRM's ``nrmd`` event loop: every state change of the simulated
site — a job arriving, the facility budget moving, a fault boundary, a
batch finishing, a telemetry tick — is an :class:`Event` in one totally
ordered timeline.  The :class:`EventLoop` is a plain binary heap keyed by
``(time, kind priority, sequence)``:

* *time* orders the simulation;
* *kind priority* breaks ties deterministically at equal times — budget
  changes apply before admission re-runs, completions free capacity
  before a same-instant arrival is considered, telemetry observes the
  settled state last;
* *sequence* preserves submission order among otherwise identical events
  (two jobs arriving at the same instant are admitted in the order they
  were scheduled, matching the stable sort of the batch shift loop).

The loop is synchronous and allocation-light on purpose: the asyncio
daemon (:mod:`repro.stream.daemon`) feeds it and pumps it, but the
deterministic replay contract lives entirely here.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["EventKind", "Event", "EventLoop"]


class EventKind(enum.IntEnum):
    """Event classes, ordered by same-instant application priority."""

    #: Facility budget moves (mid-stream ``set_budget``).
    BUDGET_CHANGE = 0
    #: A fault-schedule boundary: fault state may differ after this point.
    FAULT_BOUNDARY = 1
    #: An in-flight batch finished; its hosts and budget share free up.
    BATCH_COMPLETE = 2
    #: A job submission enters the admission queue.
    ARRIVAL = 3
    #: Periodic telemetry snapshot (observes the settled instant).
    TELEMETRY_TICK = 4


@dataclass(frozen=True)
class Event:
    """One timeline entry.

    ``payload`` carries kind-specific data (the :class:`JobRequest` of an
    arrival, the new budget of a budget change, the batch handle of a
    completion); ``seq`` is the loop-assigned tiebreaker.
    """

    time_s: float
    kind: EventKind
    payload: Dict[str, Any] = field(default_factory=dict)
    seq: int = -1

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("event time must be non-negative")


class EventLoop:
    """A deterministic min-heap of :class:`Event` objects.

    Push/pop are O(log n); the heap never holds more than the *scheduled
    but undelivered* horizon (one lookahead arrival per generator stream,
    one completion per in-flight batch, one pending tick), which is what
    keeps the engine's memory bounded under sustained arrival traffic.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()

    def push(self, time_s: float, kind: EventKind, **payload: Any) -> Event:
        """Schedule an event; returns it with its sequence assigned."""
        event = Event(
            time_s=float(time_s), kind=kind, payload=dict(payload),
            seq=next(self._seq),
        )
        heapq.heappush(
            self._heap, (event.time_s, int(event.kind), event.seq, event)
        )
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event loop")
        return heapq.heappop(self._heap)[-1]

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it (None when empty)."""
        return self._heap[0][-1] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
