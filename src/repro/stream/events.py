"""Heap-ordered discrete-event core for the streaming site engine.

Modeled on NRM's ``nrmd`` event loop: every state change of the simulated
site — a job arriving, the facility budget moving, a fault boundary, a
batch finishing, a deferred admission flush, a telemetry tick — is an
:class:`Event` in one totally ordered timeline.  The :class:`EventLoop`
is a plain binary heap keyed by ``(time, kind priority, sequence)``:

* *time* orders the simulation;
* *kind priority* breaks ties deterministically at equal times — budget
  changes apply before admission re-runs, completions free capacity
  before a same-instant arrival is considered, telemetry observes the
  settled state last;
* *sequence* preserves submission order among otherwise identical events
  (two jobs arriving at the same instant are admitted in the order they
  were scheduled, matching the stable sort of the batch shift loop).

The loop is synchronous and allocation-light on purpose: the asyncio
daemon (:mod:`repro.stream.daemon`) feeds it and pumps it, but the
deterministic replay contract lives entirely here.

Hot-path notes
--------------
At sustained arrival rates the loop is the engine's inner loop, so
:meth:`EventLoop.push` allocates exactly one :class:`Event` (slotted, no
``__dict__``) plus the heap's tie-break tuple — the payload keyword dict
is adopted as-is rather than copied, and the tuple's kind component is
the precomputed ``kind.value`` integer rather than an ``int()`` call.
Periodic events (telemetry ticks, admission flushes) avoid even the
event allocation: :meth:`EventLoop.repush` re-arms a delivered event
object at a new time, so a million-tick stream reuses one slot.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, Dict, Optional

__all__ = ["EventKind", "Event", "EventLoop"]


class EventKind(enum.IntEnum):
    """Event classes, ordered by same-instant application priority."""

    #: Facility budget moves (mid-stream ``set_budget``).
    BUDGET_CHANGE = 0
    #: A fault-schedule boundary: fault state may differ after this point.
    FAULT_BOUNDARY = 1
    #: An in-flight batch finished; its hosts and budget share free up.
    BATCH_COMPLETE = 2
    #: A job submission enters the admission queue.
    ARRIVAL = 3
    #: A deferred admission flush (the quantised-admission rolling mode):
    #: runs after every capacity change of its instant has applied, so
    #: one flush sees the settled state.
    ADMISSION = 4
    #: Periodic telemetry snapshot (observes the settled instant).
    TELEMETRY_TICK = 5


class Event:
    """One timeline entry.

    ``payload`` carries kind-specific data (the :class:`JobRequest` of an
    arrival, the new budget of a budget change, the batch handle of a
    completion); ``seq`` is the loop-assigned tiebreaker.  Slotted and
    mutable so the loop can re-arm periodic events in place; treat
    delivered events as owned by the loop whenever they were scheduled
    through :meth:`EventLoop.repush`.
    """

    __slots__ = ("time_s", "kind", "payload", "seq")

    def __init__(
        self,
        time_s: float,
        kind: EventKind,
        payload: Optional[Dict[str, Any]] = None,
        seq: int = -1,
    ) -> None:
        if time_s < 0:
            raise ValueError("event time must be non-negative")
        self.time_s = time_s
        self.kind = kind
        self.payload = payload if payload is not None else {}
        self.seq = seq

    def __repr__(self) -> str:
        return (
            f"Event(time_s={self.time_s!r}, kind={self.kind!r}, "
            f"payload={self.payload!r}, seq={self.seq!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.time_s == other.time_s
            and self.kind == other.kind
            and self.payload == other.payload
            and self.seq == other.seq
        )


class EventLoop:
    """A deterministic min-heap of :class:`Event` objects.

    Push/pop are O(log n); the heap never holds more than the *scheduled
    but undelivered* horizon (one lookahead arrival per generator stream,
    one completion per in-flight batch, one pending tick), which is what
    keeps the engine's memory bounded under sustained arrival traffic.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()

    def push(self, time_s: float, kind: EventKind, **payload: Any) -> Event:
        """Schedule an event; returns it with its sequence assigned.

        The keyword dict is adopted by the event (it is freshly built by
        the ``**`` call syntax, so no copy is needed on the hot path).
        """
        seq = next(self._seq)
        event = Event(float(time_s), kind, payload, seq)
        heapq.heappush(self._heap, (event.time_s, kind.value, seq, event))
        return event

    def repush(self, event: Event, time_s: float) -> Event:
        """Re-arm a *delivered* event at a new time, reusing its slot.

        The allocation-free path for periodic events: the caller keeps
        the event object it got back from :meth:`push`, and after each
        delivery re-arms it here instead of allocating a fresh one.  The
        event must not still be in the heap (its heap entry holds the old
        time and would corrupt the ordering).
        """
        t = float(time_s)
        if t < 0:
            raise ValueError("event time must be non-negative")
        seq = next(self._seq)
        event.time_s = t
        event.seq = seq
        heapq.heappush(self._heap, (t, event.kind.value, seq, event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event loop")
        return heapq.heappop(self._heap)[-1]

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it (None when empty)."""
        return self._heap[0][-1] if self._heap else None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
