"""Asyncio daemon around the rolling site engine (NRM's ``nrmd`` shape).

One TCP listener, newline-delimited ``repro.stream.v1`` JSON frames
(:mod:`repro.stream.messages`).  Clients *submit* jobs upstream and
receive *acks*, *stats*, and a pub/sub *event* feed downstream — the
latter bridged straight off the process telemetry
:class:`~repro.telemetry.events.EventBus`, so every instrumented layer of
the stack (admission decisions, batch completions, engine ticks) is
visible to a subscribed client without bespoke plumbing.

Concurrency model: the simulation itself is synchronous and
deterministic.  Client handlers serialise engine access behind one
``asyncio.Lock``; each upstream frame is applied to the engine and the
timeline is pumped to quiescence before the reply is written (simulated
time is free — a day of site operation drains in milliseconds of wall
time).  Subscriber fan-out is backpressured per client: a bounded buffer
drops the oldest events past ``max_backlog`` and counts the drops, so one
slow reader never stalls the engine or other clients.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.stream import messages as msg
from repro.stream.engine import SiteStreamEngine
from repro.telemetry import enabled, get_bus, get_registry, span

__all__ = ["StreamDaemon", "run_daemon_once"]


class _Subscriber:
    """Per-client event buffer (bounded, drop-oldest)."""

    def __init__(self, kinds: Optional[List[str]], max_backlog: int) -> None:
        self.kinds = set(kinds) if kinds is not None else None
        self.max_backlog = max_backlog
        # A deque keeps drop-oldest eviction O(1); a list.pop(0) here
        # costs O(max_backlog) per frame once a slow client saturates.
        self.buffer: Deque[Dict[str, object]] = deque()
        self.dropped = 0

    def offer(self, source: str, kind: str, payload: Dict[str, object]) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self.buffer) >= self.max_backlog:
            self.buffer.popleft()
            self.dropped += 1
            # Backpressure drops must be observable, not silent: the
            # per-flush error frame only reaches the slow client itself,
            # while this counter surfaces the drop rate to operators.
            if enabled():
                get_registry().counter(
                    "stream.daemon.frames_dropped"
                ).inc()
        self.buffer.append(msg.event_message(source, kind, payload))


class StreamDaemon:
    """Serve one rolling :class:`SiteStreamEngine` to local clients.

    Parameters
    ----------
    engine:
        A ``rolling=True`` engine; the daemon owns its timeline.
    host / port:
        Bind address; port 0 (default) lets the OS choose — read the
        bound address from :attr:`address` after :meth:`start`.
    max_backlog:
        Per-subscriber event buffer bound (drop-oldest past it).
    """

    def __init__(self, engine: SiteStreamEngine, host: str = "127.0.0.1",
                 port: int = 0, max_backlog: int = 256) -> None:
        if not engine.rolling:
            raise ValueError("the daemon requires a rolling-mode engine")
        self.engine = engine
        self.host = host
        self.port = port
        self.max_backlog = max_backlog
        self._server: Optional[asyncio.AbstractServer] = None
        self._lock = asyncio.Lock()
        self._subscribers: Dict[int, _Subscriber] = {}
        self._next_client = 0
        self._bus_token = None
        self._stopping = asyncio.Event()
        self._client_tasks: set = set()

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("daemon is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and bridge the telemetry bus; returns the
        bound address."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self._bus_token = get_bus().subscribe(self._on_bus_event)
        return self.address

    async def stop(self) -> None:
        """Stop serving and detach from the telemetry bus."""
        self._stopping.set()
        if self._bus_token is not None:
            get_bus().unsubscribe(self._bus_token)
            self._bus_token = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Reap handler tasks still blocked on idle clients, so loop
        # teardown never reports an un-retrieved cancellation.
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks,
                                 return_exceptions=True)
            self._client_tasks.clear()

    async def serve_until_shutdown(self) -> None:
        """Serve until a client sends ``shutdown`` (or :meth:`stop`)."""
        await self._stopping.wait()
        await self.stop()

    # ------------------------------------------------------------------
    def _on_bus_event(self, event) -> None:
        # Runs synchronously inside engine pumps; buffers only.
        for sub in self._subscribers.values():
            sub.offer(event.source, event.kind, dict(event.payload))

    async def _flush_subscriber(self, client_id: int,
                                writer: asyncio.StreamWriter) -> None:
        sub = self._subscribers.get(client_id)
        if sub is None or not sub.buffer:
            return
        buffered = list(sub.buffer)
        sub.buffer.clear()
        if sub.dropped:
            buffered.insert(0, msg.error_message(
                "subscriber backlog overflow", dropped=sub.dropped,
            ))
            sub.dropped = 0
        for frame in buffered:
            writer.write(msg.encode_message(frame))
        await writer.drain()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        client_id = self._next_client
        self._next_client += 1
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while not self._stopping.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                reply = await self._dispatch(client_id, line)
                # Events generated while dispatching precede the reply
                # on the wire, so a client that reads to its ack has
                # already seen everything its request caused.
                await self._flush_subscriber(client_id, writer)
                writer.write(msg.encode_message(reply))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Cancelled by stop(); finish normally — a handler task left
            # in the cancelled state trips the 3.11 streams callback's
            # unguarded task.exception() at loop teardown.
            pass
        finally:
            self._subscribers.pop(client_id, None)
            if task is not None:
                self._client_tasks.discard(task)
            with contextlib.suppress(asyncio.CancelledError, Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, client_id: int,
                        line: bytes) -> Dict[str, object]:
        try:
            message = msg.decode_message(line)
        except ValueError as exc:
            return msg.error_message(str(exc))
        problems = msg.validate_upstream(message)
        if problems:
            return msg.error_message("; ".join(problems))
        op = message["op"]
        if op in ("subscribe", "unsubscribe", "shutdown"):
            # Control ops never touch the engine; span them outside the
            # lock (the handlers are synchronous).
            with span("stream.daemon.dispatch", op=op, client=client_id):
                if op == "subscribe":
                    self._subscribers[client_id] = _Subscriber(
                        message.get("kinds"), self.max_backlog
                    )
                elif op == "unsubscribe":
                    self._subscribers.pop(client_id, None)
                else:
                    self._stopping.set()
                return msg.ack_message(op)

        async with self._lock:
            # The span opens after the lock is held: everything inside
            # is synchronous (no awaits), so the trace context cannot
            # interleave with another client's handler.
            with span("stream.daemon.dispatch", op=op, client=client_id):
                return self._dispatch_engine_op(op, message)

    def _dispatch_engine_op(self, op: str,
                            message: Dict[str, object]) -> Dict[str, object]:
        engine = self.engine
        if op == "submit":
            job = message["job"]
            try:
                request = msg.job_request_from_payload(job)
                if engine.max_pending is not None and \
                        len(engine.queue.pending()) >= engine.max_pending:
                    # Surface backpressure as a reply, not a silent
                    # drop: the engine would reject it anyway.
                    return msg.error_message(
                        "queue full", name=request.name,
                        max_pending=engine.max_pending,
                    )
                time_s = engine.submit(request, job.get("time_s"))
                # Pump inside the guard: a domain error surfacing
                # mid-timeline (duplicate name, bad spec) becomes an
                # error reply, not a dropped connection.
                engine.run()
            except (ValueError, KeyError) as exc:
                return msg.error_message(str(exc))
            return msg.ack_message(
                "submit", name=request.name, time_s=time_s,
            )
        if op == "set_budget":
            try:
                time_s = engine.set_budget(float(message["budget_w"]))
            except ValueError as exc:
                return msg.error_message(str(exc))
            engine.run()
            return msg.ack_message(
                "set_budget", budget_w=float(message["budget_w"]),
                time_s=time_s,
            )
        if op == "stats":
            engine.stats.clock_s = engine.clock
            return msg.stats_reply(engine.stats.snapshot())
        return msg.error_message(f"unhandled op {op!r}")


async def run_daemon_once(engine: SiteStreamEngine, host: str = "127.0.0.1",
                          port: int = 0) -> Tuple[str, int]:
    """Start a daemon and serve until a client asks it to shut down.

    Returns the address it served on (useful mostly for logging; the CLI
    prints it before blocking).
    """
    daemon = StreamDaemon(engine, host=host, port=port)
    address = await daemon.start()
    await daemon.serve_until_shutdown()
    return address
