"""Generator-fed arrival sources for the streaming site engine.

The batch shift loop takes a pre-built ``Sequence[Arrival]`` — fine for a
shift, hopeless for a day of heavy traffic (a million-arrival list exists
in memory before the first admission).  The stream engine instead pulls
from any *iterator* of time-ordered :class:`~repro.manager.site_simulation.Arrival`
objects, holding exactly one lookahead arrival at a time, so arrival
streams cost O(1) memory regardless of length.

Sources here cover the bench and test workloads:

* :func:`replay_stream` — adapt a pre-built list (the bit-identity path);
* :func:`poisson_stream` — memoryless arrivals at a sustained rate, the
  ">= 100k jobs per simulated day" load shape;
* :func:`burst_stream` — periodic bursts of simultaneous submissions,
  the backpressure stressor;
* :func:`synthetic_job_factory` — cycling job shapes with power hints,
  so admission estimates stay O(1) per job under load.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.manager.queue import JobRequest
from repro.manager.site_simulation import Arrival
from repro.units import ensure_positive
from repro.workload.kernel import KernelConfig

__all__ = [
    "replay_stream",
    "poisson_stream",
    "burst_stream",
    "synthetic_job_factory",
]

JobFactory = Callable[[int], JobRequest]


def replay_stream(arrivals: Sequence[Arrival]) -> Iterator[Arrival]:
    """Yield a pre-built arrival list in time order (stable on ties)."""
    yield from sorted(arrivals, key=lambda a: a.time_s)


def poisson_stream(
    rate_per_s: float,
    duration_s: float,
    job_factory: JobFactory,
    seed: int = 0,
    start_s: float = 0.0,
) -> Iterator[Arrival]:
    """Poisson arrivals at ``rate_per_s`` over ``[start_s, start_s + duration_s)``.

    Inter-arrival gaps are exponential draws from a seeded
    ``np.random.Generator``; ``job_factory(i)`` supplies the *i*-th job.
    100k jobs/day is ``rate_per_s ≈ 1.157``.
    """
    ensure_positive(rate_per_s, "rate_per_s")
    ensure_positive(duration_s, "duration_s")
    rng = np.random.default_rng(seed)
    clock = float(start_s)
    index = 0
    end = start_s + duration_s
    while True:
        clock += float(rng.exponential(1.0 / rate_per_s))
        if clock >= end:
            return
        yield Arrival(time_s=clock, request=job_factory(index))
        index += 1


def burst_stream(
    burst_size: int,
    period_s: float,
    bursts: int,
    job_factory: JobFactory,
    start_s: float = 0.0,
) -> Iterator[Arrival]:
    """``bursts`` bursts of ``burst_size`` simultaneous submissions.

    All jobs of a burst share one arrival instant; event sequence numbers
    keep their admission order deterministic.  This is the load shape that
    exercises queue backpressure.
    """
    if burst_size < 1:
        raise ValueError("burst_size must be positive")
    if bursts < 1:
        raise ValueError("bursts must be positive")
    ensure_positive(period_s, "period_s")
    index = 0
    for b in range(bursts):
        t = start_s + b * period_s
        for _ in range(burst_size):
            yield Arrival(time_s=t, request=job_factory(index))
            index += 1


def synthetic_job_factory(
    configs: Optional[Sequence[KernelConfig]] = None,
    node_count: int = 4,
    iterations: int = 30,
    power_hint_w: Optional[float] = 180.0,
    prefix: str = "stream",
) -> JobFactory:
    """A factory cycling through a few job shapes.

    The default shapes span memory-bound to compute-bound kernels; every
    job carries a per-node ``power_hint_w`` so admission never needs a
    characterization call on the hot path (the hint is what a
    precharacterized production site submits anyway).
    """
    if configs is None:
        configs = _DEFAULT_CONFIGS
    configs = tuple(configs)

    def factory(index: int) -> JobRequest:
        return JobRequest(
            name=f"{prefix}-{index}",
            config=configs[index % len(configs)],
            node_count=node_count,
            iterations=iterations,
            power_hint_w=power_hint_w,
        )

    return factory


_DEFAULT_CONFIGS: Tuple[KernelConfig, ...] = (
    KernelConfig(intensity=0.25),
    KernelConfig(intensity=8.0),
    KernelConfig(intensity=2.0, waiting_fraction=0.5, imbalance=2),
    KernelConfig(intensity=32.0),
)
