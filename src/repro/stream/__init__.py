"""Streaming event-driven site engine (ROADMAP item 1).

The long-lived service form of the site loop: a heap-ordered
discrete-event core (:mod:`repro.stream.events`), generator-fed arrival
sources (:mod:`repro.stream.arrivals`), the replay/rolling engine over
the shared batch physics (:mod:`repro.stream.engine`), the versioned
JSON wire protocol (:mod:`repro.stream.messages`), and the asyncio
pub/sub daemon (:mod:`repro.stream.daemon`).

Entry points: :func:`stream_site_simulation` replays a pre-built arrival
list bit-identically to
:func:`~repro.manager.site_simulation.run_site_simulation`;
:class:`SiteStreamEngine` with ``rolling=True`` sustains generator-fed
load with bounded memory; :class:`StreamDaemon` serves it to clients.
"""

from repro.stream.arrivals import (
    burst_stream,
    poisson_stream,
    replay_stream,
    synthetic_job_factory,
)
from repro.stream.daemon import StreamDaemon, run_daemon_once
from repro.stream.engine import (
    SiteStreamEngine,
    StreamStats,
    stream_site_simulation,
)
from repro.stream.events import Event, EventKind, EventLoop
from repro.stream.messages import STREAM_SCHEMA

__all__ = [
    "Event",
    "EventKind",
    "EventLoop",
    "SiteStreamEngine",
    "StreamDaemon",
    "StreamStats",
    "STREAM_SCHEMA",
    "burst_stream",
    "poisson_stream",
    "replay_stream",
    "run_daemon_once",
    "stream_site_simulation",
    "synthetic_job_factory",
]
