"""The streaming site engine: sustained load through the admission stack.

Two operating modes over one :class:`~repro.stream.events.EventLoop`:

**Replay (drain) mode** — :func:`stream_site_simulation` runs a pre-built
arrival list through the engine with the *exact* round semantics of
:func:`~repro.manager.site_simulation.run_site_simulation`: one batch in
flight at a time on the whole cluster, admission whenever the cluster
drains, the same per-round accounting (an empty-queue clock jump, a
dropped unschedulable head, a fault-boundary wait, and an executed batch
each consume one round of ``max_batches``).  Both loops execute batches
through the shared
:func:`~repro.manager.site_simulation.execute_admitted_batch` physics, so
a replay is **bit-identical** to the batch call — the property suite pins
this.

**Rolling mode** — the long-lived service shape of ROADMAP item 1:
multiple batches in flight, `PowerAwareAdmission` re-run on every
capacity-freed event (a batch completing, the budget moving, a fault
boundary passing) against whatever has genuinely arrived, arrivals pulled
lazily from a generator (one lookahead event in the heap), queue
backpressure via ``max_pending``, and aggregate :class:`StreamStats`
instead of per-job records when ``record_jobs=False`` — the configuration
that holds memory flat through millions of arrivals per simulated day.

In rolling mode each in-flight batch reserves its admitted-set estimate
(`decision.admitted_power_w`) out of the facility budget and is launched
with that reservation as its budget, so the sum of concurrent batch
budgets never exceeds the facility budget in force at their launches.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.policy import Policy
from repro.hardware.cluster import Cluster
from repro.manager.admission import AdmissionDecision, PowerAwareAdmission
from repro.manager.power_manager import PowerManager
from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.manager.site_simulation import (
    Arrival,
    BatchExecution,
    BatchPlanner,
    BatchRecord,
    SiteSimulationResult,
    execute_admitted_batch,
    execute_planned_batches,
    plan_admitted_batch,
)
from repro.stream.events import Event, EventKind, EventLoop
from repro.telemetry import emit, enabled, get_registry, span
from repro.units import ensure_positive

__all__ = ["StreamStats", "SiteStreamEngine", "stream_site_simulation"]


@dataclass
class StreamStats:
    """Aggregate counters the engine maintains in O(1) memory.

    The memory-bounded substitute for the batch call's per-job dicts:
    everything the bench and the daemon's ``stats`` op report comes from
    here, regardless of how many jobs have flowed through.
    """

    arrivals: int = 0
    rejected: int = 0
    batches: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    energy_j: float = 0.0
    overshoot_ws: float = 0.0
    turnaround_sum_s: float = 0.0
    turnaround_max_s: float = 0.0
    peak_pending: int = 0
    peak_tracked_jobs: int = 0
    peak_in_flight: int = 0
    clock_s: float = 0.0

    def mean_turnaround_s(self) -> float:
        """Mean submission-to-completion time over completed jobs."""
        if not self.jobs_completed:
            return 0.0
        return self.turnaround_sum_s / self.jobs_completed

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict view (telemetry ticks, daemon ``stats`` replies)."""
        out = dataclasses.asdict(self)
        out["mean_turnaround_s"] = self.mean_turnaround_s()
        return out


class SiteStreamEngine:
    """Event-driven site loop over the shared batch physics.

    Parameters mirror :func:`run_site_simulation` where they overlap;
    the streaming knobs:

    rolling:
        False = replay semantics (one batch in flight, whole cluster,
        bit-identical to the batch shift loop); True = sustained-load
        semantics (concurrent batches over free hosts, admission on
        capacity-freed events).
    max_pending:
        Queue backpressure: an arrival landing while this many jobs are
        pending is rejected (counted in ``stats.rejected``; the daemon
        surfaces it as an error reply).  ``None`` = unbounded.
    record_jobs / record_batches:
        When False, per-job turnarounds / per-batch records are folded
        into :class:`StreamStats` instead of being kept — the
        bounded-memory configuration for sustained load.
    tick_interval_s:
        When set, a TELEMETRY_TICK event fires every interval of
        simulated time, emitting a ``stream.engine``/``tick`` event with
        the stats snapshot (the daemon's pub/sub feed).
    batched_physics:
        Rolling-mode only.  When True, every admission flush executes all
        batches it admitted through the staged
        :func:`~repro.manager.site_simulation.plan_admitted_batch` /
        :func:`~repro.manager.site_simulation.execute_planned_batches`
        pipeline — one vectorised ``(S, hosts)`` engine pass per job
        structure group instead of one scalar call per batch — with
        memoised characterization/allocation planning.  Bit-identical to
        the scalar path (pinned by the stream property suite).  Runs with
        an *active* fault schedule fall back to scalar per-batch physics
        (fault windows are sliced at each batch's own clock).
    admission_interval_s:
        Rolling-mode only.  When set, admission is *quantised*: arrivals
        and capacity events schedule one deferred ADMISSION flush this
        far ahead instead of re-running admission inline, so a burst of
        events pays for one pass and co-arriving batches launch together
        (the high-rate configuration that feeds ``batched_physics`` wide
        groups).  ``None`` keeps the classic admit-on-every-event
        semantics.
    per_job_batches:
        Rolling-mode only.  When True, each admitted job launches as its
        own single-job batch instead of co-scheduling one batch per
        admission pass — uniform job structure (wide vectorised groups)
        and per-job completion granularity.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: Policy,
        budget_w: float,
        admission: Optional[PowerAwareAdmission] = None,
        manager: Optional[PowerManager] = None,
        noise_std: float = 0.004,
        run_seed: Optional[int] = None,
        fault_schedule=None,
        degradation=None,
        reaction_s: float = 1.0,
        rolling: bool = False,
        max_pending: Optional[int] = None,
        record_jobs: bool = True,
        record_batches: bool = True,
        tick_interval_s: Optional[float] = None,
        batched_physics: bool = False,
        admission_interval_s: Optional[float] = None,
        per_job_batches: bool = False,
    ) -> None:
        ensure_positive(budget_w, "budget_w")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be positive or None")
        if tick_interval_s is not None:
            ensure_positive(tick_interval_s, "tick_interval_s")
        if admission_interval_s is not None:
            ensure_positive(admission_interval_s, "admission_interval_s")
        if not rolling and (batched_physics or per_job_batches
                            or admission_interval_s is not None):
            raise ValueError(
                "batched_physics, admission_interval_s and per_job_batches "
                "are rolling-mode knobs; replay mode is pinned to the "
                "batch shift loop's scalar semantics"
            )
        self.cluster = cluster
        self.policy = policy
        self.base_budget_w = float(budget_w)
        self.budget_w = float(budget_w)
        self.manager = manager if manager is not None else PowerManager()
        self.admission = admission if admission is not None else \
            PowerAwareAdmission(model=self.manager.model)
        self.noise_std = noise_std
        self.run_seed = run_seed
        self.fault_schedule = fault_schedule
        self.degradation = degradation
        self.reaction_s = reaction_s
        self.injecting = fault_schedule is not None and fault_schedule.active
        self.rolling = rolling
        self.max_pending = max_pending
        self.record_jobs = record_jobs
        self.record_batches = record_batches
        self.tick_interval_s = tick_interval_s
        self.batched_physics = batched_physics
        self.admission_interval_s = admission_interval_s
        self.per_job_batches = per_job_batches

        self.loop = EventLoop()
        self.queue = JobQueue()
        self.clock = 0.0
        self.stats = StreamStats()
        self.batches: List[BatchRecord] = []
        self.completed: List[str] = []
        self.failed: List[str] = []
        self.turnaround_s: Dict[str, float] = {}
        self._arrival_time: Dict[str, float] = {}
        self._source: Optional[Iterator[Arrival]] = None
        self._batch_counter = 0
        # Rolling-mode occupancy: host ids currently free, and the watt
        # reservations of in-flight batches.
        self._free_ids: Set[int] = set(range(len(cluster)))
        self._reserved_w = 0.0
        self._in_flight = 0
        self._tick_scheduled = False
        # Slot-reused periodic events (allocation-free re-arming).
        self._tick_event: Optional[Event] = None
        self._admission_event: Optional[Event] = None
        self._admission_scheduled = False
        # Memoised planner for the staged batch pipeline.
        self._planner = BatchPlanner(self.manager, policy) \
            if batched_physics else None
        self._host_eff = cluster.efficiencies
        # Homogeneous-cluster fast path: when every host efficiency is
        # equal, any subset's efficiency vector is the same constant
        # slice, so the per-batch gather (and the physically inert
        # scheduler shuffle) can be skipped.  One shared read-only
        # vector per batch size.
        eff = cluster.efficiencies
        self._uniform_hosts = bool((eff == eff[0]).all()) if len(eff) else True
        self._uniform_eff: Dict[int, object] = {}
        # Incremental-admission gate: set to the (unreserved watts, free
        # hosts) snapshot whenever a full admission pass deferred every
        # pending job; while capacity stays at that snapshot, a new
        # arrival only needs its own tail judged (estimates are
        # deterministic and `fits` is monotone in capacity, so the full
        # pass would re-defer the prefix identically).  Any capacity or
        # fault-state change invalidates it.
        self._blocked_key: Optional[Tuple[float, int]] = None
        # Rolling mode re-runs admission at fault boundaries as timeline
        # events; replay mode handles boundaries inline (matching the
        # batch shift loop), so its heap carries only arrivals.
        if self.injecting and rolling:
            for t in fault_schedule.boundaries():
                self.loop.push(t, EventKind.FAULT_BOUNDARY)

    # ------------------------------------------------------------------
    # feeding the timeline
    def attach_source(self, source: Iterator[Arrival]) -> None:
        """Feed arrivals lazily from a time-ordered iterator.

        Exactly one lookahead arrival lives in the event heap at any
        time; the next is pulled when it is delivered.
        """
        if self._source is not None:
            raise ValueError("a source is already attached")
        self._source = iter(source)
        self._pull_arrival()

    def submit(self, request: JobRequest, time_s: Optional[float] = None) -> float:
        """Schedule one job arrival (the daemon's ``submit`` op).

        Defaults to the current clock; past times are clamped to it (an
        event-driven service cannot admit into its own history).
        Returns the effective arrival time.
        """
        t = self.clock if time_s is None else max(float(time_s), self.clock)
        self.loop.push(t, EventKind.ARRIVAL, request=request)
        return t

    def set_budget(self, budget_w: float, time_s: Optional[float] = None) -> float:
        """Schedule a facility budget change (mid-stream re-planning)."""
        ensure_positive(budget_w, "budget_w")
        t = self.clock if time_s is None else max(float(time_s), self.clock)
        self.loop.push(t, EventKind.BUDGET_CHANGE, budget_w=float(budget_w))
        return t

    def _pull_arrival(self) -> None:
        assert self._source is not None
        try:
            arrival = next(self._source)
        except StopIteration:
            self._source = None
            return
        self.loop.push(arrival.time_s, EventKind.ARRIVAL,
                       request=arrival.request)

    # ------------------------------------------------------------------
    # event handlers
    def _on_arrival(self, request: JobRequest, time_s: float) -> bool:
        """Track one arrival; returns False when backpressure rejected it."""
        self.stats.arrivals += 1
        pending = self.queue.pending_count()
        if self.max_pending is not None and pending >= self.max_pending:
            self.stats.rejected += 1
            if enabled():
                emit("stream.engine", "job_rejected", name=request.name,
                     pending=pending, max_pending=self.max_pending)
            return False
        self.queue.submit(request)
        self._arrival_time[request.name] = time_s
        if pending >= self.stats.peak_pending:
            self.stats.peak_pending = pending + 1
        if len(self.queue) > self.stats.peak_tracked_jobs:
            self.stats.peak_tracked_jobs = len(self.queue)
        return True

    def _account_batch(self, execution: BatchExecution) -> None:
        """Fold one finished batch into the engine's records and stats."""
        record = execution.record
        self.stats.batches += 1
        self.stats.energy_j += record.energy_j
        self.stats.overshoot_ws += record.overshoot_ws
        if self.record_batches:
            self.batches.append(record)
        for name, completion in zip(execution.job_names,
                                    execution.completion_s):
            self.queue.mark(name, JobState.RUNNING)
            self.queue.mark(name, JobState.COMPLETED)
            turnaround = completion - self._arrival_time.pop(name)
            self.stats.jobs_completed += 1
            self.stats.turnaround_sum_s += turnaround
            self.stats.turnaround_max_s = max(
                self.stats.turnaround_max_s, turnaround
            )
            if self.record_jobs:
                self.completed.append(name)
                self.turnaround_s[name] = turnaround
            else:
                self.queue.forget(name)

    def _fail_head(self) -> None:
        stuck = self.queue.pending()[0]
        self.queue.mark(stuck.name, JobState.FAILED)
        self._arrival_time.pop(stuck.name, None)
        self.stats.jobs_failed += 1
        if self.record_jobs:
            self.failed.append(stuck.name)
        else:
            self.queue.forget(stuck.name)
        if enabled():
            emit("stream.engine", "job_failed", name=stuck.name)

    def _fault_state(self) -> Tuple[float, Optional[Cluster], Tuple[int, ...],
                                    Set[int]]:
        """(budget in force, schedulable cluster, quarantined, failed ids)."""
        if not self.injecting:
            return self.budget_w, self.cluster, (), set()
        budget = self.fault_schedule.budget_at(self.clock, self.budget_w)
        failed_hosts = set(self.fault_schedule.failed_hosts_at(self.clock))
        if not failed_hosts:
            return budget, self.cluster, (), set()
        healthy = [i for i in range(len(self.cluster))
                   if i not in failed_hosts]
        quarantined = tuple(sorted(failed_hosts))
        sub = self.cluster.subset(healthy) if healthy else None
        return budget, sub, quarantined, failed_hosts

    # ------------------------------------------------------------------
    # rolling mode
    def _idle(self) -> bool:
        return (self._source is None and self._in_flight == 0
                and not self.queue.pending_count())

    def _schedule_tick(self) -> None:
        if self.tick_interval_s is None or self._tick_scheduled:
            return
        t = self.clock + self.tick_interval_s
        if self._tick_event is None:
            self._tick_event = self.loop.push(t, EventKind.TELEMETRY_TICK)
        else:
            # Slot reuse: re-arm the delivered tick event instead of
            # allocating a fresh one per interval.
            self.loop.repush(self._tick_event, t)
        self._tick_scheduled = True

    def _schedule_admission_flush(self) -> None:
        """Arm the deferred ADMISSION event (quantised-admission mode)."""
        if self._admission_scheduled:
            return
        t = self.clock + self.admission_interval_s
        if self._admission_event is None:
            self._admission_event = self.loop.push(t, EventKind.ADMISSION)
        else:
            self.loop.repush(self._admission_event, t)
        self._admission_scheduled = True

    def _on_tick(self) -> None:
        self._tick_scheduled = False
        self.stats.clock_s = self.clock
        if enabled():
            registry = get_registry()
            registry.gauge("stream.engine.pending").set(
                self.queue.pending_count()
            )
            registry.gauge("stream.engine.in_flight").set(self._in_flight)
            emit("stream.engine", "tick", **self.stats.snapshot())
        if not self._idle() or self.loop:
            self._schedule_tick()

    def _split_decision(self, decision):
        """Yield ``(sub_decision, names)`` launch groups for one pass.

        Default: the whole admitted set as one co-scheduled batch (the
        classic semantics).  With ``per_job_batches`` every admitted job
        becomes its own single-job batch — uniform job structure, so the
        batched step groups wide.
        """
        if not self.per_job_batches or len(decision.admitted) <= 1:
            yield decision, decision.admitted
            return
        for name in decision.admitted:
            # Field-for-field what dataclasses.replace(decision,
            # admitted=(name,)) builds, without the per-call field
            # introspection — this runs once per admitted job.
            sub = AdmissionDecision(
                (name,), decision.deferred, decision.estimates_w,
                decision.budget_w, decision.nodes_available,
                decision.safety_margin, decision.reserved_head,
                self.queue.get(name).node_count,
            )
            yield sub, (name,)

    def _subset_eff(self, count: int):
        """The shared constant efficiency slice for a uniform cluster."""
        eff = self._uniform_eff.get(count)
        if eff is None:
            eff = self._host_eff[:count].copy()
            eff.setflags(write=False)
            self._uniform_eff[count] = eff
        return eff

    def _try_admit_rolling(self) -> None:
        """Admit against free hosts and unreserved budget; launch batches.

        Runs until nothing more fits — each launch frees nothing, so one
        pass per triggering event suffices; the next BATCH_COMPLETE or
        BUDGET_CHANGE re-triggers it.

        Structured as collect-then-execute: admission decisions and
        occupancy updates happen first (each launch group reserves its
        hosts and watts immediately, so successive ``decide`` calls see
        the shrunken capacity), then all collected batches execute — as
        one vectorised grouped pass when ``batched_physics`` is on, or
        scalar per-batch calls otherwise.  Execution has no feedback into
        admission (completions only land via future BATCH_COMPLETE
        events), so the split cannot change any decision; per-row
        bit-identity of the batched step makes the two execute paths
        indistinguishable in the results.
        """
        collected: List[Tuple] = []  # (batch_index, sub_decision, names,
        #                              host_ids, share_w, quarantined)
        while self.queue.pending_count():
            budget_now, schedulable, quarantined, failed_hosts = \
                self._fault_state()
            free_healthy = sorted(self._free_ids - failed_hosts)
            avail_w = budget_now - self._reserved_w
            if not free_healthy or avail_w <= 0 or schedulable is None:
                break
            decision = self.admission.decide(
                self.queue, avail_w, nodes_available=len(free_healthy),
                mark=True,
            )
            if not decision.admitted:
                if (self._in_flight == 0 and not self.injecting
                        and len(free_healthy) == len(self.cluster)):
                    # Full cluster, full budget, nothing in flight: the
                    # head can never run anywhere — unschedulable.
                    self._fail_head()
                    continue
                # Wait for a capacity-freed event; remember the capacity
                # snapshot so arrivals until then take the incremental
                # single-job admission path.
                self._blocked_key = (avail_w, len(free_healthy))
                break
            self._blocked_key = None
            cursor = 0
            for sub_decision, names in self._split_decision(decision):
                nodes = sub_decision.admitted_nodes
                host_ids = free_healthy[cursor:cursor + nodes]
                cursor += nodes
                share_w = sub_decision.admitted_power_w
                self._free_ids.difference_update(host_ids)
                self._reserved_w += share_w
                self._in_flight += 1
                if self._in_flight > self.stats.peak_in_flight:
                    self.stats.peak_in_flight = self._in_flight
                collected.append((
                    self._batch_counter, sub_decision, names, host_ids,
                    share_w, quarantined,
                ))
                self._batch_counter += 1
        if collected:
            self._execute_collected(collected)

    def _execute_collected(self, collected: List[Tuple]) -> None:
        """Execute one admission pass's launch groups; push completions."""
        use_batched = self.batched_physics and not self.injecting
        with span("stream.engine.admit", batches=len(collected),
                  batched=use_batched) as sp:
            if use_batched:
                uniform = self._uniform_hosts
                planned = [
                    plan_admitted_batch(
                        clock=self.clock,
                        batch_index=batch_index,
                        admitted=[self.queue.get(n) for n in names],
                        decision=sub_decision,
                        host_efficiencies=(
                            self._subset_eff(len(host_ids)) if uniform
                            else self._host_eff[host_ids]
                        ),
                        policy=self.policy,
                        budget_w=share_w,
                        batch_budget_w=share_w,
                        quarantined=quarantined,
                        manager=self.manager,
                        run_seed=self.run_seed,
                        planner=self._planner,
                        uniform_hosts=uniform,
                    )
                    for batch_index, sub_decision, names, host_ids,
                    share_w, quarantined in collected
                ]
                executions = execute_planned_batches(
                    planned, self.manager, self.noise_std
                )
            else:
                executions = [
                    execute_admitted_batch(
                        clock=self.clock,
                        batch_index=batch_index,
                        admitted=[self.queue.get(n) for n in names],
                        decision=sub_decision,
                        batch_cluster=self.cluster.subset(host_ids),
                        policy=self.policy,
                        budget_w=share_w,
                        batch_budget_w=share_w,
                        quarantined=quarantined,
                        manager=self.manager,
                        noise_std=self.noise_std,
                        run_seed=self.run_seed,
                        fault_schedule=self.fault_schedule,
                        degradation=self.degradation,
                        reaction_s=self.reaction_s,
                        injecting=self.injecting,
                    )
                    for batch_index, sub_decision, names, host_ids,
                    share_w, quarantined in collected
                ]
            if sp is not None:
                sp.set_attribute(
                    "jobs", sum(len(c[2]) for c in collected)
                )
        push = self.loop.push
        for entry, execution in zip(collected, executions):
            push(
                execution.record.end_s, EventKind.BATCH_COMPLETE,
                execution=execution, hosts=tuple(entry[3]),
                share_w=entry[4],
            )

    def _admit_after_arrival(self, request: JobRequest) -> None:
        """Admission following one accepted arrival (non-quantised mode).

        The hot path under backlog: when the last full pass deferred
        everything and capacity has not moved since, only the new tail
        needs judging — ``decide_arrival`` is O(1) in queue depth.  Any
        mismatch with the remembered capacity snapshot (or an active
        fault schedule, whose budget/host state varies with the clock)
        falls back to the full pass.
        """
        key = self._blocked_key
        if key is not None and not self.injecting:
            avail_w = self.budget_w - self._reserved_w
            free = len(self._free_ids)
            if (avail_w, free) == key:
                decision = self.admission.decide_arrival(
                    self.queue, request, avail_w, free, mark=True,
                )
                if not decision.admitted:
                    return  # still blocked at unchanged capacity
                free_healthy = sorted(self._free_ids)
                nodes = decision.admitted_nodes
                host_ids = free_healthy[:nodes]
                share_w = decision.admitted_power_w
                self._free_ids.difference_update(host_ids)
                self._reserved_w += share_w
                self._in_flight += 1
                if self._in_flight > self.stats.peak_in_flight:
                    self.stats.peak_in_flight = self._in_flight
                entry = (
                    self._batch_counter, decision, decision.admitted,
                    host_ids, share_w, (),
                )
                self._batch_counter += 1
                # The prefix stays blocked at the shrunken capacity.
                self._blocked_key = (avail_w - share_w, free - nodes)
                self._execute_collected([entry])
                return
        self._try_admit_rolling()

    def run(self, max_events: Optional[int] = None) -> StreamStats:
        """Pump the rolling-mode event loop until the timeline drains.

        Telemetry ticks alone do not keep the engine alive: once the
        source is exhausted, nothing is pending, and no batch is in
        flight, remaining ticks are drained without rescheduling.
        """
        if not self.rolling:
            raise ValueError("run() is rolling mode; use replay() instead")
        processed = 0
        self._schedule_tick()
        # Hoist hot-loop lookups: the dispatch below runs once per event
        # at sustained arrival rates, so kind members and bound methods
        # are locals rather than repeated attribute loads.
        ARRIVAL = EventKind.ARRIVAL
        BATCH_COMPLETE = EventKind.BATCH_COMPLETE
        BUDGET_CHANGE = EventKind.BUDGET_CHANGE
        FAULT_BOUNDARY = EventKind.FAULT_BOUNDARY
        ADMISSION = EventKind.ADMISSION
        TELEMETRY_TICK = EventKind.TELEMETRY_TICK
        pop = self.loop.pop
        quantised = self.admission_interval_s is not None
        kind_counts = [0] * len(EventKind)
        with span("stream.engine.run", rolling=True) as sp:
            while self.loop:
                if max_events is not None and processed >= max_events:
                    break
                event = pop()
                if event.time_s > self.clock:
                    self.clock = event.time_s
                processed += 1
                kind = event.kind
                kind_counts[kind] += 1
                if kind is ARRIVAL:
                    request = event.payload["request"]
                    accepted = self._on_arrival(request, event.time_s)
                    if self._source is not None:
                        self._pull_arrival()
                    if not accepted:
                        continue  # queue unchanged; nothing to admit
                    if quantised:
                        self._schedule_admission_flush()
                    else:
                        self._admit_after_arrival(request)
                elif kind is BATCH_COMPLETE:
                    payload = event.payload
                    self._free_ids.update(payload["hosts"])
                    self._reserved_w -= payload["share_w"]
                    self._in_flight -= 1
                    self._blocked_key = None
                    self._account_batch(payload["execution"])
                    if quantised:
                        if self.queue.pending_count():
                            self._schedule_admission_flush()
                    else:
                        self._try_admit_rolling()
                elif kind is BUDGET_CHANGE:
                    self.budget_w = event.payload["budget_w"]
                    self._blocked_key = None
                    if enabled():
                        emit("stream.engine", "budget_change",
                             budget_w=self.budget_w, time_s=self.clock)
                    if quantised:
                        if self.queue.pending_count():
                            self._schedule_admission_flush()
                    else:
                        self._try_admit_rolling()
                elif kind is FAULT_BOUNDARY:
                    self._blocked_key = None
                    if quantised:
                        if self.queue.pending_count():
                            self._schedule_admission_flush()
                    else:
                        self._try_admit_rolling()
                elif kind is ADMISSION:
                    self._admission_scheduled = False
                    self._try_admit_rolling()
                elif kind is TELEMETRY_TICK:
                    self._on_tick()
            if sp is not None:
                sp.set_attribute("events", processed)
                sp.set_attribute("batches", self.stats.batches)
                for k in EventKind:
                    if kind_counts[k]:
                        sp.set_attribute(
                            f"events_{k.name.lower()}", kind_counts[k]
                        )
        self.stats.clock_s = self.clock
        return self.stats

    # ------------------------------------------------------------------
    # replay (drain) mode
    def replay(self, max_rounds: int = 100) -> SiteSimulationResult:
        """Drain the attached source with the batch shift loop's semantics.

        Round accounting matches :func:`run_site_simulation` exactly: an
        empty-queue clock jump, a fault-boundary wait, a dropped
        unschedulable head, and an executed batch each consume one of
        ``max_rounds``.
        """
        if self.rolling:
            raise ValueError("replay() is drain mode; rolling engines run()")
        boundaries = self.fault_schedule.boundaries() if self.injecting \
            else ()
        for _ in range(max_rounds):
            # Deliver everything that has arrived by the clock.
            while True:
                nxt = self.loop.peek()
                if nxt is None or nxt.kind is not EventKind.ARRIVAL \
                        or nxt.time_s > self.clock:
                    break
                event = self.loop.pop()
                self._on_arrival(event.payload["request"], event.time_s)
                if self._source is not None:
                    self._pull_arrival()
            if not self.queue.pending():
                jump = self._next_arrival_time()
                if jump is None:
                    break
                self.clock = jump
                continue

            budget_now, schedulable, quarantined, _ = self._fault_state()
            can_admit = schedulable is not None and budget_now > 0
            decision = self.admission.decide(
                self.queue, budget_now, nodes_available=len(schedulable),
                mark=True,
            ) if can_admit else None
            if decision is None or not decision.admitted:
                if self.injecting:
                    upcoming = [t for t in boundaries if t > self.clock]
                    if upcoming:
                        self.clock = upcoming[0]
                        continue
                self._fail_head()
                continue

            execution = execute_admitted_batch(
                clock=self.clock,
                batch_index=self._batch_counter,
                admitted=[self.queue.get(n) for n in decision.admitted],
                decision=decision,
                batch_cluster=schedulable,
                policy=self.policy,
                budget_w=self.base_budget_w,
                batch_budget_w=budget_now,
                quarantined=quarantined,
                manager=self.manager,
                noise_std=self.noise_std,
                run_seed=self.run_seed,
                fault_schedule=self.fault_schedule,
                degradation=self.degradation,
                reaction_s=self.reaction_s,
                injecting=self.injecting,
            )
            self._batch_counter += 1
            self._account_batch(execution)
            self.clock = execution.record.end_s

        truncated = tuple(r.name for r in self.queue.pending()) \
            + self._remaining_arrivals()
        return SiteSimulationResult(
            policy_name=self.policy.name,
            budget_w=self.base_budget_w,
            batches=tuple(self.batches),
            completed=tuple(self.completed),
            never_admitted=tuple(self.failed),
            job_turnaround_s=dict(self.turnaround_s),
            fault_schedule_name=self.fault_schedule.name
            if self.injecting else "",
            truncated=truncated,
        )

    def _next_arrival_time(self) -> Optional[float]:
        nxt = self.loop.peek()
        while nxt is not None and nxt.kind is not EventKind.ARRIVAL:
            # Drain non-arrival events (fault boundaries) that replay
            # semantics handle inline off the heap.
            self.loop.pop()
            nxt = self.loop.peek()
        return nxt.time_s if nxt is not None else None

    def _remaining_arrivals(self) -> Tuple[str, ...]:
        names: List[str] = []
        while self.loop:
            event = self.loop.pop()
            if event.kind is EventKind.ARRIVAL:
                names.append(event.payload["request"].name)
                if self._source is not None:
                    self._pull_arrival()
        while self._source is not None:
            try:
                arrival = next(self._source)
            except StopIteration:
                self._source = None
                break
            names.append(arrival.request.name)
        return tuple(names)


def stream_site_simulation(
    arrivals: Sequence[Arrival],
    cluster: Cluster,
    policy: Policy,
    budget_w: float,
    admission: Optional[PowerAwareAdmission] = None,
    manager: Optional[PowerManager] = None,
    noise_std: float = 0.004,
    max_batches: int = 100,
    run_seed: Optional[int] = None,
    fault_schedule=None,
    degradation=None,
    reaction_s: float = 1.0,
) -> SiteSimulationResult:
    """Replay a pre-built arrival list through the streaming engine.

    Signature-compatible with :func:`run_site_simulation` and —
    fault-free — bit-identical to it: same batches, same turnarounds,
    same energy, float for float.  The property suite pins this contract.
    """
    if not arrivals:
        raise ValueError("need at least one arrival")
    engine = SiteStreamEngine(
        cluster, policy, budget_w, admission=admission, manager=manager,
        noise_std=noise_std, run_seed=run_seed,
        fault_schedule=fault_schedule, degradation=degradation,
        reaction_s=reaction_s, rolling=False,
    )
    # The batch call copies requests so callers can replay one arrival
    # list repeatedly; match that here.
    copies = [
        dataclasses.replace(a, request=dataclasses.replace(a.request))
        for a in arrivals
    ]
    from repro.stream.arrivals import replay_stream

    engine.attach_source(replay_stream(copies))
    with span("stream.engine.replay", policy=policy.name,
              arrivals=len(arrivals)):
        return engine.replay(max_rounds=max_batches)
