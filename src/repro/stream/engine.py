"""The streaming site engine: sustained load through the admission stack.

Two operating modes over one :class:`~repro.stream.events.EventLoop`:

**Replay (drain) mode** — :func:`stream_site_simulation` runs a pre-built
arrival list through the engine with the *exact* round semantics of
:func:`~repro.manager.site_simulation.run_site_simulation`: one batch in
flight at a time on the whole cluster, admission whenever the cluster
drains, the same per-round accounting (an empty-queue clock jump, a
dropped unschedulable head, a fault-boundary wait, and an executed batch
each consume one round of ``max_batches``).  Both loops execute batches
through the shared
:func:`~repro.manager.site_simulation.execute_admitted_batch` physics, so
a replay is **bit-identical** to the batch call — the property suite pins
this.

**Rolling mode** — the long-lived service shape of ROADMAP item 1:
multiple batches in flight, `PowerAwareAdmission` re-run on every
capacity-freed event (a batch completing, the budget moving, a fault
boundary passing) against whatever has genuinely arrived, arrivals pulled
lazily from a generator (one lookahead event in the heap), queue
backpressure via ``max_pending``, and aggregate :class:`StreamStats`
instead of per-job records when ``record_jobs=False`` — the configuration
that holds memory flat through millions of arrivals per simulated day.

In rolling mode each in-flight batch reserves its admitted-set estimate
(`decision.admitted_power_w`) out of the facility budget and is launched
with that reservation as its budget, so the sum of concurrent batch
budgets never exceeds the facility budget in force at their launches.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.policy import Policy
from repro.hardware.cluster import Cluster
from repro.manager.admission import PowerAwareAdmission
from repro.manager.power_manager import PowerManager
from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.manager.site_simulation import (
    Arrival,
    BatchExecution,
    BatchRecord,
    SiteSimulationResult,
    execute_admitted_batch,
)
from repro.stream.events import EventKind, EventLoop
from repro.telemetry import emit, enabled, get_registry, span
from repro.units import ensure_positive

__all__ = ["StreamStats", "SiteStreamEngine", "stream_site_simulation"]


@dataclass
class StreamStats:
    """Aggregate counters the engine maintains in O(1) memory.

    The memory-bounded substitute for the batch call's per-job dicts:
    everything the bench and the daemon's ``stats`` op report comes from
    here, regardless of how many jobs have flowed through.
    """

    arrivals: int = 0
    rejected: int = 0
    batches: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    energy_j: float = 0.0
    overshoot_ws: float = 0.0
    turnaround_sum_s: float = 0.0
    turnaround_max_s: float = 0.0
    peak_pending: int = 0
    peak_tracked_jobs: int = 0
    peak_in_flight: int = 0
    clock_s: float = 0.0

    def mean_turnaround_s(self) -> float:
        """Mean submission-to-completion time over completed jobs."""
        if not self.jobs_completed:
            return 0.0
        return self.turnaround_sum_s / self.jobs_completed

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict view (telemetry ticks, daemon ``stats`` replies)."""
        out = dataclasses.asdict(self)
        out["mean_turnaround_s"] = self.mean_turnaround_s()
        return out


class SiteStreamEngine:
    """Event-driven site loop over the shared batch physics.

    Parameters mirror :func:`run_site_simulation` where they overlap;
    the streaming knobs:

    rolling:
        False = replay semantics (one batch in flight, whole cluster,
        bit-identical to the batch shift loop); True = sustained-load
        semantics (concurrent batches over free hosts, admission on
        capacity-freed events).
    max_pending:
        Queue backpressure: an arrival landing while this many jobs are
        pending is rejected (counted in ``stats.rejected``; the daemon
        surfaces it as an error reply).  ``None`` = unbounded.
    record_jobs / record_batches:
        When False, per-job turnarounds / per-batch records are folded
        into :class:`StreamStats` instead of being kept — the
        bounded-memory configuration for sustained load.
    tick_interval_s:
        When set, a TELEMETRY_TICK event fires every interval of
        simulated time, emitting a ``stream.engine``/``tick`` event with
        the stats snapshot (the daemon's pub/sub feed).
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: Policy,
        budget_w: float,
        admission: Optional[PowerAwareAdmission] = None,
        manager: Optional[PowerManager] = None,
        noise_std: float = 0.004,
        run_seed: Optional[int] = None,
        fault_schedule=None,
        degradation=None,
        reaction_s: float = 1.0,
        rolling: bool = False,
        max_pending: Optional[int] = None,
        record_jobs: bool = True,
        record_batches: bool = True,
        tick_interval_s: Optional[float] = None,
    ) -> None:
        ensure_positive(budget_w, "budget_w")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be positive or None")
        if tick_interval_s is not None:
            ensure_positive(tick_interval_s, "tick_interval_s")
        self.cluster = cluster
        self.policy = policy
        self.base_budget_w = float(budget_w)
        self.budget_w = float(budget_w)
        self.manager = manager if manager is not None else PowerManager()
        self.admission = admission if admission is not None else \
            PowerAwareAdmission(model=self.manager.model)
        self.noise_std = noise_std
        self.run_seed = run_seed
        self.fault_schedule = fault_schedule
        self.degradation = degradation
        self.reaction_s = reaction_s
        self.injecting = fault_schedule is not None and fault_schedule.active
        self.rolling = rolling
        self.max_pending = max_pending
        self.record_jobs = record_jobs
        self.record_batches = record_batches
        self.tick_interval_s = tick_interval_s

        self.loop = EventLoop()
        self.queue = JobQueue()
        self.clock = 0.0
        self.stats = StreamStats()
        self.batches: List[BatchRecord] = []
        self.completed: List[str] = []
        self.failed: List[str] = []
        self.turnaround_s: Dict[str, float] = {}
        self._arrival_time: Dict[str, float] = {}
        self._source: Optional[Iterator[Arrival]] = None
        self._batch_counter = 0
        # Rolling-mode occupancy: host ids currently free, and the watt
        # reservations of in-flight batches.
        self._free_ids: Set[int] = set(range(len(cluster)))
        self._reserved_w = 0.0
        self._in_flight = 0
        self._tick_scheduled = False
        # Rolling mode re-runs admission at fault boundaries as timeline
        # events; replay mode handles boundaries inline (matching the
        # batch shift loop), so its heap carries only arrivals.
        if self.injecting and rolling:
            for t in fault_schedule.boundaries():
                self.loop.push(t, EventKind.FAULT_BOUNDARY)

    # ------------------------------------------------------------------
    # feeding the timeline
    def attach_source(self, source: Iterator[Arrival]) -> None:
        """Feed arrivals lazily from a time-ordered iterator.

        Exactly one lookahead arrival lives in the event heap at any
        time; the next is pulled when it is delivered.
        """
        if self._source is not None:
            raise ValueError("a source is already attached")
        self._source = iter(source)
        self._pull_arrival()

    def submit(self, request: JobRequest, time_s: Optional[float] = None) -> float:
        """Schedule one job arrival (the daemon's ``submit`` op).

        Defaults to the current clock; past times are clamped to it (an
        event-driven service cannot admit into its own history).
        Returns the effective arrival time.
        """
        t = self.clock if time_s is None else max(float(time_s), self.clock)
        self.loop.push(t, EventKind.ARRIVAL, request=request)
        return t

    def set_budget(self, budget_w: float, time_s: Optional[float] = None) -> float:
        """Schedule a facility budget change (mid-stream re-planning)."""
        ensure_positive(budget_w, "budget_w")
        t = self.clock if time_s is None else max(float(time_s), self.clock)
        self.loop.push(t, EventKind.BUDGET_CHANGE, budget_w=float(budget_w))
        return t

    def _pull_arrival(self) -> None:
        assert self._source is not None
        try:
            arrival = next(self._source)
        except StopIteration:
            self._source = None
            return
        self.loop.push(arrival.time_s, EventKind.ARRIVAL,
                       request=arrival.request)

    # ------------------------------------------------------------------
    # event handlers
    def _on_arrival(self, request: JobRequest, time_s: float) -> None:
        self.stats.arrivals += 1
        pending = len(self.queue.pending())
        if self.max_pending is not None and pending >= self.max_pending:
            self.stats.rejected += 1
            if enabled():
                emit("stream.engine", "job_rejected", name=request.name,
                     pending=pending, max_pending=self.max_pending)
            return
        self.queue.submit(request)
        self._arrival_time[request.name] = time_s
        self.stats.peak_pending = max(self.stats.peak_pending, pending + 1)
        self.stats.peak_tracked_jobs = max(
            self.stats.peak_tracked_jobs, len(self.queue)
        )

    def _account_batch(self, execution: BatchExecution) -> None:
        """Fold one finished batch into the engine's records and stats."""
        record = execution.record
        self.stats.batches += 1
        self.stats.energy_j += record.energy_j
        self.stats.overshoot_ws += record.overshoot_ws
        if self.record_batches:
            self.batches.append(record)
        for name, completion in zip(execution.job_names,
                                    execution.completion_s):
            self.queue.mark(name, JobState.RUNNING)
            self.queue.mark(name, JobState.COMPLETED)
            turnaround = completion - self._arrival_time.pop(name)
            self.stats.jobs_completed += 1
            self.stats.turnaround_sum_s += turnaround
            self.stats.turnaround_max_s = max(
                self.stats.turnaround_max_s, turnaround
            )
            if self.record_jobs:
                self.completed.append(name)
                self.turnaround_s[name] = turnaround
            else:
                self.queue.forget(name)

    def _fail_head(self) -> None:
        stuck = self.queue.pending()[0]
        self.queue.mark(stuck.name, JobState.FAILED)
        self._arrival_time.pop(stuck.name, None)
        self.stats.jobs_failed += 1
        if self.record_jobs:
            self.failed.append(stuck.name)
        else:
            self.queue.forget(stuck.name)
        if enabled():
            emit("stream.engine", "job_failed", name=stuck.name)

    def _fault_state(self) -> Tuple[float, Optional[Cluster], Tuple[int, ...],
                                    Set[int]]:
        """(budget in force, schedulable cluster, quarantined, failed ids)."""
        if not self.injecting:
            return self.budget_w, self.cluster, (), set()
        budget = self.fault_schedule.budget_at(self.clock, self.budget_w)
        failed_hosts = set(self.fault_schedule.failed_hosts_at(self.clock))
        if not failed_hosts:
            return budget, self.cluster, (), set()
        healthy = [i for i in range(len(self.cluster))
                   if i not in failed_hosts]
        quarantined = tuple(sorted(failed_hosts))
        sub = self.cluster.subset(healthy) if healthy else None
        return budget, sub, quarantined, failed_hosts

    # ------------------------------------------------------------------
    # rolling mode
    def _idle(self) -> bool:
        return (self._source is None and self._in_flight == 0
                and not self.queue.pending())

    def _schedule_tick(self) -> None:
        if self.tick_interval_s is None or self._tick_scheduled:
            return
        self.loop.push(self.clock + self.tick_interval_s,
                       EventKind.TELEMETRY_TICK)
        self._tick_scheduled = True

    def _on_tick(self) -> None:
        self._tick_scheduled = False
        self.stats.clock_s = self.clock
        if enabled():
            registry = get_registry()
            registry.gauge("stream.engine.pending").set(
                len(self.queue.pending())
            )
            registry.gauge("stream.engine.in_flight").set(self._in_flight)
            emit("stream.engine", "tick", **self.stats.snapshot())
        if not self._idle() or self.loop:
            self._schedule_tick()

    def _try_admit_rolling(self) -> None:
        """Admit against free hosts and unreserved budget; launch batches.

        Runs until nothing more fits — each launch frees nothing, so one
        pass per triggering event suffices; the next BATCH_COMPLETE or
        BUDGET_CHANGE re-triggers it.
        """
        while self.queue.pending():
            budget_now, schedulable, quarantined, failed_hosts = \
                self._fault_state()
            free_healthy = sorted(self._free_ids - failed_hosts)
            avail_w = budget_now - self._reserved_w
            if not free_healthy or avail_w <= 0 or schedulable is None:
                return
            decision = self.admission.decide(
                self.queue, avail_w, nodes_available=len(free_healthy),
                mark=True,
            )
            if not decision.admitted:
                if (self._in_flight == 0 and not self.injecting
                        and len(free_healthy) == len(self.cluster)):
                    # Full cluster, full budget, nothing in flight: the
                    # head can never run anywhere — unschedulable.
                    self._fail_head()
                    continue
                return  # wait for a capacity-freed event
            host_ids = free_healthy[:decision.admitted_nodes]
            batch_cluster = self.cluster.subset(host_ids)
            share_w = decision.admitted_power_w
            execution = execute_admitted_batch(
                clock=self.clock,
                batch_index=self._batch_counter,
                admitted=[self.queue.get(n) for n in decision.admitted],
                decision=decision,
                batch_cluster=batch_cluster,
                policy=self.policy,
                budget_w=share_w,
                batch_budget_w=share_w,
                quarantined=quarantined,
                manager=self.manager,
                noise_std=self.noise_std,
                run_seed=self.run_seed,
                fault_schedule=self.fault_schedule,
                degradation=self.degradation,
                reaction_s=self.reaction_s,
                injecting=self.injecting,
            )
            self._batch_counter += 1
            self._free_ids.difference_update(host_ids)
            self._reserved_w += share_w
            self._in_flight += 1
            self.stats.peak_in_flight = max(
                self.stats.peak_in_flight, self._in_flight
            )
            self.loop.push(
                execution.record.end_s, EventKind.BATCH_COMPLETE,
                execution=execution, hosts=tuple(host_ids), share_w=share_w,
            )

    def run(self, max_events: Optional[int] = None) -> StreamStats:
        """Pump the rolling-mode event loop until the timeline drains.

        Telemetry ticks alone do not keep the engine alive: once the
        source is exhausted, nothing is pending, and no batch is in
        flight, remaining ticks are drained without rescheduling.
        """
        if not self.rolling:
            raise ValueError("run() is rolling mode; use replay() instead")
        processed = 0
        self._schedule_tick()
        with span("stream.engine.run", rolling=True) as sp:
            while self.loop:
                if max_events is not None and processed >= max_events:
                    break
                event = self.loop.pop()
                self.clock = max(self.clock, event.time_s)
                processed += 1
                if event.kind is EventKind.ARRIVAL:
                    self._on_arrival(event.payload["request"], event.time_s)
                    if self._source is not None:
                        self._pull_arrival()
                    self._try_admit_rolling()
                elif event.kind is EventKind.BATCH_COMPLETE:
                    self._free_ids.update(event.payload["hosts"])
                    self._reserved_w -= event.payload["share_w"]
                    self._in_flight -= 1
                    self._account_batch(event.payload["execution"])
                    self._try_admit_rolling()
                elif event.kind is EventKind.BUDGET_CHANGE:
                    self.budget_w = event.payload["budget_w"]
                    if enabled():
                        emit("stream.engine", "budget_change",
                             budget_w=self.budget_w, time_s=self.clock)
                    self._try_admit_rolling()
                elif event.kind is EventKind.FAULT_BOUNDARY:
                    self._try_admit_rolling()
                elif event.kind is EventKind.TELEMETRY_TICK:
                    self._on_tick()
            if sp is not None:
                sp.set_attribute("events", processed)
                sp.set_attribute("batches", self.stats.batches)
        self.stats.clock_s = self.clock
        return self.stats

    # ------------------------------------------------------------------
    # replay (drain) mode
    def replay(self, max_rounds: int = 100) -> SiteSimulationResult:
        """Drain the attached source with the batch shift loop's semantics.

        Round accounting matches :func:`run_site_simulation` exactly: an
        empty-queue clock jump, a fault-boundary wait, a dropped
        unschedulable head, and an executed batch each consume one of
        ``max_rounds``.
        """
        if self.rolling:
            raise ValueError("replay() is drain mode; rolling engines run()")
        boundaries = self.fault_schedule.boundaries() if self.injecting \
            else ()
        for _ in range(max_rounds):
            # Deliver everything that has arrived by the clock.
            while True:
                nxt = self.loop.peek()
                if nxt is None or nxt.kind is not EventKind.ARRIVAL \
                        or nxt.time_s > self.clock:
                    break
                event = self.loop.pop()
                self._on_arrival(event.payload["request"], event.time_s)
                if self._source is not None:
                    self._pull_arrival()
            if not self.queue.pending():
                jump = self._next_arrival_time()
                if jump is None:
                    break
                self.clock = jump
                continue

            budget_now, schedulable, quarantined, _ = self._fault_state()
            can_admit = schedulable is not None and budget_now > 0
            decision = self.admission.decide(
                self.queue, budget_now, nodes_available=len(schedulable),
                mark=True,
            ) if can_admit else None
            if decision is None or not decision.admitted:
                if self.injecting:
                    upcoming = [t for t in boundaries if t > self.clock]
                    if upcoming:
                        self.clock = upcoming[0]
                        continue
                self._fail_head()
                continue

            execution = execute_admitted_batch(
                clock=self.clock,
                batch_index=self._batch_counter,
                admitted=[self.queue.get(n) for n in decision.admitted],
                decision=decision,
                batch_cluster=schedulable,
                policy=self.policy,
                budget_w=self.base_budget_w,
                batch_budget_w=budget_now,
                quarantined=quarantined,
                manager=self.manager,
                noise_std=self.noise_std,
                run_seed=self.run_seed,
                fault_schedule=self.fault_schedule,
                degradation=self.degradation,
                reaction_s=self.reaction_s,
                injecting=self.injecting,
            )
            self._batch_counter += 1
            self._account_batch(execution)
            self.clock = execution.record.end_s

        truncated = tuple(r.name for r in self.queue.pending()) \
            + self._remaining_arrivals()
        return SiteSimulationResult(
            policy_name=self.policy.name,
            budget_w=self.base_budget_w,
            batches=tuple(self.batches),
            completed=tuple(self.completed),
            never_admitted=tuple(self.failed),
            job_turnaround_s=dict(self.turnaround_s),
            fault_schedule_name=self.fault_schedule.name
            if self.injecting else "",
            truncated=truncated,
        )

    def _next_arrival_time(self) -> Optional[float]:
        nxt = self.loop.peek()
        while nxt is not None and nxt.kind is not EventKind.ARRIVAL:
            # Drain non-arrival events (fault boundaries) that replay
            # semantics handle inline off the heap.
            self.loop.pop()
            nxt = self.loop.peek()
        return nxt.time_s if nxt is not None else None

    def _remaining_arrivals(self) -> Tuple[str, ...]:
        names: List[str] = []
        while self.loop:
            event = self.loop.pop()
            if event.kind is EventKind.ARRIVAL:
                names.append(event.payload["request"].name)
                if self._source is not None:
                    self._pull_arrival()
        while self._source is not None:
            try:
                arrival = next(self._source)
            except StopIteration:
                self._source = None
                break
            names.append(arrival.request.name)
        return tuple(names)


def stream_site_simulation(
    arrivals: Sequence[Arrival],
    cluster: Cluster,
    policy: Policy,
    budget_w: float,
    admission: Optional[PowerAwareAdmission] = None,
    manager: Optional[PowerManager] = None,
    noise_std: float = 0.004,
    max_batches: int = 100,
    run_seed: Optional[int] = None,
    fault_schedule=None,
    degradation=None,
    reaction_s: float = 1.0,
) -> SiteSimulationResult:
    """Replay a pre-built arrival list through the streaming engine.

    Signature-compatible with :func:`run_site_simulation` and —
    fault-free — bit-identical to it: same batches, same turnarounds,
    same energy, float for float.  The property suite pins this contract.
    """
    if not arrivals:
        raise ValueError("need at least one arrival")
    engine = SiteStreamEngine(
        cluster, policy, budget_w, admission=admission, manager=manager,
        noise_std=noise_std, run_seed=run_seed,
        fault_schedule=fault_schedule, degradation=degradation,
        reaction_s=reaction_s, rolling=False,
    )
    # The batch call copies requests so callers can replay one arrival
    # list repeatedly; match that here.
    copies = [
        dataclasses.replace(a, request=dataclasses.replace(a.request))
        for a in arrivals
    ]
    from repro.stream.arrivals import replay_stream

    engine.attach_source(replay_stream(copies))
    with span("stream.engine.replay", policy=policy.name,
              arrivals=len(arrivals)):
        return engine.replay(max_rounds=max_batches)
