"""Execution simulator: runs workload mixes under per-host power caps.

The engine is iteration-level and fully vectorised: a 900-node mix over 100
bulk-synchronous iterations is a handful of NumPy array operations, which
keeps the full policy x mix x budget evaluation grid of the paper's Figs.
7-8 at interactive speed.

* :mod:`repro.sim.engine` — the physics: cap -> frequency -> phase time ->
  power, plus the inverse map (time target -> required frequency/power)
  the power balancer relies on.
* :mod:`repro.sim.execution` — the BSP loop: per-iteration job times via
  segmented maxima, barrier slack, per-host energy accounting, measurement
  noise for confidence intervals.
* :mod:`repro.sim.batch` — the scenario axis: an ``(S, hosts)`` cap matrix
  evaluated in one engine pass, bit-identical to ``S`` serial runs.
* :mod:`repro.sim.results` — result containers with derived metrics
  (elapsed time, energy, EDP, FLOPS/W, per-host mean power).
"""

from repro.sim.batch import LayoutBatch, simulate_cap_batch, stack_layouts
from repro.sim.engine import ExecutionModel
from repro.sim.execution import simulate_mix, SimulationOptions
from repro.sim.results import MixRunResult

__all__ = [
    "ExecutionModel",
    "simulate_mix",
    "simulate_cap_batch",
    "stack_layouts",
    "LayoutBatch",
    "SimulationOptions",
    "MixRunResult",
]
