"""Batched scenario evaluation: many cap vectors through one engine pass.

Every headline experiment in the paper is a *sweep* — the Fig. 5 balancer
heat map, the Table III budget ladders, Fig. 8's mix x budget x policy
grid.  Evaluating a sweep one :func:`~repro.sim.execution.simulate_mix`
call at a time pays full per-call overhead per scenario even though the
physics is a pure ufunc chain that broadcasts.  This module adds the
*scenario axis*: an ``(S, hosts)`` cap matrix runs through one pass of the
shared engine body (:func:`repro.sim.execution._execute_scenarios`) as
``(S, iterations, hosts)`` tensors.

Determinism contract
--------------------
``simulate_cap_batch(mix, caps_sw, ...)[s]`` is **bit-identical** to
``simulate_mix(mix, caps_sw[s], ...)`` with the matching per-scenario
seed — not merely close.  Both entry points share one implementation, the
noise stream is drawn per scenario from its own ``default_rng(seed)``, and
the reductions are arranged so each scenario slice sees the exact
floating-point operation order of a serial run.  The property is pinned by
``tests/property/test_batch_properties.py``.

Batch vs pool
-------------
Batching removes *per-call* overhead inside one process; the
:mod:`repro.parallel` pool removes *wall-clock* by using more processes.
They compose: ladder helpers chunk their rungs across pool workers and
each worker evaluates its chunk as one batch.  Batched runs also share
the content-addressed result cache with serial runs — per-scenario cache
keys are identical, so a batch can be partially served from cache and a
later serial call hits entries a batch stored.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.engine import ExecutionModel
from repro.sim.execution import (
    DEFAULT_OPTIONS,
    SimulationOptions,
    _execute_scenarios,
)
from repro.sim.results import MixRunResult
from repro.telemetry import ScopedTimer, emit, enabled, get_registry, span
from repro.workload.job import HostLayout, Job, WorkloadMix

__all__ = [
    "LayoutBatch",
    "stack_cache_info",
    "stack_layouts",
    "stack_job_layouts",
    "simulate_cap_batch",
    "simulate_layout_batch",
]


@dataclass(frozen=True)
class LayoutBatch:
    """A stack of per-scenario host layouts sharing one job structure.

    The engine body treats this interchangeably with a
    :class:`~repro.workload.job.HostLayout`: per-host physics arrays carry
    a leading scenario axis ``(S, hosts)`` while the job index structure
    (``job_index``, ``job_boundaries``) stays one-dimensional and common
    to every scenario.  Built via :func:`stack_layouts` from layouts whose
    *workloads* differ (the heat-map case: every cell is a different
    kernel configuration over the same hosts).
    """

    job_index: np.ndarray             # (hosts,)
    job_boundaries: np.ndarray        # (jobs + 1,)
    critical: np.ndarray              # (S, hosts)
    kappa: np.ndarray                 # (S, hosts)
    poll_kappa: np.ndarray            # (S, hosts)
    traffic_gb: np.ndarray            # (S, hosts)
    gflop: np.ndarray                 # (S, hosts)
    compute_ceiling_index: np.ndarray  # (S, hosts)
    ceiling_names: Tuple[str, ...]

    @property
    def host_count(self) -> int:
        """Hosts per scenario."""
        return int(self.job_index.size)

    @property
    def scenario_count(self) -> int:
        """Scenarios stacked in this batch."""
        return int(self.kappa.shape[0])

    def take(self, indices: np.ndarray) -> "LayoutBatch":
        """Gather a subset of scenario rows into a new batch.

        The batched controller runtime uses this to keep only the
        still-active runs' layout rows after convergence freezes cells.
        Rows are fancy-index copies, so downstream row reductions see the
        same contiguous memory a freshly stacked batch would.
        """
        idx = np.asarray(indices, dtype=int)
        return LayoutBatch(
            job_index=self.job_index,
            job_boundaries=self.job_boundaries,
            critical=self.critical[idx],
            kappa=self.kappa[idx],
            poll_kappa=self.poll_kappa[idx],
            traffic_gb=self.traffic_gb[idx],
            gflop=self.gflop[idx],
            compute_ceiling_index=self.compute_ceiling_index[idx],
            ceiling_names=self.ceiling_names,
        )


def stack_layouts(layouts: Sequence[HostLayout]) -> LayoutBatch:
    """Stack per-scenario layouts into one :class:`LayoutBatch`.

    All layouts must share the same host count and job block structure
    (``job_index`` / ``job_boundaries``); their physics arrays may differ
    freely.  Compute-ceiling indices are remapped onto the union of the
    ceiling-name vocabularies, so layouts built from different kernel
    configurations stack without renaming.
    """
    if not layouts:
        raise ValueError("stack_layouts needs at least one layout")
    first = layouts[0]
    names: List[str] = []
    lookup = {}
    remapped = []
    for layout in layouts:
        if not np.array_equal(layout.job_index, first.job_index) or \
                not np.array_equal(layout.job_boundaries, first.job_boundaries):
            raise ValueError(
                "all layouts in a batch must share one job block structure"
            )
        for name in layout.ceiling_names:
            if name not in lookup:
                lookup[name] = len(names)
                names.append(name)
        table = np.array([lookup[n] for n in layout.ceiling_names], dtype=int)
        remapped.append(table[layout.compute_ceiling_index])
    return LayoutBatch(
        job_index=first.job_index,
        job_boundaries=first.job_boundaries,
        critical=np.stack([la.critical for la in layouts]),
        kappa=np.stack([la.kappa for la in layouts]),
        poll_kappa=np.stack([la.poll_kappa for la in layouts]),
        traffic_gb=np.stack([la.traffic_gb for la in layouts]),
        gflop=np.stack([la.gflop for la in layouts]),
        compute_ceiling_index=np.stack(remapped),
        ceiling_names=tuple(names),
    )


#: Identity-keyed memo for :func:`_stack_layouts_cached`.  Values hold
#: strong references to the source layouts so the ``id`` keys stay valid
#: for the lifetime of the entry.
_STACK_CACHE: dict = {}
_STACK_CACHE_LIMIT = 128
_STACK_CACHE_HITS = 0
_STACK_CACHE_MISSES = 0


def stack_cache_info() -> dict:
    """Statistics for the stacked-layout memo (for tests and tuning).

    ``entries`` is bounded by ``limit`` — the memo clears wholesale when
    full, so long-running fused facility campaigns cannot grow it without
    bound.  ``hits``/``misses`` count lookups since process start.
    """
    return {
        "entries": len(_STACK_CACHE),
        "limit": _STACK_CACHE_LIMIT,
        "hits": _STACK_CACHE_HITS,
        "misses": _STACK_CACHE_MISSES,
    }


def _stack_layouts_cached(layouts: Sequence[HostLayout]) -> LayoutBatch:
    """:func:`stack_layouts`, memoised on layout *identity*.

    The streaming engine's batched rolling mode stacks the same shared
    read-only layout objects (one per job shape, primed by the batch
    planner) group after group, so the stacked batch can be reused
    outright instead of re-gathering ``S × hosts`` physics arrays per
    step.  Layouts are immutable by contract (:meth:`WorkloadMix.layout`
    marks the arrays read-only), which is what makes the stacked result
    shareable; callers that mutate layouts must use :func:`stack_layouts`
    directly.

    The fused facility engine drives group sizes that vary round to
    round (clusters drop out as their streams drain), so the all-same
    path additionally memoises the *one-row* stack under
    ``(id(first), 1)``: a new scenario count pays only the ``np.repeat``
    fan-out, never a re-gather of the physics arrays.
    """
    global _STACK_CACHE_HITS, _STACK_CACHE_MISSES
    first = layouts[0]
    scenarios = len(layouts)
    if all(layout is first for layout in layouts):
        # All rows share one layout object (the planner's primed-layout
        # case): the stacked batch is S copies of a single row, built by
        # repeating a one-row stack instead of re-gathering S rows.
        key = (id(first), scenarios)
        entry = _STACK_CACHE.get(key)
        if entry is not None and entry[0][0] is first:
            _STACK_CACHE_HITS += 1
            return entry[1]
        _STACK_CACHE_MISSES += 1
        single_key = (id(first), 1)
        single_entry = _STACK_CACHE.get(single_key)
        if single_entry is not None and single_entry[0][0] is first:
            single = single_entry[1]
        else:
            single = stack_layouts([first])
            if len(_STACK_CACHE) >= _STACK_CACHE_LIMIT:
                _STACK_CACHE.clear()
            _STACK_CACHE[single_key] = ((first,), single)
        if scenarios == 1:
            return single
        batch = LayoutBatch(
            job_index=single.job_index,
            job_boundaries=single.job_boundaries,
            critical=np.repeat(single.critical, scenarios, axis=0),
            kappa=np.repeat(single.kappa, scenarios, axis=0),
            poll_kappa=np.repeat(single.poll_kappa, scenarios, axis=0),
            traffic_gb=np.repeat(single.traffic_gb, scenarios, axis=0),
            gflop=np.repeat(single.gflop, scenarios, axis=0),
            compute_ceiling_index=np.repeat(
                single.compute_ceiling_index, scenarios, axis=0
            ),
            ceiling_names=single.ceiling_names,
        )
        held = (first,)
    else:
        key = tuple(id(layout) for layout in layouts)
        entry = _STACK_CACHE.get(key)
        if entry is not None:
            held, batch = entry
            if all(a is b for a, b in zip(held, layouts)):
                _STACK_CACHE_HITS += 1
                return batch
        _STACK_CACHE_MISSES += 1
        batch = stack_layouts(layouts)
        held = tuple(layouts)
    if len(_STACK_CACHE) >= _STACK_CACHE_LIMIT:
        _STACK_CACHE.clear()
    _STACK_CACHE[key] = (held, batch)
    return batch


def stack_job_layouts(jobs: Sequence[Job]) -> LayoutBatch:
    """Stack one single-job layout per job into a :class:`LayoutBatch`.

    The batched controller runtime and the streaming engine's batched
    rolling mode both step many independent single-job runs in lockstep;
    each run's layout is the layout of a one-job mix over its own hosts.
    All jobs must share a node count (the common job block structure
    :func:`stack_layouts` requires).
    """
    return stack_layouts(
        [WorkloadMix(name=job.name, jobs=(job,)).layout() for job in jobs]
    )


def _per_scenario(value, scenarios: int, name: str, kind) -> list:
    """Broadcast a scalar-or-sequence argument to one value per scenario."""
    if isinstance(value, (str, float, int)) and not isinstance(value, bool):
        return [kind(value)] * scenarios
    values = [kind(v) for v in value]
    if len(values) != scenarios:
        raise ValueError(
            f"{name} must be a scalar or length-{scenarios} sequence, "
            f"got length {len(values)}"
        )
    return values


def simulate_cap_batch(
    mix: WorkloadMix,
    caps_sw: np.ndarray,
    efficiencies: np.ndarray,
    model: Optional[ExecutionModel] = None,
    options: Optional[SimulationOptions] = None,
    seeds: Optional[Sequence[int]] = None,
    policy_names: Union[str, Sequence[str]] = "unmanaged",
    budgets_w: Union[float, Sequence[float]] = 0.0,
) -> List[MixRunResult]:
    """Simulate ``S`` cap scenarios against one mix in a single pass.

    Parameters
    ----------
    mix / efficiencies:
        As in :func:`~repro.sim.execution.simulate_mix` — one workload on
        one host allocation, shared by every scenario.
    caps_sw:
        Cap matrix of shape ``(S, hosts)``; row ``s`` is scenario ``s``'s
        per-host node caps.
    options:
        Noise/barrier settings shared by all scenarios (``None`` means
        :data:`~repro.sim.execution.DEFAULT_OPTIONS`).
    seeds:
        Per-scenario noise seeds, length ``S``.  ``None`` replicates
        ``options.seed`` — all scenarios then share one noise stream,
        exactly as ``S`` serial calls with the same options would.
    policy_names / budgets_w:
        Result metadata, scalar (shared) or per-scenario sequences.

    Returns
    -------
    list of MixRunResult
        One result per scenario, in row order; element ``s`` is
        bit-identical to the corresponding serial ``simulate_mix`` call.

    When a :func:`~repro.parallel.cache.active_cache` is installed, each
    scenario is looked up under the *serial* cache key; only the missing
    rows go through the engine, and their results are stored for later
    serial or batched runs to hit.
    """
    if options is None:
        options = DEFAULT_OPTIONS
    model = model if model is not None else ExecutionModel()
    layout = mix.layout()
    caps = np.asarray(caps_sw, dtype=float)
    eff = np.asarray(efficiencies, dtype=float)
    if caps.ndim != 2 or caps.shape[1] != layout.host_count:
        raise ValueError(
            f"caps_sw must have shape (S, {layout.host_count}), got {caps.shape}"
        )
    if eff.shape != (layout.host_count,):
        raise ValueError(
            f"efficiencies must have shape ({layout.host_count},), got {eff.shape}"
        )
    scenarios = caps.shape[0]
    if seeds is None:
        seed_list = [int(options.seed)] * scenarios
    else:
        seed_list = [int(s) for s in seeds]
        if len(seed_list) != scenarios:
            raise ValueError(
                f"seeds must have length {scenarios}, got {len(seed_list)}"
            )
    names = _per_scenario(policy_names, scenarios, "policy_names", str)
    budgets = _per_scenario(budgets_w, scenarios, "budgets_w", float)
    n_iter = mix.common_iterations()

    from repro.parallel.cache import active_cache

    with span("sim.simulate_cap_batch", mix=mix.name,
              hosts=layout.host_count, scenarios=scenarios) as trace_sp:
        cache = active_cache()
        results: List[Optional[MixRunResult]] = [None] * scenarios
        keys: List[Optional[str]] = [None] * scenarios
        misses = list(range(scenarios))
        if cache is not None:
            from repro.io.serialize import result_from_dict

            misses = []
            for s in range(scenarios):
                opts_s = dataclasses.replace(options, seed=seed_list[s])
                keys[s] = cache.key(
                    "simulate", mix, caps[s], eff, model, opts_s,
                    names[s], budgets[s],
                )
                payload = cache.get(keys[s])
                if payload is not None:
                    results[s] = result_from_dict(payload)
                else:
                    misses.append(s)
        hits = scenarios - len(misses)
        if trace_sp is not None:
            trace_sp.set_attribute("cache_hits", hits)

        with ScopedTimer("sim.execution.simulate_cap_batch_s") as timer:
            if misses:
                out = _execute_scenarios(
                    layout, caps[misses], eff, model, n_iter,
                    options.noise_std, options.barrier_overhead_s,
                    [seed_list[s] for s in misses],
                    fault_schedule=options.fault_schedule,
                )
                for row, s in enumerate(misses):
                    results[s] = MixRunResult(
                        mix_name=mix.name,
                        policy_name=names[s],
                        budget_w=budgets[s],
                        job_names=mix.job_names,
                        iteration_times_s=out.job_iter_times[row],
                        iteration_energy_j=out.iteration_energy[row],
                        host_energy_j=out.host_energy[row],
                        host_mean_power_w=out.host_mean_power[row],
                        host_job_index=layout.job_index,
                        total_gflop=float(out.total_gflop[row]),
                    )
        if cache is not None and misses:
            from repro.io.serialize import result_to_dict

            for s in misses:
                cache.put(keys[s], result_to_dict(results[s]))

        if enabled():
            registry = get_registry()
            registry.counter("sim.execution.batch_runs").inc()
            if misses:
                registry.counter("sim.execution.runs").inc(len(misses))
            if hits:
                registry.counter("sim.execution.cache_hits").inc(hits)
            emit(
                "sim.execution", "mix_batch_simulated",
                mix=mix.name, hosts=layout.host_count, scenarios=scenarios,
                cache_hits=hits, iterations=n_iter, wall_s=timer.elapsed_s,
            )
    return results  # type: ignore[return-value]


def simulate_layout_batch(
    mixes: Sequence[WorkloadMix],
    caps_sw: np.ndarray,
    efficiencies_sw: np.ndarray,
    model: Optional[ExecutionModel] = None,
    options: Optional[SimulationOptions] = None,
    seeds: Optional[Sequence[int]] = None,
    policy_names: Union[str, Sequence[str]] = "unmanaged",
    budgets_w: Union[float, Sequence[float]] = 0.0,
) -> List[MixRunResult]:
    """Simulate ``S`` *independent mixes* on ``S`` host rows in one pass.

    Where :func:`simulate_cap_batch` sweeps cap vectors over one mix on
    one host allocation, this entry point batches whole co-resident
    *runs*: scenario ``s`` is mix ``mixes[s]`` on its own hosts with its
    own efficiencies row — the shape of the streaming engine's rolling
    mode, where several admitted batches occupy disjoint node subsets at
    once.  All mixes must share one job block structure (same per-job
    node counts) and one iteration count, the precondition of
    :func:`stack_layouts`; callers group heterogeneous batches by that
    structure signature first.

    Parameters
    ----------
    mixes:
        One workload mix per scenario, length ``S``.
    caps_sw / efficiencies_sw:
        ``(S, hosts)`` matrices; row ``s`` is scenario ``s``'s per-host
        caps and host efficiencies.
    seeds / policy_names / budgets_w:
        As in :func:`simulate_cap_batch`.

    Returns
    -------
    list of MixRunResult
        Element ``s`` is **bit-identical** to
        ``simulate_mix(mixes[s], caps_sw[s], efficiencies_sw[s], ...)``
        with the matching seed: the engine body is a pure elementwise
        ufunc chain over the host axis with per-scenario contiguous
        reductions, so stacking independent rows cannot change any
        element (pinned by ``tests/property/test_stream_properties.py``).

    Per-scenario cache keys are the *serial* keys, so a layout batch
    interoperates with serial runs through any installed
    :func:`~repro.parallel.cache.active_cache` exactly as cap batches do.
    """
    if not mixes:
        raise ValueError("simulate_layout_batch needs at least one mix")
    if options is None:
        options = DEFAULT_OPTIONS
    model = model if model is not None else ExecutionModel()
    layouts = [mix.layout() for mix in mixes]
    hosts = layouts[0].host_count
    scenarios = len(mixes)
    caps = np.asarray(caps_sw, dtype=float)
    eff = np.asarray(efficiencies_sw, dtype=float)
    if caps.shape != (scenarios, hosts):
        raise ValueError(
            f"caps_sw must have shape ({scenarios}, {hosts}), got {caps.shape}"
        )
    if eff.shape != (scenarios, hosts):
        raise ValueError(
            f"efficiencies_sw must have shape ({scenarios}, {hosts}), "
            f"got {eff.shape}"
        )
    n_iter = mixes[0].common_iterations()
    for mix in mixes[1:]:
        if mix.common_iterations() != n_iter:
            raise ValueError(
                "all mixes in a layout batch must share one iteration count"
            )
    if seeds is None:
        seed_list = [int(options.seed)] * scenarios
    else:
        seed_list = [int(s) for s in seeds]
        if len(seed_list) != scenarios:
            raise ValueError(
                f"seeds must have length {scenarios}, got {len(seed_list)}"
            )
    names = _per_scenario(policy_names, scenarios, "policy_names", str)
    budgets = _per_scenario(budgets_w, scenarios, "budgets_w", float)

    from repro.parallel.cache import active_cache

    with span("sim.simulate_layout_batch", hosts=hosts,
              scenarios=scenarios) as trace_sp:
        cache = active_cache()
        results: List[Optional[MixRunResult]] = [None] * scenarios
        keys: List[Optional[str]] = [None] * scenarios
        misses = list(range(scenarios))
        if cache is not None:
            from repro.io.serialize import result_from_dict

            misses = []
            for s in range(scenarios):
                opts_s = dataclasses.replace(options, seed=seed_list[s])
                keys[s] = cache.key(
                    "simulate", mixes[s], caps[s], eff[s], model, opts_s,
                    names[s], budgets[s],
                )
                payload = cache.get(keys[s])
                if payload is not None:
                    results[s] = result_from_dict(payload)
                else:
                    misses.append(s)
        hits = scenarios - len(misses)
        if trace_sp is not None:
            trace_sp.set_attribute("cache_hits", hits)

        with ScopedTimer("sim.execution.simulate_layout_batch_s") as timer:
            if misses:
                batch = _stack_layouts_cached([layouts[s] for s in misses])
                out = _execute_scenarios(
                    batch, caps[misses], eff[misses], model, n_iter,
                    options.noise_std, options.barrier_overhead_s,
                    [seed_list[s] for s in misses],
                    fault_schedule=options.fault_schedule,
                )
                for row, s in enumerate(misses):
                    results[s] = MixRunResult(
                        mix_name=mixes[s].name,
                        policy_name=names[s],
                        budget_w=budgets[s],
                        job_names=mixes[s].job_names,
                        iteration_times_s=out.job_iter_times[row],
                        iteration_energy_j=out.iteration_energy[row],
                        host_energy_j=out.host_energy[row],
                        host_mean_power_w=out.host_mean_power[row],
                        host_job_index=layouts[s].job_index,
                        total_gflop=float(out.total_gflop[row]),
                    )
        if cache is not None and misses:
            from repro.io.serialize import result_to_dict

            for s in misses:
                cache.put(keys[s], result_to_dict(results[s]))

        if enabled():
            registry = get_registry()
            registry.counter("sim.execution.batch_runs").inc()
            if misses:
                registry.counter("sim.execution.runs").inc(len(misses))
            if hits:
                registry.counter("sim.execution.cache_hits").inc(hits)
            emit(
                "sim.execution", "layout_batch_simulated",
                hosts=hosts, scenarios=scenarios, cache_hits=hits,
                iterations=n_iter, wall_s=timer.elapsed_s,
            )
    return results  # type: ignore[return-value]
