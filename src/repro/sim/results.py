"""Result containers for simulated mix executions.

A :class:`MixRunResult` holds everything the paper's evaluation metrics
need: per-iteration per-job times (for confidence intervals), per-host
energies and mean powers, and total retired FLOPs.  Derived metrics
(energy-delay product, FLOPS/W, mean system power) are computed lazily from
those primaries so no two definitions can drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["MixRunResult"]


@dataclass(frozen=True, eq=False)
class MixRunResult:
    """Outcome of one simulated execution of a workload mix.

    Attributes
    ----------
    mix_name / policy_name:
        Identification for downstream tables.
    budget_w:
        The system-wide power budget the policy was given.
    job_names:
        Job identifiers, in mix declaration order.
    iteration_times_s:
        Array of shape ``(iterations, jobs)`` — each job's wall time per
        bulk-synchronous iteration (the quantity whose spread produces the
        paper's 95 % confidence intervals).
    iteration_energy_j:
        Array of shape ``(iterations,)`` — total cluster energy per
        iteration, for per-iteration efficiency metrics and their CIs.
    host_energy_j:
        Total energy per host over the job's full execution.
    host_mean_power_w:
        Mean power per host while its job runs.
    host_job_index:
        Job index per host.
    total_gflop:
        FLOPs retired by the whole mix (work is deterministic; only time
        is noisy).
    """

    mix_name: str
    policy_name: str
    budget_w: float
    job_names: Tuple[str, ...]
    iteration_times_s: np.ndarray
    iteration_energy_j: np.ndarray
    host_energy_j: np.ndarray
    host_mean_power_w: np.ndarray
    host_job_index: np.ndarray
    total_gflop: float

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Bit-exact value equality.

        The dataclass-generated ``__eq__`` is unusable here: comparing
        ndarray fields yields elementwise arrays (ambiguous truth
        value), and it would tie equality to field *identity* rather
        than content.  This comparison is exact — every scalar and every
        array element must match bit-for-bit — which is what the
        cached-vs-computed and parallel-vs-serial guarantees are pinned
        against.  Shapes and dtypes are compared through
        ``np.array_equal``; no tolerance is applied on purpose.
        """
        if not isinstance(other, MixRunResult):
            return NotImplemented
        return (
            self.mix_name == other.mix_name
            and self.policy_name == other.policy_name
            and self.budget_w == other.budget_w
            and self.job_names == other.job_names
            and self.total_gflop == other.total_gflop
            and np.array_equal(self.iteration_times_s, other.iteration_times_s)
            and np.array_equal(self.iteration_energy_j, other.iteration_energy_j)
            and np.array_equal(self.host_energy_j, other.host_energy_j)
            and np.array_equal(self.host_mean_power_w, other.host_mean_power_w)
            and np.array_equal(self.host_job_index, other.host_job_index)
        )

    __hash__ = None  # value-equal results are mutable-array holders

    @property
    def job_count(self) -> int:
        """Number of jobs in the mix."""
        return len(self.job_names)

    @property
    def job_elapsed_s(self) -> np.ndarray:
        """Per-job elapsed time (sum of iteration times)."""
        return self.iteration_times_s.sum(axis=0)

    @property
    def mean_elapsed_s(self) -> float:
        """Mean job elapsed time — the paper's "system time dedicated to jobs"."""
        return float(np.mean(self.job_elapsed_s))

    @property
    def total_energy_j(self) -> float:
        """Total CPU energy across all hosts."""
        return float(np.sum(self.host_energy_j))

    @property
    def gflop_per_iteration(self) -> float:
        """FLOPs retired per bulk-synchronous iteration (deterministic)."""
        return self.total_gflop / self.iteration_times_s.shape[0]

    @property
    def job_energy_j(self) -> np.ndarray:
        """Energy per job (sum over its hosts)."""
        return np.bincount(
            self.host_job_index, weights=self.host_energy_j, minlength=self.job_count
        )

    @property
    def mean_system_power_w(self) -> float:
        """Mean cluster power while jobs run.

        Sum over hosts of each host's average-while-running power: the
        steady-state draw a facility meter would read during the mix, and
        the quantity Fig. 7 normalises by the system budget.
        """
        return float(np.sum(self.host_mean_power_w))

    @property
    def iteration_power_w(self) -> np.ndarray:
        """Per-iteration mean system power (W), shape ``(iterations,)``.

        Iteration ``i``'s cluster energy over its wall time (the longest
        job's iteration — the window in which all of that energy lands
        under the bulk-synchronous model).  This is the trace a facility
        meter sampling at iteration granularity would record, and the
        series transient-overshoot checks must look at: a run whose
        *mean* power meets a budget can still spend individual iterations
        above it.
        """
        durations = np.max(self.iteration_times_s, axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(durations > 0,
                            self.iteration_energy_j / durations, 0.0)

    @property
    def peak_system_power_w(self) -> float:
        """Highest per-iteration system power — the compliance quantity.

        Bounded above by the sum of programmed caps, so any cap vector
        that fits a budget keeps this under the budget too; the converse
        makes it the right signal for overshoot detection.
        """
        power = self.iteration_power_w
        return float(np.max(power)) if power.size else 0.0

    def budget_overshoot_watt_seconds(self, budget_w: float) -> float:
        """Energy spent above ``budget_w``, in watt-seconds (J).

        Sums ``max(0, power - budget) x duration`` over iterations: the
        quantity a facility's interconnection agreement actually bills —
        zero exactly when no iteration's power exceeds the budget.
        """
        durations = np.max(self.iteration_times_s, axis=1)
        excess = np.maximum(self.iteration_power_w - float(budget_w), 0.0)
        return float(np.sum(excess * durations))

    @property
    def energy_delay_product(self) -> float:
        """Total energy x mean elapsed time (J*s)."""
        return self.total_energy_j * self.mean_elapsed_s

    @property
    def gflops_per_watt(self) -> float:
        """Retired GFLOPs per joule-per-second — the Fig. 8 efficiency row."""
        return self.total_gflop / self.total_energy_j if self.total_energy_j else 0.0

    # ------------------------------------------------------------------
    def budget_utilization(self) -> float:
        """Mean system power as a fraction of the budget (Fig. 7 bars)."""
        return self.mean_system_power_w / self.budget_w if self.budget_w else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat scalar summary for tables and CSV export."""
        return {
            "budget_w": self.budget_w,
            "mean_elapsed_s": self.mean_elapsed_s,
            "total_energy_j": self.total_energy_j,
            "mean_system_power_w": self.mean_system_power_w,
            "budget_utilization": self.budget_utilization(),
            "energy_delay_product": self.energy_delay_product,
            "gflops_per_watt": self.gflops_per_watt,
        }
