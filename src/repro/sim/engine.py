"""The simulator's physics: caps, frequencies, phase times, and inverses.

:class:`ExecutionModel` binds the node power model (cap -> frequency ->
power) to the roofline throughput model (frequency -> phase time for a work
quantum) and exposes the vectorised forward and inverse maps everything
else is built on:

forward
    ``compute_time(caps, layout)`` — per-host compute-phase time under
    per-host caps, and the power drawn while computing / polling.

inverse
    ``required_frequency(layout, target_time)`` — the lowest frequency at
    which each host still finishes its work inside ``target_time``; and
    ``required_power`` — the node power that frequency costs.  This is the
    analytic core of the GEOPM power balancer (paper §IV-B): power can be
    removed from a host exactly down to the point where its compute phase
    stretches to the job's critical-path time.

Batch dimensions
----------------
Every map is a pure ufunc chain and broadcasts over *leading* axes: pass
caps of shape ``(S, hosts)`` (or a layout-like object whose per-host
arrays are ``(S, hosts)``, see :mod:`repro.sim.batch`) and each method
returns ``(S, hosts)`` — ``S`` independent scenarios evaluated in one
pass.  Per-job reductions use ``axis=-1`` so the host axis is always the
last one.  :func:`repro.sim.batch.simulate_cap_batch` builds on exactly
this property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.node import NodePowerModel
from repro.hardware.roofline import NODE_LEVEL_ROOFLINE, RooflineModel
from repro.workload.job import HostLayout

__all__ = ["ExecutionModel"]


@dataclass(frozen=True)
class ExecutionModel:
    """Physics bundle: power model + roofline, vectorised over hosts."""

    power_model: NodePowerModel = field(default_factory=NodePowerModel)
    roofline: RooflineModel = NODE_LEVEL_ROOFLINE

    # ------------------------------------------------------------------
    # roofline plumbing
    # ------------------------------------------------------------------
    def _ceiling_gflops(self, layout: HostLayout) -> np.ndarray:
        """Base-frequency compute ceiling per host (GFLOPS)."""
        base = np.array(
            [self.roofline.compute(name).gflops for name in layout.ceiling_names]
        )
        return base[layout.compute_ceiling_index]

    def _bandwidth_params(self):
        ceiling = self.roofline.bandwidth(self.roofline.working_set_level)
        return ceiling.bw_gbps, ceiling.freq_sensitivity

    # ------------------------------------------------------------------
    # forward map
    # ------------------------------------------------------------------
    def frequencies(self, caps_w: np.ndarray, layout: HostLayout,
                    efficiencies: np.ndarray) -> np.ndarray:
        """Achieved compute-phase frequency per host under node caps."""
        return self.power_model.freq_at_cap(caps_w, layout.kappa, efficiencies)

    def compute_time(self, freq_ghz: np.ndarray, layout: HostLayout) -> np.ndarray:
        """Compute-phase time per host at the given frequencies (s).

        The phase must both stream its memory traffic and retire its FLOPs;
        the time is the larger requirement, with bandwidth and compute
        ceilings scaled to the host's frequency.
        """
        ratio = np.asarray(freq_ghz, dtype=float) / self.roofline.base_freq_ghz
        bw0, sens = self._bandwidth_params()
        bw = bw0 * ((1.0 - sens) + sens * ratio)
        peak = self._ceiling_gflops(layout) * ratio
        with np.errstate(divide="ignore"):
            t_mem = layout.traffic_gb / bw
            t_cpu = np.where(layout.gflop > 0, layout.gflop / peak, 0.0)
        return np.maximum(t_mem, t_cpu)

    def compute_power(self, caps_w: np.ndarray, layout: HostLayout,
                      efficiencies: np.ndarray) -> np.ndarray:
        """Node power drawn during the compute phase under node caps (W)."""
        f = self.frequencies(caps_w, layout, efficiencies)
        return self.power_model.power_at_freq(f, layout.kappa, efficiencies)

    def poll_power(self, caps_w: np.ndarray, layout: HostLayout,
                   efficiencies: np.ndarray) -> np.ndarray:
        """Node power drawn while busy-polling at the barrier (W).

        Polling runs the spin loop as fast as the cap allows at the poll
        activity factor; with generous caps this is turbo-limited and
        lands a little below compute power.
        """
        f = self.power_model.freq_at_cap(caps_w, layout.poll_kappa, efficiencies)
        return self.power_model.power_at_freq(f, layout.poll_kappa, efficiencies)

    # ------------------------------------------------------------------
    # inverse map (the balancer's primitive)
    # ------------------------------------------------------------------
    def required_frequency(self, layout: HostLayout, target_time_s) -> np.ndarray:
        """Lowest frequency at which each host finishes within the target.

        Inverts both roofline requirements: bandwidth
        ``traffic / bw(f) <= t`` and compute ``gflop / peak(f) <= t``;
        the required frequency is the larger of the two, clamped into the
        DVFS band.  When the bandwidth requirement is met even at a
        freq-ratio of 0 (the frequency-insensitive bandwidth fraction
        already suffices) it imposes no constraint.
        """
        t = np.asarray(target_time_s, dtype=float)
        if np.any(t <= 0):
            raise ValueError("target_time_s must be positive")
        bw0, sens = self._bandwidth_params()
        base = self.roofline.base_freq_ghz

        peak0 = self._ceiling_gflops(layout)
        ratio_cpu = layout.gflop / (peak0 * t)

        bw_needed = layout.traffic_gb / t
        if sens > 0:
            ratio_mem = (bw_needed / bw0 - (1.0 - sens)) / sens
        else:
            ratio_mem = np.zeros_like(bw_needed)
        ratio = np.maximum.reduce([ratio_cpu, ratio_mem, np.zeros_like(ratio_cpu)])
        freq = ratio * base
        return np.clip(freq, self.power_model.spec.min_freq_ghz,
                       self.power_model.spec.turbo_freq_ghz)

    def required_power(self, layout: HostLayout, target_time_s,
                       efficiencies) -> np.ndarray:
        """Node power needed for each host to finish within the target (W).

        The balancer's "needed power": power at the required frequency,
        floored at what the node draws at minimum frequency (a cap cannot
        push consumption below that) and at the RAPL floor's consumption.
        """
        f = self.required_frequency(layout, target_time_s)
        return self.power_model.power_at_freq(f, layout.kappa, efficiencies)

    def job_critical_time(self, caps_w: np.ndarray, layout: HostLayout,
                          efficiencies: np.ndarray) -> np.ndarray:
        """Noise-free per-job iteration time (segmented max over hosts).

        Broadcasts over leading scenario axes: ``(S, hosts)`` caps yield
        ``(S, jobs)`` critical times.
        """
        f = self.frequencies(caps_w, layout, efficiencies)
        t = self.compute_time(f, layout)
        return np.maximum.reduceat(t, layout.job_boundaries[:-1], axis=-1)
