"""The bulk-synchronous execution loop, vectorised over hosts x iterations.

Each iteration of the synthetic kernel proceeds as in the paper's Fig. 2:
every host runs its compute phase, the job's iteration time is the maximum
over its hosts (the critical path), and early finishers busy-poll at the
barrier until the iteration ends.  Energy is compute power over the compute
phase plus poll power over the slack.

Noise model: compute-phase times receive i.i.d. multiplicative lognormal
noise per host-iteration (OS jitter, DRAM refresh, cache state), which is
what gives repeated iterations the spread behind the paper's 95 %
confidence intervals.  Work amounts are deterministic — noise stretches
time, not FLOPs.

The engine body (:func:`_execute_scenarios`) carries a leading *scenario*
axis: it evaluates an ``(S, hosts)`` cap matrix as ``S`` independent
executions in one pass over ``(S, iterations, hosts)`` tensors.
:func:`simulate_mix` is the single-scenario entry point (``S = 1``);
:func:`repro.sim.batch.simulate_cap_batch` exposes the full batch.  Both
paths share this one implementation, so batched results are bit-identical
to serial ones by construction — the property pinned by
``tests/property/test_batch_properties.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.sim.engine import ExecutionModel
from repro.sim.results import MixRunResult
from repro.telemetry import ScopedTimer, emit, enabled, get_registry, span
from repro.units import ensure_non_negative
from repro.workload.job import WorkloadMix

if TYPE_CHECKING:  # imported lazily at runtime (repro.faults -> repro.core
    # -> repro.sim would otherwise be a module-level import cycle)
    from repro.faults.schedule import FaultSchedule

__all__ = ["SimulationOptions", "DEFAULT_OPTIONS", "simulate_mix"]


def _active_cache():
    """The process-global characterization cache, if one is installed.

    Imported lazily: the parallel package is an optional consumer of
    this module, and a hot path must not pay for it unless caching is
    actually activated somewhere in the process.
    """
    from repro.parallel.cache import active_cache

    return active_cache()


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs of the execution simulation.

    Attributes
    ----------
    noise_std:
        Standard deviation of the lognormal compute-time noise (relative).
        0.008 gives the ~1 % iteration-to-iteration spread typical of a
        dedicated HPC partition.
    barrier_overhead_s:
        Fixed per-iteration barrier cost added to every job's iteration
        time (tree barrier latency at ~100 nodes).
    seed:
        RNG seed; identical seeds reproduce identical runs bit-for-bit.
    fault_schedule:
        Optional :class:`~repro.faults.schedule.FaultSchedule` injected
        into the execution (run-relative clock).  The engine applies the
        actuator faults (``CAP_STUCK`` / ``CAP_ERROR`` override the
        programmed caps) and ``NOISE_BURST`` windows (compute-noise sigma
        raised over the iterations a burst covers, mapped through each
        scenario's nominal iteration length).  ``None`` or an *empty*
        schedule leaves the execution path untouched — fault-free runs
        are bit-identical to pre-fault-subsystem runs by construction.
        The schedule participates in characterization-cache keys, so
        faulted and fault-free results never collide.
    """

    noise_std: float = 0.008
    barrier_overhead_s: float = 5.0e-4
    seed: int = 0
    fault_schedule: Optional[FaultSchedule] = None

    def __post_init__(self) -> None:
        ensure_non_negative(self.noise_std, "noise_std")
        ensure_non_negative(self.barrier_overhead_s, "barrier_overhead_s")


#: Shared default options.  The dataclass is frozen, so one instance can
#: safely serve every ``options=None`` call — constructing (and
#: re-validating) fresh defaults per simulation was measurable on sweep
#: hot paths.  Never use this as a *def-line* default (see the
#: mutable-default regression test); functions take ``options=None`` and
#: substitute this in the body.
DEFAULT_OPTIONS = SimulationOptions()


@dataclass(frozen=True)
class _ScenarioTensors:
    """Stacked outputs of the batched engine core (leading axis = S)."""

    job_iter_times: np.ndarray      # (S, iterations, jobs)
    iteration_energy: np.ndarray    # (S, iterations)
    host_energy: np.ndarray         # (S, hosts)
    host_mean_power: np.ndarray     # (S, hosts)
    total_gflop: np.ndarray         # (S,)


def _engine_fault_plan(
    schedule: FaultSchedule,
    caps: np.ndarray,
    layout,
    efficiencies: np.ndarray,
    model: ExecutionModel,
    n_iter: int,
    noise_std: float,
    barrier_overhead_s: float,
):
    """Translate a schedule into static cap overrides + per-iteration sigmas.

    The engine evaluates static-cap runs, so time-varying faults are
    mapped through each scenario's *nominal* clock: iteration ``i`` of
    scenario ``s`` covers ``[i * T_s, (i+1) * T_s)`` where ``T_s`` is the
    deterministic (pre-fault, noise-free) critical-path iteration time.
    Actuator faults whose window overlaps the run override the affected
    caps for the whole run (a static-cap run cannot half-obey a write);
    noise bursts raise the lognormal sigma on exactly the iterations
    their window covers.

    Returns ``(caps_after_overrides, sigma_si or None, overrides_count)``
    with ``sigma_si`` of shape ``(S, n_iter)`` when any burst applies.
    """
    from repro.faults.schedule import FaultKind

    scenarios = caps.shape[0]
    hosts = layout.host_count
    tdp_w = model.power_model.tdp_w
    # Nominal per-scenario iteration length from the *programmed* caps.
    freq0 = model.frequencies(model.power_model.clamp_cap(caps), layout,
                              efficiencies)
    t0 = model.compute_time(freq0, layout)
    iter_s = np.max(np.broadcast_to(t0, (scenarios, hosts)), axis=1) \
        + barrier_overhead_s

    out_caps = np.array(caps, dtype=float, copy=True)
    override_count = 0
    cap_events = schedule.of_kind(FaultKind.CAP_STUCK, FaultKind.CAP_ERROR)
    burst_events = schedule.of_kind(FaultKind.NOISE_BURST)
    sigma_si = None
    if burst_events:
        sigma_si = np.full((scenarios, n_iter), float(noise_std))

    # ``event.window_overlaps(0.0, run_end)`` with the run-end vector: the
    # event's window is one scalar interval, so only the run length varies
    # per scenario.
    run_end = n_iter * iter_s

    def overlapping(event) -> np.ndarray:
        if event.duration_s == 0.0 and event.time_s < 0.0:
            return np.zeros(scenarios, dtype=bool)
        if event.duration_s != 0.0 and event.end_s <= 0.0:
            return np.zeros(scenarios, dtype=bool)
        return event.time_s < run_end

    for event in cap_events:
        affected = [h for h in event.host_ids if h < hosts]
        if not affected:
            continue
        rows = np.nonzero(overlapping(event))[0]
        if not rows.size:
            continue
        value = event.stuck_at_w if event.kind is FaultKind.CAP_STUCK \
            else float(tdp_w)
        out_caps[np.ix_(rows, affected)] = value
        override_count += rows.size * len(affected)
    if burst_events:
        cols = np.arange(n_iter)
        for event in burst_events:
            overlaps = overlapping(event)
            if not np.any(overlaps):
                continue
            first = np.floor(event.time_s / iter_s).astype(int)
            if np.isfinite(event.end_s):
                last = np.ceil(event.end_s / iter_s).astype(int)
            else:
                last = np.full(scenarios, n_iter)
            first = np.clip(first, 0, n_iter)
            last = np.maximum(first, np.minimum(last, n_iter))
            window = overlaps[:, None] & (cols >= first[:, None]) \
                & (cols < last[:, None])
            sigma_si = np.where(
                window, np.maximum(sigma_si, event.sigma), sigma_si
            )
    return out_caps, sigma_si, override_count


def _execute_scenarios(
    layout,
    caps_sw: np.ndarray,
    efficiencies: np.ndarray,
    model: ExecutionModel,
    n_iter: int,
    noise_std: float,
    barrier_overhead_s: float,
    seeds: Sequence[int],
    fault_schedule: Optional[FaultSchedule] = None,
) -> _ScenarioTensors:
    """The uninstrumented engine body, batched over a scenario axis.

    Parameters
    ----------
    layout:
        A :class:`~repro.workload.job.HostLayout` (per-host arrays of
        shape ``(hosts,)``) or a layout-like object whose per-host arrays
        carry a leading scenario axis ``(S, hosts)`` (see
        :class:`repro.sim.batch.LayoutBatch`).  ``job_index`` and
        ``job_boundaries`` are always one-dimensional.
    caps_sw:
        Cap matrix of shape ``(S, hosts)``; clamped into the RAPL range
        here, exactly as the serial path does.
    efficiencies:
        Host-variation multipliers, shape ``(hosts,)`` shared by every
        scenario or ``(S, hosts)`` with one row per scenario (the
        layout-batch case: independent runs on disjoint host subsets).
        Efficiencies only enter elementwise ufunc chains
        (``model.frequencies`` / ``power_at_freq`` / ``poll_power``), so
        either shape broadcasts without changing any element's value.
    seeds:
        One noise seed per scenario (ignored when ``noise_std == 0``).

    Determinism contract: scenario ``s`` of the returned tensors is
    bit-identical to a serial run with ``caps_sw[s]`` and ``seeds[s]`` —
    the physics is an elementwise ufunc chain (exact per element under
    broadcasting), segmented reductions use exact ``max``, axis sums
    accumulate in the same order per scenario slice, and the energy dot
    products run per-scenario on contiguous slices so the same BLAS
    routine sees the same operands.

    ``fault_schedule`` (an *active* one) is the only thing allowed to
    perturb this contract: actuator overrides land before the clamp and
    noise bursts switch the noise draw to a per-iteration-sigma stream.
    The gate is on :attr:`FaultSchedule.active`, so a ``None`` or empty
    schedule leaves every branch below exactly as it was.
    """
    sigma_si = None
    if fault_schedule is not None and fault_schedule.active:
        with span("faults.engine.plan", schedule=fault_schedule.name) as sp:
            caps_sw, sigma_si, override_count = _engine_fault_plan(
                fault_schedule, np.asarray(caps_sw, dtype=float), layout,
                efficiencies, model, n_iter, noise_std, barrier_overhead_s,
            )
            if sp is not None:
                sp.set_attribute("cap_overrides", override_count)
                sp.set_attribute("noise_burst", sigma_si is not None)
        if enabled():
            registry = get_registry()
            registry.counter("faults.engine.runs").inc()
            if override_count:
                registry.counter("faults.engine.cap_overrides").inc(
                    override_count
                )
            emit(
                "faults.engine", "engine_faults_applied",
                schedule=fault_schedule.name,
                cap_overrides=override_count,
                noise_burst=sigma_si is not None,
            )
    caps = model.power_model.clamp_cap(caps_sw)
    scenarios = caps.shape[0]
    hosts = layout.host_count

    # --- deterministic per-host physics (S, hosts) --------------------
    freq = model.frequencies(caps, layout, efficiencies)
    t_compute = model.compute_time(freq, layout)
    p_compute = model.power_model.power_at_freq(freq, layout.kappa, efficiencies)
    p_poll = model.poll_power(caps, layout, efficiencies)
    p_compute = np.ascontiguousarray(np.broadcast_to(p_compute, (scenarios, hosts)))
    p_poll = np.ascontiguousarray(np.broadcast_to(p_poll, (scenarios, hosts)))

    # --- noisy iterations (S, iterations, hosts) ----------------------
    if sigma_si is not None:
        # Noise-burst injection: per-iteration sigmas.  A single standard
        # normal tensor per scenario scaled by the sigma column — outside
        # burst windows this is distributionally the base lognormal draw
        # (bit-identity is only promised for fault-free schedules, which
        # never reach this branch).
        host_times = np.empty((scenarios, n_iter, hosts))
        for s in range(scenarios):
            rng = np.random.default_rng(seeds[s])
            z = rng.standard_normal(size=(n_iter, hosts))
            host_times[s] = np.exp(sigma_si[s][:, np.newaxis] * z)
        host_times *= t_compute[:, np.newaxis, :]
    elif noise_std > 0:
        # The noise tensor doubles as the time tensor: each scenario's
        # lognormal draw lands in its slab, then the deterministic times
        # scale it in place (multiplication commutes bitwise).
        host_times = np.empty((scenarios, n_iter, hosts))
        for s in range(scenarios):
            # Generator(PCG64(seed)) is the stream default_rng(seed)
            # builds for an int seed, minus the seed-normalisation layer
            # — this loop runs once per in-flight batch at streaming
            # rates.
            rng = np.random.Generator(np.random.PCG64(seeds[s]))
            host_times[s] = rng.lognormal(mean=0.0, sigma=noise_std,
                                          size=(n_iter, hosts))
        host_times *= t_compute[:, np.newaxis, :]
    else:
        # Noise-free times repeat the deterministic row; a broadcast view
        # stands in for the former (n_iter, hosts) ones-matrix multiply.
        host_times = np.broadcast_to(
            t_compute[:, np.newaxis, :], (scenarios, n_iter, hosts)
        )

    starts = layout.job_boundaries[:-1]
    # Segmented max per iteration row: reduceat along the host axis.
    job_iter_times = np.maximum.reduceat(host_times, starts, axis=2)
    job_iter_times = job_iter_times + barrier_overhead_s

    # --- energy accounting ---------------------------------------------
    # Slack per host-iteration = job iteration time - own compute time
    # (barrier overhead is spent polling too), with tiny negatives from
    # the shared barrier overhead handling clamped to zero.  The gather
    # along the host axis is not C-contiguous, so the subtraction lands
    # in a fresh contiguous buffer — the reductions and matvecs below
    # must see the same memory order as a serial run.
    slack = np.empty(host_times.shape)
    np.subtract(job_iter_times[:, :, layout.job_index], host_times, out=slack)
    np.maximum(slack, 0.0, out=slack)

    host_compute_s = host_times.sum(axis=1)
    host_slack_s = slack.sum(axis=1)
    host_energy = p_compute * host_compute_s + p_poll * host_slack_s
    # Per-scenario matvecs on contiguous slices: a stacked matmul may pick
    # a different BLAS kernel than the serial path and break bit-identity.
    iteration_energy = np.empty((scenarios, n_iter))
    for s in range(scenarios):
        iteration_energy[s] = host_times[s] @ p_compute[s] + slack[s] @ p_poll[s]
    host_elapsed = host_compute_s + host_slack_s
    with np.errstate(invalid="ignore", divide="ignore"):
        host_mean_power = np.where(host_elapsed > 0, host_energy / host_elapsed, 0.0)

    total_gflop = np.sum(layout.gflop, axis=-1) * float(n_iter)
    total_gflop = np.ascontiguousarray(
        np.broadcast_to(np.asarray(total_gflop, dtype=float), (scenarios,))
    )

    return _ScenarioTensors(
        job_iter_times=job_iter_times,
        iteration_energy=iteration_energy,
        host_energy=host_energy,
        host_mean_power=host_mean_power,
        total_gflop=total_gflop,
    )


def simulate_mix(
    mix: WorkloadMix,
    caps_w: np.ndarray,
    efficiencies: np.ndarray,
    model: Optional[ExecutionModel] = None,
    options: Optional[SimulationOptions] = None,
    policy_name: str = "unmanaged",
    budget_w: float = 0.0,
) -> MixRunResult:
    """Simulate one execution of ``mix`` under per-host power caps.

    Parameters
    ----------
    mix:
        The co-scheduled jobs.
    caps_w:
        Per-host node power caps (W), length ``mix.total_nodes``.  Values
        are clamped into the RAPL-settable range, exactly as programming
        them through :class:`~repro.hardware.rapl.RaplDomain` would.
    efficiencies:
        Per-host variation multipliers (from the cluster allocation).
    model:
        Physics bundle; defaults to the Quartz node model.
    options:
        Noise/seed settings (``None`` means the shared frozen
        :data:`DEFAULT_OPTIONS`; never pass a dataclass instance as a
        def-line default — see the mutable-default regression test).
    policy_name / budget_w:
        Metadata recorded on the result.

    When a :func:`~repro.parallel.cache.active_cache` is installed, the
    result is memoized under a content hash of every physics input; a
    hit skips the execution loop entirely and decodes the stored result
    (bit-identical to a fresh computation).

    To evaluate many cap vectors against one mix, prefer
    :func:`repro.sim.batch.simulate_cap_batch`, which runs the whole
    scenario set through one pass of the same engine body.

    Returns
    -------
    MixRunResult
        Per-iteration job times, per-host energy and mean power, FLOPs.
    """
    if options is None:
        options = DEFAULT_OPTIONS
    with span("sim.simulate_mix", mix=mix.name, hosts=mix.total_nodes,
              policy=policy_name) as trace_sp:
        cache = _active_cache()
        cache_key = None
        if cache is not None:
            cache_key = cache.key(
                "simulate", mix, np.asarray(caps_w, dtype=float),
                np.asarray(efficiencies, dtype=float),
                model if model is not None else ExecutionModel(),
                options, policy_name, float(budget_w),
            )
            payload = cache.get(cache_key)
            if payload is not None:
                from repro.io.serialize import result_from_dict

                if trace_sp is not None:
                    trace_sp.set_attribute("cache_hit", True)
                if enabled():
                    get_registry().counter("sim.execution.cache_hits").inc()
                    emit(
                        "sim.execution", "mix_simulated_cached",
                        mix=mix.name, hosts=mix.total_nodes,
                        policy=policy_name,
                    )
                return result_from_dict(payload)
        if trace_sp is not None:
            trace_sp.set_attribute("cache_hit", False)
        with ScopedTimer("sim.execution.simulate_mix_s") as timer:
            result = _simulate_mix_impl(
                mix, caps_w, efficiencies, model, options, policy_name, budget_w
            )
        if cache is not None and cache_key is not None:
            from repro.io.serialize import result_to_dict

            cache.put(cache_key, result_to_dict(result))
        if enabled():
            registry = get_registry()
            registry.counter("sim.execution.runs").inc()
            sim_s = float(np.max(result.job_elapsed_s))
            if timer.elapsed_s > 0:
                registry.gauge("sim.execution.sim_seconds_per_wall_second").set(
                    sim_s / timer.elapsed_s
                )
            emit(
                "sim.execution", "mix_simulated",
                mix=mix.name, hosts=mix.total_nodes,
                iterations=mix.common_iterations(),
                policy=policy_name, wall_s=timer.elapsed_s, sim_s=sim_s,
            )
    return result


def _simulate_mix_impl(
    mix: WorkloadMix,
    caps_w: np.ndarray,
    efficiencies: np.ndarray,
    model: Optional[ExecutionModel],
    options: SimulationOptions,
    policy_name: str,
    budget_w: float,
) -> MixRunResult:
    """The uninstrumented single-scenario body (see :func:`simulate_mix`)."""
    model = model if model is not None else ExecutionModel()
    layout = mix.layout()
    caps = np.asarray(caps_w, dtype=float)
    eff = np.asarray(efficiencies, dtype=float)
    if caps.shape != (layout.host_count,):
        raise ValueError(
            f"caps_w must have shape ({layout.host_count},), got {caps.shape}"
        )
    if eff.shape != (layout.host_count,):
        raise ValueError(
            f"efficiencies must have shape ({layout.host_count},), got {eff.shape}"
        )
    n_iter = mix.common_iterations()

    out = _execute_scenarios(
        layout, caps[np.newaxis, :], eff, model, n_iter,
        options.noise_std, options.barrier_overhead_s, (options.seed,),
        fault_schedule=options.fault_schedule,
    )

    return MixRunResult(
        mix_name=mix.name,
        policy_name=policy_name,
        budget_w=float(budget_w),
        job_names=mix.job_names,
        iteration_times_s=out.job_iter_times[0],
        iteration_energy_j=out.iteration_energy[0],
        host_energy_j=out.host_energy[0],
        host_mean_power_w=out.host_mean_power[0],
        host_job_index=layout.job_index,
        total_gflop=float(out.total_gflop[0]),
    )
