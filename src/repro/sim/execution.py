"""The bulk-synchronous execution loop, vectorised over hosts x iterations.

Each iteration of the synthetic kernel proceeds as in the paper's Fig. 2:
every host runs its compute phase, the job's iteration time is the maximum
over its hosts (the critical path), and early finishers busy-poll at the
barrier until the iteration ends.  Energy is compute power over the compute
phase plus poll power over the slack.

Noise model: compute-phase times receive i.i.d. multiplicative lognormal
noise per host-iteration (OS jitter, DRAM refresh, cache state), which is
what gives repeated iterations the spread behind the paper's 95 %
confidence intervals.  Work amounts are deterministic — noise stretches
time, not FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.sim.engine import ExecutionModel
from repro.sim.results import MixRunResult
from repro.telemetry import ScopedTimer, emit, enabled, get_registry
from repro.units import ensure_non_negative
from repro.workload.job import WorkloadMix

__all__ = ["SimulationOptions", "simulate_mix"]


def _active_cache():
    """The process-global characterization cache, if one is installed.

    Imported lazily: the parallel package is an optional consumer of
    this module, and a hot path must not pay for it unless caching is
    actually activated somewhere in the process.
    """
    from repro.parallel.cache import active_cache

    return active_cache()


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs of the execution simulation.

    Attributes
    ----------
    noise_std:
        Standard deviation of the lognormal compute-time noise (relative).
        0.008 gives the ~1 % iteration-to-iteration spread typical of a
        dedicated HPC partition.
    barrier_overhead_s:
        Fixed per-iteration barrier cost added to every job's iteration
        time (tree barrier latency at ~100 nodes).
    seed:
        RNG seed; identical seeds reproduce identical runs bit-for-bit.
    """

    noise_std: float = 0.008
    barrier_overhead_s: float = 5.0e-4
    seed: int = 0

    def __post_init__(self) -> None:
        ensure_non_negative(self.noise_std, "noise_std")
        ensure_non_negative(self.barrier_overhead_s, "barrier_overhead_s")


def simulate_mix(
    mix: WorkloadMix,
    caps_w: np.ndarray,
    efficiencies: np.ndarray,
    model: Optional[ExecutionModel] = None,
    options: Optional[SimulationOptions] = None,
    policy_name: str = "unmanaged",
    budget_w: float = 0.0,
) -> MixRunResult:
    """Simulate one execution of ``mix`` under per-host power caps.

    Parameters
    ----------
    mix:
        The co-scheduled jobs.
    caps_w:
        Per-host node power caps (W), length ``mix.total_nodes``.  Values
        are clamped into the RAPL-settable range, exactly as programming
        them through :class:`~repro.hardware.rapl.RaplDomain` would.
    efficiencies:
        Per-host variation multipliers (from the cluster allocation).
    model:
        Physics bundle; defaults to the Quartz node model.
    options:
        Noise/seed settings (``None`` means fresh defaults; never pass a
        shared module-level instance as a dataclass default — see the
        mutable-default regression test).
    policy_name / budget_w:
        Metadata recorded on the result.

    When a :func:`~repro.parallel.cache.active_cache` is installed, the
    result is memoized under a content hash of every physics input; a
    hit skips the execution loop entirely and decodes the stored result
    (bit-identical to a fresh computation).

    Returns
    -------
    MixRunResult
        Per-iteration job times, per-host energy and mean power, FLOPs.
    """
    if options is None:
        options = SimulationOptions()
    cache = _active_cache()
    cache_key = None
    if cache is not None:
        cache_key = cache.key(
            "simulate", mix, np.asarray(caps_w, dtype=float),
            np.asarray(efficiencies, dtype=float),
            model if model is not None else ExecutionModel(),
            options, policy_name, float(budget_w),
        )
        payload = cache.get(cache_key)
        if payload is not None:
            from repro.io.serialize import result_from_dict

            return result_from_dict(payload)
    with ScopedTimer("sim.execution.simulate_mix_s") as timer:
        result = _simulate_mix_impl(
            mix, caps_w, efficiencies, model, options, policy_name, budget_w
        )
    if cache is not None and cache_key is not None:
        from repro.io.serialize import result_to_dict

        cache.put(cache_key, result_to_dict(result))
    if enabled():
        registry = get_registry()
        registry.counter("sim.execution.runs").inc()
        sim_s = float(np.max(result.job_elapsed_s))
        if timer.elapsed_s > 0:
            registry.gauge("sim.execution.sim_seconds_per_wall_second").set(
                sim_s / timer.elapsed_s
            )
        emit(
            "sim.execution", "mix_simulated",
            mix=mix.name, hosts=mix.total_nodes,
            iterations=int(mix.iterations_array()[0]),
            policy=policy_name, wall_s=timer.elapsed_s, sim_s=sim_s,
        )
    return result


def _simulate_mix_impl(
    mix: WorkloadMix,
    caps_w: np.ndarray,
    efficiencies: np.ndarray,
    model: Optional[ExecutionModel],
    options: SimulationOptions,
    policy_name: str,
    budget_w: float,
) -> MixRunResult:
    """The uninstrumented engine body (see :func:`simulate_mix`)."""
    model = model if model is not None else ExecutionModel()
    layout = mix.layout()
    caps = model.power_model.clamp_cap(np.asarray(caps_w, dtype=float))
    eff = np.asarray(efficiencies, dtype=float)
    if caps.shape != (layout.host_count,):
        raise ValueError(
            f"caps_w must have shape ({layout.host_count},), got {caps.shape}"
        )
    if eff.shape != (layout.host_count,):
        raise ValueError(
            f"efficiencies must have shape ({layout.host_count},), got {eff.shape}"
        )

    iters = mix.iterations_array()
    if np.any(iters != iters[0]):
        raise ValueError(
            "all jobs in a mix must run the same iteration count "
            f"(got {dict(zip(mix.job_names, iters.tolist()))})"
        )
    n_iter = int(iters[0])

    # --- deterministic per-host physics -------------------------------
    freq = model.frequencies(caps, layout, eff)
    t_compute = model.compute_time(freq, layout)
    p_compute = model.power_model.power_at_freq(freq, layout.kappa, eff)
    p_poll = model.poll_power(caps, layout, eff)

    # --- noisy iterations ---------------------------------------------
    rng = np.random.default_rng(options.seed)
    if options.noise_std > 0:
        noise = rng.lognormal(mean=0.0, sigma=options.noise_std,
                              size=(n_iter, layout.host_count))
    else:
        noise = np.ones((n_iter, layout.host_count))
    host_times = t_compute[np.newaxis, :] * noise  # (iters, hosts)

    starts = layout.job_boundaries[:-1]
    # Segmented max per iteration row: reduceat along the host axis.
    job_iter_times = np.maximum.reduceat(host_times, starts, axis=1)
    job_iter_times = job_iter_times + options.barrier_overhead_s

    # --- energy accounting ---------------------------------------------
    # Slack per host-iteration = job iteration time - own compute time
    # (barrier overhead is spent polling too).
    iter_time_per_host = job_iter_times[:, layout.job_index]
    slack = iter_time_per_host - host_times
    # Guard tiny negative values from the shared barrier overhead handling.
    slack = np.maximum(slack, 0.0)

    host_compute_s = host_times.sum(axis=0)
    host_slack_s = slack.sum(axis=0)
    host_energy = p_compute * host_compute_s + p_poll * host_slack_s
    iteration_energy = host_times @ p_compute + slack @ p_poll
    host_elapsed = host_compute_s + host_slack_s
    with np.errstate(invalid="ignore", divide="ignore"):
        host_mean_power = np.where(host_elapsed > 0, host_energy / host_elapsed, 0.0)

    total_gflop = float(np.sum(layout.gflop) * n_iter)

    return MixRunResult(
        mix_name=mix.name,
        policy_name=policy_name,
        budget_w=float(budget_w),
        job_names=mix.job_names,
        iteration_times_s=job_iter_times,
        iteration_energy_j=iteration_energy,
        host_energy_j=host_energy,
        host_mean_power_w=host_mean_power,
        host_job_index=layout.job_index,
        total_gflop=total_gflop,
    )
