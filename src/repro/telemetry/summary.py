"""Renderable roll-up of the telemetry state: the report's last section.

:class:`TelemetrySummary` freezes a registry snapshot (and optionally
the event bus's per-source counts) into a plain dataclass that renders
as the fixed-width tables the rest of the reporting layer uses.  The
grid report appends one; the ``repro telemetry`` CLI command prints one;
``--telemetry-out`` writes one next to the JSONL event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.render import render_table
from repro.telemetry import context
from repro.telemetry.events import EventBus
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["TelemetrySummary"]


@dataclass(frozen=True)
class TelemetrySummary:
    """Point-in-time summary of metrics plus event-volume counts."""

    counters: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, Dict[str, float]]
    event_counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        registry: Optional[MetricsRegistry] = None,
        bus: Optional[EventBus] = None,
    ) -> "TelemetrySummary":
        """Snapshot the given (default: global) registry and bus."""
        registry = registry if registry is not None else context.get_registry()
        bus = bus if bus is not None else context.get_bus()
        snap = registry.snapshot()
        return cls(
            counters=snap["counters"],
            gauges=snap["gauges"],
            histograms=snap["histograms"],
            event_counts=bus.counts_by_source(),
        )

    @property
    def empty(self) -> bool:
        """True when nothing was recorded (telemetry off or unused)."""
        return not (self.counters or self.gauges or self.histograms
                    or self.event_counts)

    def rows(self) -> List[List[str]]:
        """All metrics as ``[metric, kind, value, mean, p50, p95, max]``
        table rows (counters/gauges leave the distribution columns
        blank)."""
        out: List[List[str]] = []
        for name, value in self.counters.items():
            out.append([name, "counter", f"{value:g}", "", "", "", ""])
        for name, value in self.gauges.items():
            out.append([name, "gauge", f"{value:g}", "", "", "", ""])
        for name, snap in self.histograms.items():
            out.append([
                name, "histogram", f"{snap['count']:g}",
                f"{snap['mean']:.6g}", f"{snap['p50']:.6g}",
                f"{snap['p95']:.6g}", f"{snap['max']:.6g}",
            ])
        return out

    def render(self) -> str:
        """The metrics table plus the events-by-source table."""
        if self.empty:
            return "(no telemetry recorded)"
        parts = [render_table(
            ["metric", "kind", "count/value", "mean", "p50", "p95", "max"],
            self.rows(),
            title="Metrics snapshot",
        )]
        if self.event_counts:
            parts.append(render_table(
                ["source", "events"],
                [[s, n] for s, n in sorted(self.event_counts.items())],
                title="Events by source",
            ))
        return "\n\n".join(parts)
