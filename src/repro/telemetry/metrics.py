"""Process-wide metrics: counters, gauges, and streaming histograms.

The registry is the quantitative half of the telemetry subsystem (events
are the qualitative half): hot paths record *how often* and *how long*
into named metric families, and operators read one snapshot at the end.
Metric names follow the ``layer.component.metric`` convention
(``runtime.controller.run_s``, ``manager.admission.admitted``); families
may carry labels (``experiments.grid.cell_s{policy=MixedAdaptive}``).

Histograms are streaming and dependency-free: exact count/mean/min/max
plus quantile estimates from a fixed-size reservoir (Vitter's algorithm
R with a seeded RNG, so snapshots are deterministic for a given
observation sequence).  Reservoir elements are real observations, so
every quantile estimate is guaranteed to lie within the true
``[min, max]`` of the stream — the property the test suite pins down.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "metric_key",
]


def metric_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical ``name{k=v,...}`` key for one family member."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (events, items, watts summed)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value


class Gauge:
    """A point-in-time level (queue depth, utilisation fraction)."""

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the level."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the level up (or down with a negative ``amount``)."""
        self._value += amount

    @property
    def value(self) -> float:
        """Current level."""
        return self._value


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable roll-up of one histogram at snapshot time."""

    count: int
    mean: float
    p50: float
    p95: float
    min: float
    max: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dict (export/report friendly)."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "min": self.min,
            "max": self.max,
        }


class Histogram:
    """Streaming distribution sketch with reservoir quantiles.

    Parameters
    ----------
    reservoir_size:
        Observations kept for quantile estimation.  512 bounds the
        p50/p95 error well below what scheduling decisions care about
        while keeping ``observe`` O(1).
    seed:
        Reservoir-replacement RNG seed (deterministic by default).
    """

    def __init__(self, reservoir_size: int = 512, seed: int = 0x5EED) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._count = 0
        self._total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._reservoir) < self._reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self._reservoir_size:
                    self._reservoir[slot] = value

    @property
    def count(self) -> int:
        """Observations recorded so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Exact running mean (0.0 when empty)."""
        return self._total / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (linear interpolation over the
        reservoir); raises ``ValueError`` when empty or ``q`` is outside
        ``[0, 1]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            sample = sorted(self._reservoir)
        if not sample:
            raise ValueError("cannot take a quantile of an empty histogram")
        if len(sample) == 1:
            return sample[0]
        position = q * (len(sample) - 1)
        low = int(position)
        high = min(low + 1, len(sample) - 1)
        frac = position - low
        value = sample[low] * (1.0 - frac) + sample[high] * frac
        # The interpolation can round one ulp outside its bracket for
        # near-equal endpoints; clamp so estimates are always within the
        # observed range (the documented guarantee).
        return min(max(value, sample[low]), sample[high])

    def snapshot(self) -> HistogramSnapshot:
        """Current roll-up (all-zero when no observations)."""
        if not self._count:
            return HistogramSnapshot(count=0, mean=0.0, p50=0.0, p95=0.0,
                                     min=0.0, max=0.0)
        return HistogramSnapshot(
            count=self._count,
            mean=self.mean,
            p50=self.quantile(0.50),
            p95=self.quantile(0.95),
            min=self._min,
            max=self._max,
        )

    # -- cross-process merging -----------------------------------------
    def state(self) -> Dict[str, object]:
        """Full mergeable state (exact stats + the reservoir sample).

        Unlike :meth:`snapshot` this is lossless enough to combine two
        histograms: worker processes ship their state to the parent and
        :meth:`merge_state` folds it in.
        """
        with self._lock:
            return {
                "count": self._count,
                "total": self._total,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "reservoir": list(self._reservoir),
            }

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Count, total, min, and max merge exactly.  The reservoirs are
        concatenated; when the union overflows the capacity it is
        down-sampled to evenly spaced order statistics (deterministic,
        quantile-preserving), so merged p50/p95 estimates remain within
        the true observed range.
        """
        count = int(state["count"])
        if count == 0:
            return
        with self._lock:
            self._count += count
            self._total += float(state["total"])
            self._min = min(self._min, float(state["min"]))
            self._max = max(self._max, float(state["max"]))
            combined = self._reservoir + [float(v) for v in state["reservoir"]]
            if len(combined) > self._reservoir_size:
                combined.sort()
                positions = [
                    round(i * (len(combined) - 1) / (self._reservoir_size - 1))
                    for i in range(self._reservoir_size)
                ]
                combined = [combined[p] for p in positions]
            self._reservoir = combined


class MetricsRegistry:
    """Get-or-create home for every metric family in the process.

    All three accessors are idempotent: the first call with a given
    ``(name, labels)`` creates the instrument, later calls return the
    same object, so instrumentation sites never need set-up code.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- accessors -----------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``name`` (+labels), created on first use."""
        key = metric_key(name, labels)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter()
            return self._counters[key]

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``name`` (+labels), created on first use."""
        key = metric_key(name, labels)
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge()
            return self._gauges[key]

    def histogram(self, name: str, **labels: str) -> Histogram:
        """The histogram for ``name`` (+labels), created on first use."""
        key = metric_key(name, labels)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = Histogram()
            return self._histograms[key]

    def counter_values(self) -> Dict[str, float]:
        """Current value of every counter, keyed by canonical name.

        A cheap point-in-time copy (no histogram sorting); the tracing
        layer snapshots this at span entry/exit to attribute counter
        deltas to subtrees.
        """
        with self._lock:
            return {k: c.value for k, c in self._counters.items()}

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Drop every metric (a fresh registry without re-wiring)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        """Total metric families registered."""
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- cross-process merging -----------------------------------------
    def state(self) -> Dict[str, Dict[str, object]]:
        """Mergeable dump of every metric (see :meth:`merge_state`).

        Counters and gauges export their values; histograms export the
        lossless :meth:`Histogram.state` including the reservoir.  The
        result is picklable/JSON-able, so worker processes can ship it
        back to the parent.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in counters.items()},
            "gauges": {k: g.value for k, g in gauges.items()},
            "histograms": {k: h.state() for k, h in histograms.items()},
        }

    def merge_state(self, state: Mapping[str, Mapping[str, object]]) -> None:
        """Fold another registry's :meth:`state` into this one.

        Counters add, gauges keep the **peak** of the existing and
        incoming levels, and histograms merge count/total/min/max
        exactly with reservoir union.  Used by the parallel runner to
        surface per-worker telemetry in the parent process.

        Gauges merge as a maximum because per-worker levels (e.g.
        ``runtime.controller.batch_active_runs``) are concurrent: the
        workers' final values all describe the same instant of the
        parallel run, so "last state shipped wins" would silently report
        an arbitrary worker.  The peak is the one order-independent
        roll-up that is honest for occupancy-style gauges; a merged
        gauge therefore reads "highest level any process reached".
        """
        for key, value in state.get("counters", {}).items():
            with self._lock:
                counter = self._counters.setdefault(key, Counter())
            counter.inc(float(value))
        for key, value in state.get("gauges", {}).items():
            with self._lock:
                gauge = self._gauges.get(key)
                if gauge is None:
                    gauge = self._gauges.setdefault(key, Gauge())
                    gauge.set(float(value))
                else:
                    gauge.set(max(gauge.value, float(value)))
        for key, hist_state in state.get("histograms", {}).items():
            with self._lock:
                histogram = self._histograms.setdefault(key, Histogram())
            histogram.merge_state(hist_state)

    # -- reading back --------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time copy of every metric, keyed by canonical name.

        Returns ``{"counters": {key: value}, "gauges": {key: value},
        "histograms": {key: snapshot-dict}}``.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {
                k: h.snapshot().as_dict() for k, h in sorted(histograms.items())
            },
        }
