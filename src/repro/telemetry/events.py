"""Structured event bus: the stack's shared telemetry pipeline.

Every layer of the stack publishes :class:`Event` records — admission
decisions, balancer convergence, grid cells completing — to an
:class:`EventBus` instead of printing or keeping private logs.  The bus
keeps a bounded ring buffer (recent history survives without unbounded
memory), fans events out to subscribers in subscription order, and can
export the buffer as JSONL or CSV for offline analysis.  The design
follows NRM's upstream pub/sub API: producers never know who is
listening, and a subscriber (a trace writer, a dashboard, a test
assertion) attaches without touching the producer.

Event taxonomy: ``source`` is the emitting component in dotted
``layer.component`` form (``runtime.controller``, ``manager.admission``,
``experiments.grid``); ``kind`` names what happened
(``run_complete``, ``admission_decision``, ``cell_complete``); the
``payload`` carries flat JSON-serialisable details.
"""

from __future__ import annotations

import csv
import io
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

__all__ = ["Event", "EventBus"]


@dataclass(frozen=True)
class Event:
    """One structured telemetry record.

    Attributes
    ----------
    ts:
        Seconds since the epoch at publish time (bus clock).
    source:
        Emitting component, dotted ``layer.component`` style.
    kind:
        What happened (event type within the source's taxonomy).
    payload:
        Flat JSON-serialisable details of the occurrence.
    """

    ts: float
    source: str
    kind: str
    payload: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Flat dict form used by the JSONL/CSV exporters."""
        return {"ts": self.ts, "source": self.source, "kind": self.kind,
                **self.payload}

    def to_json(self) -> str:
        """One JSONL line (non-serialisable payload values fall back to
        ``str``)."""
        return json.dumps(self.to_dict(), default=str, sort_keys=False)


class EventBus:
    """Bounded pub/sub event pipeline.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest events are dropped once exceeded.
    clock:
        Timestamp source (injectable for deterministic tests).
    """

    def __init__(self, capacity: int = 8192,
                 clock: Callable[[], float] = time.time) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._buffer: deque = deque(maxlen=capacity)
        self._clock = clock
        self._subscribers: Dict[int, tuple] = {}
        self._next_token = 0
        self._lock = threading.Lock()

    # -- publishing ----------------------------------------------------
    def publish(self, source: str, kind: str, **payload: object) -> Event:
        """Create, buffer, and fan out one event; returns it."""
        event = Event(ts=float(self._clock()), source=source, kind=kind,
                      payload=payload)
        with self._lock:
            self._buffer.append(event)
            subscribers = list(self._subscribers.values())
        for callback, kinds, sources in subscribers:
            if kinds is not None and event.kind not in kinds:
                continue
            if sources is not None and event.source not in sources:
                continue
            callback(event)
        return event

    # -- subscribing ---------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[Event], None],
        kinds: Optional[Sequence[str]] = None,
        sources: Optional[Sequence[str]] = None,
    ) -> int:
        """Register a callback; returns a token for :meth:`unsubscribe`.

        Callbacks fire synchronously at publish time, in subscription
        order, optionally filtered to the given ``kinds`` / ``sources``.
        """
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._subscribers[token] = (
                callback,
                frozenset(kinds) if kinds is not None else None,
                frozenset(sources) if sources is not None else None,
            )
        return token

    def unsubscribe(self, token: int) -> None:
        """Remove a subscription; unknown tokens raise ``KeyError``."""
        with self._lock:
            del self._subscribers[token]

    @property
    def subscriber_count(self) -> int:
        """Number of live subscriptions."""
        with self._lock:
            return len(self._subscribers)

    # -- reading back --------------------------------------------------
    def __len__(self) -> int:
        """Events currently held in the ring buffer."""
        return len(self._buffer)

    def events(self, kind: Optional[str] = None,
               source: Optional[str] = None) -> List[Event]:
        """Buffered events, oldest first, optionally filtered."""
        with self._lock:
            out = list(self._buffer)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if source is not None:
            out = [e for e in out if e.source == source]
        return out

    def sources(self) -> List[str]:
        """Distinct event sources in the buffer, sorted."""
        return sorted({e.source for e in self.events()})

    def counts_by_source(self) -> Dict[str, int]:
        """Event counts keyed by source (taxonomy roll-up)."""
        counts: Dict[str, int] = {}
        for event in self.events():
            counts[event.source] = counts.get(event.source, 0) + 1
        return counts

    def replay(self, events: Sequence[Event]) -> None:
        """Append already-stamped events (e.g. shipped from a worker
        process) preserving their original timestamps, and fan them out
        to subscribers like a live publish."""
        with self._lock:
            for event in events:
                self._buffer.append(event)
            subscribers = list(self._subscribers.values())
        for event in events:
            for callback, kinds, sources in subscribers:
                if kinds is not None and event.kind not in kinds:
                    continue
                if sources is not None and event.source not in sources:
                    continue
                callback(event)

    def clear(self) -> None:
        """Drop all buffered events (subscriptions are kept)."""
        with self._lock:
            self._buffer.clear()

    # -- export --------------------------------------------------------
    def to_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the buffer as JSON Lines; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events():
                handle.write(event.to_json() + "\n")
        return path

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the buffer as CSV (header is the union of payload keys,
        first-seen order after ``ts,source,kind``); returns the path."""
        rows = [e.to_dict() for e in self.events()]
        names: List[str] = ["ts", "source", "kind"]
        for row in rows:
            for key in row:
                if key not in names:
                    names.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=names, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(buffer.getvalue(), encoding="utf-8")
        return path
