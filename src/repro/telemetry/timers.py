"""Scoped wall-time profiling hooks that record into the registry.

:class:`ScopedTimer` times a ``with`` block on ``time.perf_counter`` and
observes the elapsed seconds into a histogram metric; :func:`timed`
wraps a whole function the same way.  Timers nest naturally — each
scope records its own full wall time into its own metric — which is
exactly what the hot-path breakdown needs (``experiments.grid.cell_s``
includes the ``sim.execution.simulate_mix_s`` it contains).

When no explicit registry is given, a timer binds to the global one and
honours the global on/off switch, so instrumented code costs two
``perf_counter`` calls and one histogram insert when telemetry is on and
almost nothing when it is off.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Optional, TypeVar

from repro.telemetry import context
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["ScopedTimer", "timed"]

F = TypeVar("F", bound=Callable)


class ScopedTimer:
    """Context manager timing one scope into a histogram metric.

    Parameters
    ----------
    metric:
        Histogram name, ``layer.component.metric`` style; the convention
        suffixes wall-time metrics with ``_s``.
    registry:
        Explicit registry (always records).  Defaults to the global
        registry, in which case the global enabled switch is honoured.
    labels:
        Optional metric-family labels.
    """

    def __init__(self, metric: str, registry: Optional[MetricsRegistry] = None,
                 **labels: str) -> None:
        self.metric = metric
        self._registry = registry
        self._labels = labels
        self._start: Optional[float] = None
        self.elapsed_s: float = 0.0

    def __enter__(self) -> "ScopedTimer":
        """Start the clock (a no-op scope when globally disabled)."""
        if self._registry is None and not context.enabled():
            return self
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop the clock and record the elapsed seconds."""
        if self._start is None:
            return
        self.elapsed_s = time.perf_counter() - self._start
        registry = self._registry if self._registry is not None \
            else context.get_registry()
        registry.histogram(self.metric, **self._labels).observe(self.elapsed_s)


def timed(metric: str, registry: Optional[MetricsRegistry] = None) -> Callable[[F], F]:
    """Decorator form of :class:`ScopedTimer` for whole functions."""

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with ScopedTimer(metric, registry=registry):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
