"""cProfile capture with tracing-span attribution.

``--profile`` runs on the CLI answer two questions the span tree alone
cannot: *which frames* burn the wall time a span reports, and *which
span* owns a hot frame.  This module captures a :mod:`cProfile` run
around a command and writes two artifacts next to ``trace.json`` under
the telemetry output directory:

``profile.pstats``
    The raw marshalled stats, loadable with ``pstats.Stats`` /
    ``snakeviz`` for interactive digging.
``profile.txt``
    A human-readable report: the span **self-time** table (wall time
    per span name minus its children — where the trace says the time
    went) followed by the hottest frames by cumulative time, each
    attributed to the enclosing tracing span.

Frame→span attribution is a *heuristic*: a frame's module path is
mapped to its top-level ``repro`` package (``repro/sim/engine.py`` →
``sim``), and the frame is credited to the longest-wall finished span
whose name lives in that package (span names are dotted package paths
by convention — ``sim.engine.batch``, ``hierarchy.facility.run``).
Frames outside ``repro`` (numpy, stdlib) get no span.  That is precise
enough to answer "which subsystem's span owns this hot frame" without
instrumenting every call, and the report says so in its header.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Optional, Tuple

__all__ = ["profile_command", "span_self_times", "write_profile"]


@contextmanager
def profile_command():
    """Context manager: profile the enclosed block, yield the profiler."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()


def span_self_times(spans) -> List[Tuple[str, int, float, float]]:
    """Aggregate finished spans into ``(name, count, wall, self)`` rows.

    Self time is a span's wall clock minus the wall clock of its direct
    children (via ``parent_id``), clamped at zero; rows aggregate over
    span *names* and sort by self time, descending.
    """
    children_wall: Dict[str, float] = {}
    for span in spans:
        if span.parent_id is not None:
            children_wall[span.parent_id] = (
                children_wall.get(span.parent_id, 0.0) + span.wall_s
            )
    rows: Dict[str, List[float]] = {}
    for span in spans:
        self_s = max(0.0, span.wall_s - children_wall.get(span.span_id, 0.0))
        entry = rows.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.wall_s
        entry[2] += self_s
    return sorted(
        ((name, int(c), wall, self_s)
         for name, (c, wall, self_s) in rows.items()),
        key=lambda row: row[3], reverse=True,
    )


def _package_spans(spans) -> Dict[str, str]:
    """Top-level span package -> the longest-wall span name inside it."""
    best: Dict[str, Tuple[float, str]] = {}
    for span in spans:
        package = span.name.split(".", 1)[0]
        current = best.get(package)
        if current is None or span.wall_s > current[0]:
            best[package] = (span.wall_s, span.name)
    return {package: name for package, (_, name) in best.items()}


def _frame_package(filename: str) -> Optional[str]:
    """The ``repro`` subpackage a frame's file belongs to, if any."""
    parts = Path(filename).parts
    for i, part in enumerate(parts):
        if part == "repro" and i + 1 < len(parts):
            nxt = parts[i + 1]
            return nxt[:-3] if nxt.endswith(".py") else nxt
    return None


def write_profile(out_dir, profiler: cProfile.Profile, spans,
                  top: int = 25) -> Tuple[Path, Path]:
    """Write ``profile.pstats`` + ``profile.txt`` under ``out_dir``.

    ``spans`` is the tracer's finished-span list
    (``get_tracer().finished()``); it drives both the self-time table
    and the hot-frame span attribution.  Returns the two paths.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    pstats_path = out / "profile.pstats"
    profiler.dump_stats(str(pstats_path))

    stats = pstats.Stats(profiler)
    package_span = _package_spans(spans)

    lines: List[str] = []
    lines.append("# Profile report")
    lines.append("# Frame->span attribution is heuristic: frames map to")
    lines.append("# the longest-wall span of their repro subpackage.")
    lines.append("")
    lines.append("== Span self time (wall seconds) ==")
    lines.append(f"{'span':<44} {'count':>6} {'wall_s':>10} {'self_s':>10}")
    for name, count, wall, self_s in span_self_times(spans):
        lines.append(f"{name:<44} {count:>6} {wall:>10.4f} {self_s:>10.4f}")

    lines.append("")
    lines.append(f"== Hottest frames by cumulative time (top {top}) ==")
    lines.append(
        f"{'frame':<58} {'ncalls':>9} {'tottime':>9} {'cumtime':>9}  span"
    )
    entries = sorted(
        stats.stats.items(),
        key=lambda item: item[1][3],  # cumulative time
        reverse=True,
    )
    for (filename, lineno, func), (_, ncalls, tottime, cumtime, _) in \
            entries[:top]:
        short = f"{Path(filename).name}:{lineno}({func})"
        package = _frame_package(filename)
        span_name = package_span.get(package, "-") if package else "-"
        lines.append(
            f"{short:<58} {ncalls:>9} {tottime:>9.4f} {cumtime:>9.4f}"
            f"  {span_name}"
        )
    txt_path = out / "profile.txt"
    txt_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return pstats_path, txt_path
