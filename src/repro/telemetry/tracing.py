"""Hierarchical tracing: where the time went, not just how much.

The metrics registry answers *how much* (counts, latencies); the event
bus answers *what happened*; neither answers *where in the call tree*.
This module adds the third leg: :class:`Span` records one timed scope
with a parent link, so a grid run decomposes into
``experiments.grid.run_all -> manager.launch -> sim.simulate_mix`` and
the paper's layer-attribution argument (resource manager vs runtime
agent vs hardware) can be made about our own reproduction.

Design rules, mirroring the rest of :mod:`repro.telemetry`:

* **Zero configuration.**  Instrumented code calls the module-level
  :func:`span` context manager; spans nest through a per-thread stack on
  the process-global :class:`Tracer` (:func:`get_tracer`).
* **Cheap when off.**  :func:`set_tracing` (and the global telemetry
  switch) turn the whole thing into a ``yield None``; the overhead gate
  (< 2 % on ``simulate_mix``, ``BENCH_trace_overhead.json``) is
  asserted in CI.
* **Physics-blind.**  Tracing never touches a simulation RNG stream —
  tracing-on and tracing-off runs are bit-identical, pinned by
  ``tests/property/test_tracing_properties.py``.
* **Mergeable.**  A worker process ships :meth:`Tracer.state` back with
  its results; :meth:`Tracer.merge_state` grafts the shipped trees under
  the parent's active span, exactly as
  :meth:`~repro.telemetry.metrics.MetricsRegistry.merge_state` folds
  metrics and :meth:`~repro.telemetry.events.EventBus.replay` replays
  events.

Each span records wall time (``perf_counter``), CPU time
(``process_time``), free-form attributes, and the *delta of every global
counter* that moved while it was open (``counters``) — which is how the
cache hit/miss split and fault-override counts show up per subtree
without extra plumbing.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "current_span",
    "set_tracing",
    "tracing_enabled",
    "span_forest",
    "validate_span_tree",
]

#: Schema tag written into exported span dicts / trace files.
TRACE_SCHEMA = "repro.trace.v1"

_SPAN_FIELDS = (
    "name", "span_id", "trace_id", "parent_id", "start_unix", "end_unix",
    "wall_s", "cpu_s", "attributes", "counters", "status",
)


@dataclass
class Span:
    """One timed scope in the call tree.

    Attributes
    ----------
    name:
        Dotted ``layer.component.operation`` scope name.
    span_id / trace_id / parent_id:
        Identity: ``span_id`` is unique per process (pid-prefixed, so
        merged cross-process trees never collide), ``trace_id`` is the
        root span's id, ``parent_id`` is ``None`` on roots.
    start_unix / end_unix:
        Wall-clock bounds (``time.time``) — comparable across processes
        on one machine, which is what the nesting validation of merged
        trees relies on.
    wall_s / cpu_s:
        Elapsed ``perf_counter`` / ``process_time`` seconds (monotonic,
        exact within the process).
    attributes:
        Flat JSON-serialisable details set at entry or via
        :meth:`set_attribute`.
    counters:
        Global-counter deltas observed while the span was open — only
        counters that moved appear.
    status:
        ``"ok"``, or ``"error"`` when the scope raised.
    """

    name: str
    span_id: str
    trace_id: str
    parent_id: Optional[str] = None
    start_unix: float = 0.0
    end_unix: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    attributes: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    status: str = "ok"

    def set_attribute(self, key: str, value: object) -> None:
        """Attach one attribute to the (open or finished) span."""
        self.attributes[str(key)] = value

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict form (the :meth:`Tracer.state` wire format)."""
        return {f: getattr(self, f) for f in _SPAN_FIELDS}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(**{f: data[f] for f in _SPAN_FIELDS})  # type: ignore[arg-type]


class Tracer:
    """Collects finished spans and tracks the per-thread open stack.

    Parameters
    ----------
    capacity:
        Finished-span ring size; the oldest spans are dropped once
        exceeded (recent history without unbounded memory, like the
        event bus).
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._finished: deque = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0

    # -- identity ------------------------------------------------------
    def _new_id(self) -> str:
        with self._lock:
            self._next_id += 1
            seq = self._next_id
        return f"{os.getpid():x}-{seq:x}"

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- recording -----------------------------------------------------
    def start(self, name: str, **attributes: object) -> Span:
        """Open a span under the thread's current span (or as a root)."""
        stack = self._stack()
        span_id = self._new_id()
        if stack:
            parent = stack[-1]
            parent_id, trace_id = parent.span_id, parent.trace_id
        else:
            parent_id, trace_id = None, span_id
        record = Span(
            name=name, span_id=span_id, trace_id=trace_id,
            parent_id=parent_id, start_unix=time.time(),
            attributes=dict(attributes),
        )
        stack.append(record)
        return record

    def finish(self, record: Span, status: str = "ok") -> None:
        """Close the span and move it to the finished ring."""
        stack = self._stack()
        if record in stack:
            # Close any abandoned children first (exception unwinding).
            while stack and stack[-1] is not record:
                stack.pop()
            stack.pop()
        record.end_unix = time.time()
        record.status = status
        with self._lock:
            self._finished.append(record)

    def current(self) -> Optional[Span]:
        """The thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- reading back --------------------------------------------------
    def finished(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans, oldest first, optionally filtered by name."""
        with self._lock:
            out = list(self._finished)
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def __len__(self) -> int:
        """Finished spans currently held."""
        return len(self._finished)

    def clear(self) -> None:
        """Drop finished spans (open stacks are left alone)."""
        with self._lock:
            self._finished.clear()

    # -- cross-process merging -----------------------------------------
    def state(self) -> List[Dict[str, object]]:
        """Finished spans as JSON/pickle-ready dicts (the wire format a
        worker ships back with its results)."""
        return [s.to_dict() for s in self.finished()]

    def merge_state(
        self,
        state: Sequence[Mapping[str, object]],
        parent: Optional[Span] = None,
    ) -> List[Span]:
        """Graft shipped spans into this tracer's finished ring.

        Spans whose parent did not ship (worker roots, or spans orphaned
        by the worker's ring overflow) are re-parented under ``parent``
        (default: the calling thread's current span), and every span of
        an adopted trace is moved onto the adopter's ``trace_id`` — so a
        merged forest stays well-formed: one root per trace, no orphans.
        Returns the merged spans.
        """
        if parent is None:
            parent = self.current()
        spans = [Span.from_dict(d) for d in state]
        shipped_ids = {s.span_id for s in spans}
        remapped_traces: Dict[str, str] = {}
        for record in spans:
            if record.parent_id not in shipped_ids:
                if parent is not None:
                    record.parent_id = parent.span_id
                    remapped_traces[record.trace_id] = parent.trace_id
                else:
                    record.parent_id = None
                    remapped_traces.setdefault(record.trace_id, record.trace_id)
        for record in spans:
            record.trace_id = remapped_traces.get(record.trace_id,
                                                  record.trace_id)
        with self._lock:
            for record in spans:
                self._finished.append(record)
        return spans

    # -- export --------------------------------------------------------
    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the finished spans as a ``{schema, spans}`` JSON file."""
        import json

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": TRACE_SCHEMA, "spans": self.state()}
        path.write_text(json.dumps(payload, indent=2, default=str) + "\n",
                        encoding="utf-8")
        return path


# ----------------------------------------------------------------------
# the process-global tracer + switch
# ----------------------------------------------------------------------
_tracing: bool = True
_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def set_tracing(flag: bool) -> bool:
    """Switch span recording on/off; returns the previous state.

    Tracing also honours the global telemetry switch
    (:func:`repro.telemetry.set_enabled`): spans record only when *both*
    are on.
    """
    global _tracing
    previous = _tracing
    _tracing = bool(flag)
    return previous


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded (both switches on)."""
    from repro.telemetry import context

    return _tracing and context.enabled()


def _reset_tracer() -> None:
    """Replace the global tracer (fresh worker context; see
    :func:`repro.telemetry.isolate`)."""
    global _tracer
    _tracer = Tracer()


def current_span() -> Optional[Span]:
    """The calling thread's innermost open span on the global tracer."""
    return _tracer.current()


@contextmanager
def span(name: str, **attributes: object) -> Iterator[Optional[Span]]:
    """Record one hierarchical span around the ``with`` block.

    Yields the open :class:`Span` (so the block can
    :meth:`~Span.set_attribute` results) or ``None`` when tracing is
    off — callers must guard attribute writes with ``if sp is not None``
    or use the walrus-free pattern ``sp and sp.set_attribute(...)``.

    Wall time comes from ``perf_counter``, CPU time from
    ``process_time``, and every global counter that moves inside the
    block lands in :attr:`Span.counters` as a delta.
    """
    if not tracing_enabled():
        yield None
        return
    from repro.telemetry import context

    tracer = _tracer
    record = tracer.start(name, **attributes)
    counters_before = context.get_registry().counter_values()
    start_wall = time.perf_counter()
    start_cpu = time.process_time()
    status = "ok"
    try:
        yield record
    except BaseException:
        status = "error"
        raise
    finally:
        record.wall_s = time.perf_counter() - start_wall
        record.cpu_s = time.process_time() - start_cpu
        for key, value in context.get_registry().counter_values().items():
            delta = value - counters_before.get(key, 0.0)
            if delta:
                record.counters[key] = delta
        tracer.finish(record, status=status)


# ----------------------------------------------------------------------
# well-formedness
# ----------------------------------------------------------------------
def span_forest(
    spans: Sequence[Span],
) -> Dict[str, Dict[str, List[Span]]]:
    """Group spans into ``{trace_id: {"roots": [...], "spans": [...]}}``."""
    forest: Dict[str, Dict[str, List[Span]]] = {}
    for record in spans:
        entry = forest.setdefault(record.trace_id,
                                  {"roots": [], "spans": []})
        entry["spans"].append(record)
        if record.parent_id is None:
            entry["roots"].append(record)
    return forest


def validate_span_tree(
    spans: Sequence[Span], nesting_slack_s: float = 0.05
) -> List[str]:
    """Check the structural invariants of a finished span set.

    Returns a list of human-readable problems (empty = well-formed):

    * every trace has exactly one root;
    * every non-root's parent exists, in the same trace (no orphans);
    * the parent graph is acyclic;
    * each child's ``[start_unix, end_unix]`` interval nests inside its
      parent's, within ``nesting_slack_s`` (wall-clock comparisons may
      cross process boundaries, so exact containment is not required).
    """
    problems: List[str] = []
    by_id: Dict[str, Span] = {}
    for record in spans:
        if record.span_id in by_id:
            problems.append(f"duplicate span_id {record.span_id}")
        by_id[record.span_id] = record

    for trace_id, entry in span_forest(spans).items():
        n_roots = len(entry["roots"])
        if n_roots != 1:
            problems.append(
                f"trace {trace_id} has {n_roots} roots (expected 1)"
            )

    for record in spans:
        if record.parent_id is None:
            continue
        parent = by_id.get(record.parent_id)
        if parent is None:
            problems.append(
                f"span {record.span_id} ({record.name}) is orphaned: "
                f"parent {record.parent_id} not present"
            )
            continue
        if parent.trace_id != record.trace_id:
            problems.append(
                f"span {record.span_id} ({record.name}) crosses traces: "
                f"{record.trace_id} vs parent's {parent.trace_id}"
            )
        if record.start_unix < parent.start_unix - nesting_slack_s or \
                record.end_unix > parent.end_unix + nesting_slack_s:
            problems.append(
                f"span {record.span_id} ({record.name}) interval "
                f"[{record.start_unix:.6f}, {record.end_unix:.6f}] not "
                f"nested in parent {parent.span_id} ({parent.name}) "
                f"[{parent.start_unix:.6f}, {parent.end_unix:.6f}]"
            )

    # Cycle check over the parent graph.
    seen_ok: set = set()
    for record in spans:
        path: set = set()
        node: Optional[Span] = record
        while node is not None and node.span_id not in seen_ok:
            if node.span_id in path:
                problems.append(
                    f"cycle in parent chain at span {node.span_id}"
                )
                break
            path.add(node.span_id)
            node = by_id.get(node.parent_id) if node.parent_id else None
        seen_ok.update(path)
    return problems
