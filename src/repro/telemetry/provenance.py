"""Run-provenance ledger: every run stamped with *exactly what ran*.

PRs 2-5 established hard determinism contracts (content-addressed cache
keys, SeedSequence-derived child seeds, bit-identical batch engines) but
none of that is *recorded*: a saved report cannot say which config hash,
seed lineage, fault schedule, or cache state produced it.  This module
writes that down, in the spirit of NRM's daemon where every run emits
schema'd, replayable telemetry artifacts.

A ledger is one JSON bundle (:data:`PROVENANCE_SCHEMA`) with:

* the run ``kind`` and free-form ``inputs`` summary;
* a **config content-hash** (the same
  :func:`~repro.parallel.cache.stable_digest` the characterization cache
  keys on, so "identical hash" literally means "identical physics
  inputs");
* the **seed lineage** (root seed plus any derivation notes);
* the **fault-schedule digest** (name + content hash + event count);
* **cache effectiveness** (hits / misses / hit ratio at capture time);
* the **span tree** (:meth:`~repro.telemetry.tracing.Tracer.state`) and
  the **metrics snapshot** — the full observability state;
* **environment**: package / Python / NumPy versions, git commit when
  available, host identity.

:func:`capture_ledger` builds the bundle from the live telemetry
context; :func:`write_ledger` / :func:`load_ledger` round-trip it
through disk with :func:`validate_ledger` enforcing the schema both
ways, so a ledger that loads is guaranteed to carry every field a
downstream comparator needs.
"""

from __future__ import annotations

import json
import platform
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

__all__ = [
    "PROVENANCE_SCHEMA",
    "capture_ledger",
    "validate_ledger",
    "write_ledger",
    "load_ledger",
]

#: Schema tag; bump on breaking bundle-layout changes.
PROVENANCE_SCHEMA = "repro.provenance.v1"

#: Required top-level keys and the type each must carry.
_REQUIRED: Dict[str, type] = {
    "schema": str,
    "kind": str,
    "created_unix": float,
    "config_hash": str,
    "inputs": dict,
    "seed": dict,
    "fault_schedule": dict,
    "cache": dict,
    "spans": list,
    "metrics": dict,
    "events_by_source": dict,
    "versions": dict,
    "git": dict,
    "host": dict,
}


def _git_info(repo_dir: Optional[Union[str, Path]] = None) -> Dict[str, object]:
    """Best-effort git identity of the source tree (never raises)."""
    cwd = str(repo_dir) if repo_dir is not None \
        else str(Path(__file__).resolve().parent)
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5,
        )
        if commit.returncode != 0:
            return {"commit": None, "dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=5,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"commit": commit.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"commit": None, "dirty": None}


def _cache_stats() -> Dict[str, float]:
    """Hit/miss counts from the active cache (or the registry counters)."""
    from repro.parallel.cache import active_cache
    from repro.telemetry import context

    cache = active_cache()
    if cache is not None:
        hits, misses = float(cache.hits), float(cache.misses)
    else:
        counters = context.get_registry().snapshot()["counters"]
        hits = float(counters.get("sim.execution.cache_hits", 0.0))
        misses = float(counters.get("sim.execution.runs", 0.0))
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_ratio": hits / total if total else 0.0,
    }


def _fault_digest(fault_schedule) -> Dict[str, object]:
    """Name + content hash + event count of a schedule (or an empty stub)."""
    if fault_schedule is None:
        return {"name": None, "digest": None, "events": 0}
    from repro.parallel.cache import stable_digest

    return {
        "name": fault_schedule.name,
        "digest": stable_digest(fault_schedule),
        "events": len(fault_schedule.events),
    }


def capture_ledger(
    kind: str,
    config: object = None,
    *,
    inputs: Optional[Mapping[str, object]] = None,
    seed: Optional[int] = None,
    seed_lineage: Optional[Mapping[str, object]] = None,
    fault_schedule=None,
) -> Dict[str, object]:
    """Build a provenance bundle from the live telemetry context.

    Parameters
    ----------
    kind:
        What ran (``"grid"``, ``"site"``, ``"faults"``, ``"characterize"``,
        or any caller-chosen tag).
    config:
        The run's configuration object (dataclass, dict, array, ...);
        hashed with :func:`~repro.parallel.cache.stable_digest` into
        ``config_hash``.  ``None`` hashes to the digest of ``None``.
    inputs:
        Free-form JSON-serialisable summary of the run inputs (mix
        names, policies, scale, ...), stored verbatim.
    seed / seed_lineage:
        Root seed and optional derivation notes (e.g. how
        ``SeedSequence`` child seeds were spawned from it).
    fault_schedule:
        Optional :class:`~repro.faults.schedule.FaultSchedule`; recorded
        as a name + content digest + event count.
    """
    from repro import __version__
    from repro.parallel.cache import stable_digest
    from repro.telemetry import context
    from repro.telemetry.tracing import get_tracer

    import numpy as np

    registry = context.get_registry()
    bundle: Dict[str, object] = {
        "schema": PROVENANCE_SCHEMA,
        "kind": str(kind),
        "created_unix": float(time.time()),
        "config_hash": stable_digest(config),
        "inputs": dict(inputs or {}),
        "seed": {
            "root": seed,
            "lineage": dict(seed_lineage or {}),
        },
        "fault_schedule": _fault_digest(fault_schedule),
        "cache": _cache_stats(),
        "spans": get_tracer().state(),
        "metrics": registry.snapshot(),
        "events_by_source": context.get_bus().counts_by_source(),
        "versions": {
            "repro": __version__,
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "git": _git_info(),
        "host": {
            "hostname": socket.gethostname(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": __import__("os").cpu_count(),
            "argv": list(sys.argv),
        },
    }
    return bundle


def validate_ledger(bundle: Mapping[str, object]) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(bundle, Mapping):
        return [f"ledger must be a mapping, got {type(bundle).__name__}"]
    for key, expected in _REQUIRED.items():
        if key not in bundle:
            problems.append(f"missing required key {key!r}")
            continue
        value = bundle[key]
        if expected is float and isinstance(value, int):
            continue  # JSON round-trips may narrow exact floats to ints
        if not isinstance(value, expected):
            problems.append(
                f"key {key!r} must be {expected.__name__}, "
                f"got {type(value).__name__}"
            )
    if not problems and bundle["schema"] != PROVENANCE_SCHEMA:
        problems.append(
            f"schema {bundle['schema']!r} != {PROVENANCE_SCHEMA!r}"
        )
    if not problems:
        for span_dict in bundle["spans"]:
            if not isinstance(span_dict, Mapping) or "span_id" not in span_dict:
                problems.append("spans entries must be span dicts")
                break
    return problems


def write_ledger(bundle: Mapping[str, object],
                 path: Union[str, Path]) -> Path:
    """Validate and write the bundle as pretty JSON; returns the path."""
    problems = validate_ledger(bundle)
    if problems:
        raise ValueError("invalid provenance ledger: " + "; ".join(problems))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bundle, indent=2, sort_keys=False, default=str)
                    + "\n", encoding="utf-8")
    return path


def load_ledger(path: Union[str, Path]) -> Dict[str, object]:
    """Read and validate a ledger written by :func:`write_ledger`."""
    bundle = json.loads(Path(path).read_text(encoding="utf-8"))
    problems = validate_ledger(bundle)
    if problems:
        raise ValueError(
            f"invalid provenance ledger {path}: " + "; ".join(problems)
        )
    return bundle
