"""Unified telemetry: structured events, metrics, and scoped timers.

The paper's central claim is that power-management quality is a function
of *what telemetry a layer can see*; this subsystem makes the
reproduction itself observable with the same discipline.  Three pieces,
one pipeline:

* :mod:`repro.telemetry.events` — a structured :class:`EventBus`
  (``Event(ts, source, kind, payload)``, subscriber API, ring buffer,
  JSONL/CSV export) in the spirit of NRM's upstream pub/sub API;
* :mod:`repro.telemetry.metrics` — a :class:`MetricsRegistry` of
  counters, gauges, and streaming histograms (reservoir quantiles, no
  dependencies beyond the standard library);
* :mod:`repro.telemetry.timers` — :class:`ScopedTimer` / :func:`timed`
  profiling hooks over ``time.perf_counter`` that feed the registry.

Every layer records through the process-global context
(:func:`get_registry` / :func:`get_bus` / :func:`emit`), switchable with
:func:`set_enabled`; :class:`TelemetrySummary` rolls the state up for
reports and the CLI.  Metric names follow ``layer.component.metric``;
event sources follow ``layer.component``.

Quick tour::

    from repro import telemetry

    telemetry.reset()
    token = telemetry.get_bus().subscribe(print, kinds=["cell_complete"])
    ...  # run anything in the stack
    print(telemetry.TelemetrySummary.capture().render())
    telemetry.get_bus().unsubscribe(token)
"""

from repro.telemetry.context import (
    disabled,
    emit,
    enabled,
    get_bus,
    get_registry,
    isolate,
    reset,
    set_enabled,
)
from repro.telemetry.events import Event, EventBus
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    metric_key,
)
from repro.telemetry.provenance import (
    PROVENANCE_SCHEMA,
    capture_ledger,
    load_ledger,
    validate_ledger,
    write_ledger,
)
from repro.telemetry.profiling import (
    profile_command,
    span_self_times,
    write_profile,
)
from repro.telemetry.summary import TelemetrySummary
from repro.telemetry.timers import ScopedTimer, timed
from repro.telemetry.tracing import (
    Span,
    Tracer,
    current_span,
    get_tracer,
    set_tracing,
    span,
    span_forest,
    tracing_enabled,
    validate_span_tree,
)

__all__ = [
    "Event",
    "EventBus",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "metric_key",
    "ScopedTimer",
    "timed",
    "TelemetrySummary",
    "enabled",
    "set_enabled",
    "disabled",
    "get_registry",
    "get_bus",
    "emit",
    "reset",
    "isolate",
    "profile_command",
    "span_self_times",
    "write_profile",
    "Span",
    "Tracer",
    "span",
    "current_span",
    "get_tracer",
    "set_tracing",
    "tracing_enabled",
    "span_forest",
    "validate_span_tree",
    "PROVENANCE_SCHEMA",
    "capture_ledger",
    "validate_ledger",
    "write_ledger",
    "load_ledger",
]
