"""The process-wide telemetry context: one registry, one bus, one switch.

Instrumentation sites across the stack need a zero-configuration place
to record into; this module holds it.  :func:`get_registry` and
:func:`get_bus` return the shared :class:`~repro.telemetry.metrics.MetricsRegistry`
and :class:`~repro.telemetry.events.EventBus`; :func:`set_enabled`
flips the whole subsystem off (instrumented code keeps running, records
nothing — the overhead benchmark's baseline); :func:`emit` is the
publish helper every layer uses, which honours the switch.

The context is deliberately process-global, like logging's root logger:
the stack's layers must share one pipeline for the grid report to see
runtime, manager, and experiments telemetry together.  Tests that need
isolation call :func:`reset` (or construct private registries/buses).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.telemetry.events import Event, EventBus
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "enabled",
    "set_enabled",
    "get_registry",
    "get_bus",
    "emit",
    "reset",
    "isolate",
    "disabled",
]

_enabled: bool = True
_registry = MetricsRegistry()
_bus = EventBus()


def enabled() -> bool:
    """Whether the global telemetry pipeline is recording."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Switch global recording on/off; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager that suspends global recording inside the block."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def get_bus() -> EventBus:
    """The process-wide event bus."""
    return _bus


def emit(source: str, kind: str, **payload: object) -> Optional[Event]:
    """Publish one event to the global bus — or nothing when disabled.

    This is the helper instrumented layers call; components that must
    always record (e.g. an explicitly attached trace writer) publish to
    a bus directly instead.
    """
    if not _enabled:
        return None
    return _bus.publish(source, kind, **payload)


def reset() -> None:
    """Clear the global registry, event buffer, and finished spans
    (switches unchanged)."""
    from repro.telemetry import tracing

    _registry.reset()
    _bus.clear()
    tracing.get_tracer().clear()


def isolate() -> None:
    """Replace the global registry, bus, and tracer with fresh instances.

    Unlike :func:`reset`, this also discards subscribers and open span
    stacks — which is what a forked worker process needs: subscriptions
    (and any file handles they close over, e.g. a trace writer) belong
    to the parent and must not fire in the child, and a parent's open
    spans must not become the worker's span ancestry.
    """
    global _registry, _bus
    from repro.telemetry import tracing

    _registry = MetricsRegistry()
    _bus = EventBus()
    tracing._reset_tracer()
