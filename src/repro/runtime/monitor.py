"""The monitor agent: telemetry without control.

GEOPM's ``monitor`` agent "simply reports requested metrics of interest,
such as energy and time, without modifying system behavior" (paper §III-B).
The paper uses it for characterization metric (a): maximum power each
workload consumes when unconstrained (Fig. 4), and its reports feed the
``Precharacterized`` and ``StaticCaps`` baselines.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.agent import (
    Agent,
    AgentBatch,
    DEFAULT_REGISTRY,
    PlatformSample,
    SampleBatch,
)

__all__ = ["MonitorAgent"]


@DEFAULT_REGISTRY.register
class MonitorAgent(Agent):
    """Leave limits untouched; exist only so reports get generated."""

    name = "monitor"

    def __init__(self) -> None:
        self._last_limits: np.ndarray | None = None

    def adjust(self, sample: PlatformSample) -> np.ndarray:
        """Echo back whatever limits are already in force."""
        self._last_limits = np.array(sample.power_limit_w, dtype=float, copy=True)
        return self._last_limits

    @classmethod
    def make_batch(cls, agents) -> "_MonitorBatch":
        """Batch any group of monitors (they are stateless echoes)."""
        return _MonitorBatch(len(agents))


class _MonitorBatch(AgentBatch):
    """Vectorised monitor: echo every run's in-force limits at once."""

    def __init__(self, run_count: int) -> None:
        self._run_count = int(run_count)

    def adjust_batch(self, sample: SampleBatch, rows: np.ndarray) -> np.ndarray:
        return np.array(sample.power_limit_w, dtype=float, copy=True)

    def converged_mask(self, rows: np.ndarray) -> np.ndarray:
        # Serial ``MonitorAgent`` inherits the trivially-true converged().
        return np.ones(rows.size, dtype=bool)
