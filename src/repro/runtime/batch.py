"""Batched controller runtime: many feedback loops stepped in lockstep.

The serial :class:`~repro.runtime.controller.Controller` advances *one*
job's agent loop an epoch at a time — authentic, but every consumer that
sweeps the real feedback path (the Fig. 4/5 characterization grids, the
balancer convergence studies, resilience scenario suites) pays
``O(cells × epochs)`` Python overhead running it in a loop.  This module
adds the *run axis*: :class:`ControllerBatch` advances ``C`` independent
controller runs together, one vectorised physics step per epoch over
``(C, hosts)`` tensors, reusing :class:`~repro.sim.engine.ExecutionModel`
exactly as ``Controller._run_epoch`` does.

Determinism contract
--------------------
Run ``c`` of a batch is **bit-identical** to a serial ``Controller`` run
with the same job, efficiencies, seed, and agent — not merely close:

* every physics quantity is a pure elementwise ufunc chain, so a leading
  run axis cannot change any element's value;
* per-run reductions (epoch critical path, report energy sums) operate on
  contiguous rows with the serial operation order;
* noise is drawn from *per-run* ``default_rng(seed)`` streams, only on
  epochs where that run's effective sigma is positive — the serial
  draw-by-draw sequence;
* batched agents (:meth:`~repro.runtime.agent.AgentBatch.adjust_batch`)
  are themselves written to the same contract, and both runtimes build
  reports through one function
  (:func:`~repro.runtime.reports.report_from_arrays`).

The property is pinned by ``tests/property/test_controller_batch.py``.

Agent batching and the fallback
-------------------------------
Runs are grouped by agent class; a class that defines a
``make_batch(agents)`` classmethod gets one vectorised
:class:`~repro.runtime.agent.AgentBatch` stepping the whole group.
Everything else — duck-typed third-party agents, groups ``make_batch``
declines (e.g. heterogeneous balancer options), and runs carrying an
active fault injector (whose corrupted observation is inherently
per-run) — falls back to per-run serial agent stepping.  Fallback runs
still share the batched physics step; only the agent call and its sample
materialisation are per-run.

Convergence freezing
--------------------
A converged run leaves the active set: its state is recorded and it is
excluded from further physics and agent work, exactly like a serial
controller that stopped iterating.  The active set only shrinks, so run
``c``'s history is always the first ``epochs[c]`` entries of the batch
log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.agent import Agent, AgentBatch, SampleBatch
from repro.runtime.controller import EpochResult
from repro.runtime.reports import JobReport, report_from_arrays
from repro.sim.batch import stack_job_layouts
from repro.sim.engine import ExecutionModel
from repro.telemetry import ScopedTimer, emit, enabled, get_registry, span
from repro.workload.job import Job

__all__ = [
    "ControllerRunSpec",
    "ControllerBatch",
    "ControllerBatchResult",
    "run_controller_batch",
]


@dataclass(frozen=True)
class ControllerRunSpec:
    """One run's configuration — the arguments of a serial ``Controller``.

    Attributes mirror :class:`~repro.runtime.controller.Controller`
    parameter-for-parameter so a spec and a serial controller built from
    the same values describe the same run.
    """

    job: Job
    efficiencies: np.ndarray
    agent: Agent
    noise_std: float = 0.0
    seed: int = 0
    barrier_overhead_s: float = 5.0e-4
    fault_injector: object = None

    def __post_init__(self) -> None:
        eff = np.asarray(self.efficiencies, dtype=float)
        if eff.shape != (self.job.node_count,):
            raise ValueError(
                f"efficiencies must have shape ({self.job.node_count},), "
                f"got {eff.shape}"
            )
        object.__setattr__(self, "efficiencies", eff)

    @property
    def injecting(self) -> bool:
        """Whether this run carries an active fault injector."""
        return self.fault_injector is not None and self.fault_injector.active


@dataclass(frozen=True)
class _EpochLog:
    """One epoch's record for all runs active that epoch."""

    epoch: int
    rows: np.ndarray              # (A,) global run indices, sorted
    sample: SampleBatch           # truthful physics, one row per entry of rows
    limits_applied_w: np.ndarray  # (A, hosts) limits the agents returned


class _AgentGroup:
    """A set of runs stepped by one vectorised :class:`AgentBatch`."""

    def __init__(self, members: Sequence[int], batch: AgentBatch) -> None:
        self.members = np.asarray(members, dtype=int)
        self.batch = batch
        # global run id -> row within the group's batch state
        self.row_of: Dict[int, int] = {
            int(c): row for row, c in enumerate(self.members)
        }


class _ActiveGather:
    """Per-active-set caches: layout/physics rows and agent dispatch maps.

    Rebuilt only when the active set changes (a convergence event), not
    every epoch.
    """

    def __init__(self, batch: "ControllerBatch", active: np.ndarray) -> None:
        self.layout = batch._layouts.take(active)
        self.eff = batch._eff[active]
        self.noise = batch._noise[active]
        self.barrier = batch._barrier[active]
        pos_of = {int(c): i for i, c in enumerate(active)}
        self.groups: List[Tuple[_AgentGroup, np.ndarray, np.ndarray]] = []
        for group in batch._groups:
            rows = [
                (group.row_of[c], pos_of[c])
                for c in group.members.tolist()
                if c in pos_of
            ]
            if rows:
                in_group, positions = zip(*rows)
                self.groups.append(
                    (group, np.array(in_group, dtype=int),
                     np.array(positions, dtype=int))
                )
        self.fallback = [
            (c, pos_of[c]) for c in batch._fallback if c in pos_of
        ]
        self.injected = [
            (c, pos_of[c]) for c in batch._injected if c in pos_of
        ]


def _slice_sample(sample: SampleBatch, positions: np.ndarray) -> SampleBatch:
    """Rows ``positions`` of a sample (the full sample when they cover it)."""
    if positions.size == sample.epoch_time_s.size and np.array_equal(
        positions, np.arange(positions.size)
    ):
        return sample
    return SampleBatch(
        epoch=sample.epoch,
        host_time_s=sample.host_time_s[positions],
        epoch_time_s=sample.epoch_time_s[positions],
        host_power_w=sample.host_power_w[positions],
        power_limit_w=sample.power_limit_w[positions],
        host_energy_j=sample.host_energy_j[positions],
        mean_freq_ghz=sample.mean_freq_ghz[positions],
    )


@dataclass(frozen=True)
class ControllerBatchResult:
    """Outcome of a batched controller run.

    ``reports[c]``, ``epochs[c]``, ``converged[c]``, and the per-run
    accessors are bit-identical to what the matching serial
    ``Controller`` would have produced (reports compared under disabled
    telemetry — wall-clock telemetry fields necessarily differ).
    """

    reports: Tuple[JobReport, ...]
    epochs: np.ndarray          # (C,) epochs each run executed
    converged: np.ndarray       # (C,) final convergence verdicts
    _log: Tuple[_EpochLog, ...]
    _final_limits_w: np.ndarray  # (C, hosts)

    @property
    def run_count(self) -> int:
        """Runs in the batch."""
        return len(self.reports)

    def _position(self, log: _EpochLog, run: int) -> int:
        pos = int(np.searchsorted(log.rows, run))
        if pos >= log.rows.size or log.rows[pos] != run:
            raise IndexError(f"run {run} was not active in epoch {log.epoch}")
        return pos

    def final_limits_w(self, run: int) -> np.ndarray:
        """Limits in force after run ``run``'s final epoch."""
        return self._final_limits_w[run].copy()

    def steady_state_sample(self, run: int):
        """Run ``run``'s final-epoch telemetry (its converged point)."""
        log = self._log[int(self.epochs[run]) - 1]
        return log.sample.sample_for(self._position(log, run))

    def history_for(self, run: int) -> List[EpochResult]:
        """Materialise run ``run``'s serial-equivalent epoch history."""
        out: List[EpochResult] = []
        for log in self._log[: int(self.epochs[run])]:
            pos = self._position(log, run)
            out.append(
                EpochResult(
                    epoch=log.epoch,
                    sample=log.sample.sample_for(pos),
                    limits_applied_w=log.limits_applied_w[pos].copy(),
                )
            )
        return out


class ControllerBatch:
    """Advance ``C`` controller runs in lockstep (see module docstring).

    Parameters
    ----------
    specs:
        One :class:`ControllerRunSpec` per run.  Jobs may differ freely in
        kernel configuration but must share one host count so their
        layouts stack.
    model:
        Physics bundle shared by every run (defaults to the Quartz node
        model, as in the serial controller).
    """

    def __init__(
        self,
        specs: Sequence[ControllerRunSpec],
        model: Optional[ExecutionModel] = None,
    ) -> None:
        specs = list(specs)
        if not specs:
            raise ValueError("a controller batch needs at least one run")
        hosts = specs[0].job.node_count
        for spec in specs:
            if spec.job.node_count != hosts:
                raise ValueError(
                    "all runs in a controller batch must share one host count"
                )
        self.specs = specs
        self.model = model if model is not None else ExecutionModel()
        self.hosts = int(hosts)
        self.run_count = len(specs)
        self._layouts = stack_job_layouts([s.job for s in specs])
        self._eff = np.stack([s.efficiencies for s in specs])
        self._noise = np.array([s.noise_std for s in specs], dtype=float)
        self._barrier = np.array(
            [s.barrier_overhead_s for s in specs], dtype=float
        )
        self._rngs = [np.random.default_rng(s.seed) for s in specs]
        self._injected = [c for c, s in enumerate(specs) if s.injecting]
        self._groups, self._fallback = self._plan_agents(specs)

    # ------------------------------------------------------------------
    @staticmethod
    def _plan_agents(
        specs: Sequence[ControllerRunSpec],
    ) -> Tuple[List[_AgentGroup], List[int]]:
        """Split runs into vectorised agent groups and the serial fallback.

        A run batches when its agent's own class (not an inherited base)
        defines ``make_batch`` and no fault injector is corrupting its
        observations; ``make_batch`` may still decline a group by
        returning ``None``.
        """
        by_class: Dict[type, List[int]] = {}
        fallback: List[int] = []
        for c, spec in enumerate(specs):
            cls = type(spec.agent)
            if spec.injecting or "make_batch" not in vars(cls):
                fallback.append(c)
            else:
                by_class.setdefault(cls, []).append(c)
        groups: List[_AgentGroup] = []
        for cls, members in by_class.items():
            batch = cls.make_batch([specs[c].agent for c in members])
            if batch is None:
                fallback.extend(members)
            else:
                groups.append(_AgentGroup(members, batch))
        fallback.sort()
        return groups, fallback

    # ------------------------------------------------------------------
    def _run_epoch_batch(
        self,
        epoch: int,
        limits: np.ndarray,
        active: np.ndarray,
        gathered: _ActiveGather,
        clock: np.ndarray,
    ) -> Tuple[SampleBatch, np.ndarray]:
        """One vectorised physics step for the active rows.

        Mirrors ``Controller._run_epoch`` expression-for-expression; the
        run axis only broadcasts, so every element matches its serial
        twin bitwise.
        """
        layout = gathered.layout
        eff = gathered.eff
        lim = limits[active]
        clock_start = clock[active].copy()
        sigma = gathered.noise.copy()
        for c, pos in gathered.injected:
            injector = self.specs[c].fault_injector
            t_now = float(clock_start[pos])
            lim[pos] = injector.filter_limits(lim[pos], t_now)
            sigma[pos] = injector.noise_sigma(float(sigma[pos]), t_now)
        caps = self.model.power_model.clamp_cap(lim)
        freq = self.model.frequencies(caps, layout, eff)
        t = self.model.compute_time(freq, layout)
        for pos in np.nonzero(sigma > 0)[0].tolist():
            rng = self._rngs[int(active[pos])]
            t[pos] = t[pos] * rng.lognormal(
                0.0, float(sigma[pos]), size=t[pos].shape
            )
        epoch_time = np.max(t, axis=1) + gathered.barrier
        p_compute = self.model.power_model.power_at_freq(
            freq, layout.kappa, eff
        )
        p_poll = self.model.poll_power(caps, layout, eff)
        slack = np.maximum(epoch_time[:, None] - t, 0.0)
        energy = p_compute * t + p_poll * slack
        mean_power = energy / epoch_time[:, None]
        sample = SampleBatch(
            epoch=epoch,
            host_time_s=t,
            epoch_time_s=epoch_time,
            host_power_w=mean_power,
            power_limit_w=caps,
            host_energy_j=energy,
            mean_freq_ghz=freq,
        )
        return sample, clock_start

    def _adjust(
        self,
        sample: SampleBatch,
        gathered: _ActiveGather,
        clock_start: np.ndarray,
    ) -> np.ndarray:
        """All active runs' agent steps; returns ``(A, hosts)`` limits."""
        new_limits = np.empty((sample.run_count, self.hosts))
        for group, in_group, positions in gathered.groups:
            gsample = _slice_sample(sample, positions)
            new_limits[positions] = group.batch.adjust_batch(gsample, in_group)
        for c, pos in gathered.fallback:
            spec = self.specs[c]
            observed = sample.sample_for(pos)
            if spec.injecting:
                observed = spec.fault_injector.corrupt_sample(
                    observed, float(clock_start[pos])
                )
            new_limits[pos] = spec.agent.adjust(observed)
        return new_limits

    def _converged(
        self, gathered: _ActiveGather, active_size: int
    ) -> np.ndarray:
        """Active rows' convergence verdicts (serial call-order mirrored)."""
        conv = np.zeros(active_size, dtype=bool)
        for group, in_group, positions in gathered.groups:
            conv[positions] = group.batch.converged_mask(in_group)
        for c, pos in gathered.fallback:
            conv[pos] = self.specs[c].agent.converged()
        return conv

    def _describe_run(self, run: int) -> Dict[str, float]:
        for group in self._groups:
            row = group.row_of.get(run)
            if row is not None:
                return dict(group.batch.describe_run(row))
        return dict(self.specs[run].agent.describe())

    # ------------------------------------------------------------------
    def run(
        self,
        initial_limits_w: Optional[np.ndarray] = None,
        max_epochs: int = 200,
        min_epochs: int = 3,
    ) -> ControllerBatchResult:
        """Execute every run until it converges or the budget runs out.

        Parameters match :meth:`Controller.run`; ``initial_limits_w`` may
        be ``None`` (TDP everywhere, the serial default), one ``(hosts,)``
        vector shared by all runs, or a per-run ``(C, hosts)`` matrix.
        """
        if max_epochs < 1:
            raise ValueError("max_epochs must be positive")
        runs, hosts = self.run_count, self.hosts
        if initial_limits_w is None:
            limits = np.full((runs, hosts), self.model.power_model.tdp_w)
        else:
            init = np.asarray(initial_limits_w, dtype=float)
            if init.shape == (hosts,):
                limits = np.tile(init, (runs, 1))
            elif init.shape == (runs, hosts):
                limits = init.copy()
            else:
                raise ValueError(
                    f"initial limits must have shape ({hosts},) or "
                    f"({runs}, {hosts}), got {init.shape}"
                )

        log: List[_EpochLog] = []
        clock = np.zeros(runs)
        epochs_run = np.zeros(runs, dtype=int)
        converged = np.zeros(runs, dtype=bool)
        active = np.arange(runs)
        gathered: Optional[_ActiveGather] = None
        registry = get_registry() if enabled() else None
        if registry is not None:
            registry.counter("runtime.controller.batch_runs").inc(runs)
        agent_names = ",".join(sorted({s.agent.name for s in self.specs}))
        with span("runtime.controller.batch_run", runs=runs, hosts=hosts,
                  agents=agent_names) as trace_sp, \
                ScopedTimer("runtime.controller.batch_run_s") as timer:
            for epoch in range(max_epochs):
                if gathered is None:
                    gathered = _ActiveGather(self, active)
                sample, clock_start = self._run_epoch_batch(
                    epoch, limits, active, gathered, clock
                )
                clock[active] = clock[active] + sample.epoch_time_s
                new_limits = self._adjust(sample, gathered, clock_start)
                limits[active] = new_limits
                log.append(
                    _EpochLog(epoch, active.copy(), sample, new_limits.copy())
                )
                epochs_run[active] += 1
                if registry is not None:
                    registry.gauge(
                        "runtime.controller.batch_active_runs"
                    ).set(float(active.size))
                if epoch + 1 >= min_epochs:
                    conv = self._converged(gathered, active.size)
                    if np.any(conv):
                        converged[active[conv]] = True
                        active = active[~conv]
                        gathered = None
                        if active.size == 0:
                            break
            # Serial controllers evaluate ``agent.converged()`` once more
            # after the loop; mirror that for runs that exhausted the
            # budget (for a min_epochs > max_epochs run this is the
            # *first* check).
            if active.size:
                if gathered is None:
                    gathered = _ActiveGather(self, active)
                converged[active] = self._converged(gathered, active.size)
            if trace_sp is not None:
                trace_sp.set_attribute(
                    "epochs_total", int(np.sum(epochs_run))
                )
                trace_sp.set_attribute("converged", int(np.sum(converged)))

        self._log = tuple(log)
        result = self._build_result(epochs_run, converged)
        if registry is not None:
            epochs_hist = registry.histogram("runtime.controller.epochs")
            for n in epochs_run.tolist():
                epochs_hist.observe(n)
            n_converged = int(np.sum(converged))
            if n_converged:
                registry.counter("runtime.controller.converged").inc(
                    n_converged
                )
            emit(
                "runtime.controller", "batch_complete",
                runs=runs,
                agents=",".join(
                    sorted({s.agent.name for s in self.specs})
                ),
                epochs_total=int(np.sum(epochs_run)),
                epochs_max=int(np.max(epochs_run)),
                converged=n_converged,
                wall_s=timer.elapsed_s,
            )
            for c, report in enumerate(result.reports):
                report.telemetry.update({
                    "batch_runs": float(runs),
                    "batch_wall_s": timer.elapsed_s,
                    "epochs": float(epochs_run[c]),
                    "converged": 1.0 if converged[c] else 0.0,
                })
        return result

    # ------------------------------------------------------------------
    def _build_result(
        self, epochs_run: np.ndarray, converged: np.ndarray
    ) -> ControllerBatchResult:
        """Scatter the epoch log into per-run reports (one pass)."""
        runs, hosts = self.run_count, self.hosts
        total_epochs = len(self._log)
        times = np.zeros((runs, total_epochs))
        energy = np.zeros((runs, total_epochs, hosts))
        freq = np.zeros((runs, total_epochs, hosts))
        final_limits = np.zeros((runs, hosts))
        for e, entry in enumerate(self._log):
            times[entry.rows, e] = entry.sample.epoch_time_s
            energy[entry.rows, e] = entry.sample.host_energy_j
            freq[entry.rows, e] = entry.sample.mean_freq_ghz
            final_limits[entry.rows] = entry.limits_applied_w
        reports = tuple(
            report_from_arrays(
                job_name=self.specs[c].job.name,
                agent=self.specs[c].agent.name,
                epoch_times_s=times[c, : epochs_run[c]],
                host_energy_j=energy[c, : epochs_run[c]],
                mean_freq_ghz=freq[c, : epochs_run[c]],
                final_limits_w=final_limits[c],
                metadata=self._describe_run(c),
            )
            for c in range(runs)
        )
        return ControllerBatchResult(
            reports=reports,
            epochs=epochs_run.copy(),
            converged=converged.copy(),
            _log=self._log,
            _final_limits_w=final_limits,
        )


def run_controller_batch(
    specs: Sequence[ControllerRunSpec],
    model: Optional[ExecutionModel] = None,
    initial_limits_w: Optional[np.ndarray] = None,
    max_epochs: int = 200,
    min_epochs: int = 3,
) -> ControllerBatchResult:
    """Build a :class:`ControllerBatch` and run it (convenience wrapper)."""
    return ControllerBatch(specs, model=model).run(
        initial_limits_w=initial_limits_w,
        max_epochs=max_epochs,
        min_epochs=min_epochs,
    )
