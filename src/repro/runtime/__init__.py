"""GEOPM-style job runtime: agents, reports, and the per-job controller.

The paper's application-level layer is GEOPM (ref. [4]): a per-job runtime
whose *agents* observe hardware telemetry each control epoch and adjust
RAPL limits.  The experiments use two of its stock agents plus the report
infrastructure:

* :class:`~repro.runtime.monitor.MonitorAgent` — telemetry only, never
  changes limits.  Its reports give the "maximum power each workload
  consumes under no power constraints" (paper §IV-B metric (a), Fig. 4).
* :class:`~repro.runtime.power_governor.PowerGovernorAgent` — enforces a
  uniform per-host cap from a job-level budget.
* :class:`~repro.runtime.power_balancer.PowerBalancerAgent` — the paper's
  §IV-B workhorse: lowers limits where they do not hurt the job's critical
  path and re-distributes the slack to hosts that do, yielding the
  "minimum power each workload needs" (metric (b), Fig. 5).

:class:`~repro.runtime.controller.Controller` drives an agent over control
epochs against the simulated platform, exactly where GEOPM's Controller
sits on real hardware, and emits :class:`~repro.runtime.reports.JobReport`
objects the resource-manager policies consume.
:class:`~repro.runtime.batch.ControllerBatch` advances many such runs in
lockstep as ``(runs, hosts)`` tensors, bit-identical per run to the serial
controller — the fast path for characterization grids and scenario sweeps.
"""

from repro.runtime.reports import HostReport, JobReport, report_from_arrays
from repro.runtime.agent import (
    Agent,
    AgentBatch,
    AgentRegistry,
    PlatformSample,
    SampleBatch,
)
from repro.runtime.monitor import MonitorAgent
from repro.runtime.power_governor import PowerGovernorAgent
from repro.runtime.power_balancer import PowerBalancerAgent, BalancerOptions
from repro.runtime.frequency_governor import (
    FrequencyGovernorAgent,
    FrequencyGovernorOptions,
)
from repro.runtime.controller import Controller, EpochResult
from repro.runtime.batch import (
    ControllerBatch,
    ControllerBatchResult,
    ControllerRunSpec,
    run_controller_batch,
)
from repro.runtime.trace import JobTrace, TraceRecord, TraceWriter, attach_tracer

__all__ = [
    "HostReport",
    "JobReport",
    "report_from_arrays",
    "Agent",
    "AgentBatch",
    "AgentRegistry",
    "PlatformSample",
    "SampleBatch",
    "MonitorAgent",
    "PowerGovernorAgent",
    "PowerBalancerAgent",
    "BalancerOptions",
    "FrequencyGovernorAgent",
    "FrequencyGovernorOptions",
    "Controller",
    "EpochResult",
    "ControllerBatch",
    "ControllerBatchResult",
    "ControllerRunSpec",
    "run_controller_batch",
    "JobTrace",
    "TraceRecord",
    "TraceWriter",
    "attach_tracer",
]
