"""The power balancer agent: GEOPM's critical-path power shifting.

Paper §II/§IV-B: "The power balancer agent reduces the power limit where it
does not impact performance, and redistributes that power where it can
improve performance, all during execution."  For a bulk-synchronous job the
performance signal is the epoch (iteration) time: only hosts on the
critical path determine it, so any host finishing early can be slowed —
its RAPL limit lowered — until its compute phase just meets the critical
path, with the freed budget offered to the hosts that *are* the critical
path.

The implementation is a model-free feedback loop, as on real hardware: the
agent never consults the simulator's power/performance model, only the
observed per-epoch host times and limits.  Each epoch it

1. measures each host's slack fraction against the epoch's critical path,
2. cuts limits on hosts with slack beyond a dead-band ``margin``,
   proportionally to their slack (gain-scheduled, floor-clamped),
3. pools the cut power plus any undistributed carry-over, and
4. grants the pool to near-critical hosts, weighted by their remaining
   headroom to TDP.

Convergence is declared when limits stop moving (relative step below
``tolerance``).  The converged *consumption* is the paper's metric (b) —
"the minimum power each workload needs" (Fig. 5) — which the
characterization layer cross-checks against the analytic inverse model in
:meth:`repro.sim.engine.ExecutionModel.required_power`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.agent import (
    Agent,
    AgentBatch,
    DEFAULT_REGISTRY,
    PlatformSample,
    SampleBatch,
)
from repro.telemetry import emit, enabled, get_registry
from repro.units import ensure_positive, ensure_fraction

__all__ = ["BalancerOptions", "PowerBalancerAgent"]


@dataclass(frozen=True)
class BalancerOptions:
    """Tuning of the balancer feedback loop.

    Attributes
    ----------
    gain:
        Fraction of the proportional correction applied per epoch.  Higher
        converges faster but can oscillate with noisy epoch times.
    margin:
        Dead-band around the critical path: hosts within ``margin`` of the
        epoch time are treated as critical and never cut.  This is the
        balancer's safety margin against cutting into the critical path
        itself.
    tolerance:
        Relative limit movement below which the loop declares convergence.
    min_limit_w / max_limit_w:
        Node-level RAPL bounds (Quartz: 136 W floor, 240 W TDP).
    harvest_fraction:
        How much of a host's apparent power slack the balancer is willing
        to harvest.  GEOPM's production loop is conservative — bounded
        steps, a safety margin around the critical path — and the paper's
        Fig. 5 shows waiting nodes settling roughly halfway between their
        unconstrained draw and the theoretical minimum; 0.5 reproduces
        that (see
        :data:`repro.characterization.mix_characterization.DEFAULT_HARVEST_FRACTION`).
        Set 1.0 for an idealised balancer.
    """

    gain: float = 0.5
    margin: float = 0.02
    tolerance: float = 1.0e-3
    min_limit_w: float = 136.0
    max_limit_w: float = 240.0
    harvest_fraction: float = 0.5

    def __post_init__(self) -> None:
        ensure_positive(self.gain, "gain")
        ensure_fraction(self.margin, "margin")
        ensure_positive(self.tolerance, "tolerance")
        ensure_positive(self.min_limit_w, "min_limit_w")
        if self.max_limit_w <= self.min_limit_w:
            raise ValueError("max_limit_w must exceed min_limit_w")
        if not 0.0 < self.harvest_fraction <= 1.0:
            raise ValueError("harvest_fraction must be in (0, 1]")


@DEFAULT_REGISTRY.register
class PowerBalancerAgent(Agent):
    """Shift power from slack hosts to critical-path hosts within a job.

    Parameters
    ----------
    job_budget_w:
        Total node-power budget for the job.  The sum of limits the agent
        programs never exceeds this budget; power it cannot place (all
        receivers at TDP) is retained in an internal pool and reported via
        :meth:`describe` as ``unallocated_w`` — the figure a coordinating
        resource manager would harvest.
    options:
        Feedback-loop tuning.
    """

    name = "power_balancer"

    def __init__(self, job_budget_w: float,
                 options: "BalancerOptions | None" = None) -> None:
        ensure_positive(job_budget_w, "job_budget_w")
        self.job_budget_w = float(job_budget_w)
        self.options = options if options is not None else BalancerOptions()
        self._limits: np.ndarray | None = None
        self._pool_w = 0.0
        self._last_step_w = np.inf
        self._cut_floor_w: np.ndarray | None = None
        self._steps = 0
        self._harvested_w = 0.0
        self._redistributed_w = 0.0
        self._convergence_recorded = False

    # ------------------------------------------------------------------
    def _initial_limits(self, hosts: int) -> np.ndarray:
        """Uniform split of the job budget, clamped to the settable range."""
        uniform = self.job_budget_w / hosts
        limits = np.full(hosts, uniform)
        clamped = np.clip(limits, self.options.min_limit_w, self.options.max_limit_w)
        # Budget that clamping released (or consumed) goes to the pool so
        # the invariant sum(limits) + pool == budget holds from epoch 0.
        self._pool_w = self.job_budget_w - float(np.sum(clamped))
        return clamped

    def adjust(self, sample: PlatformSample) -> np.ndarray:
        """One feedback step; returns the next epoch's node limits."""
        opts = self.options
        if self._limits is None:
            self._limits = self._initial_limits(sample.power_limit_w.size)
            # The first epoch's observed power anchors the per-host cut
            # floor: the balancer will not take more than harvest_fraction
            # of the distance from that draw to the RAPL floor.
            reference = np.asarray(sample.host_power_w, dtype=float)
            self._cut_floor_w = np.maximum(
                reference - opts.harvest_fraction * (reference - opts.min_limit_w),
                opts.min_limit_w,
            )
            return self._limits.copy()

        limits = self._limits
        times = np.asarray(sample.host_time_s, dtype=float)
        target = float(np.max(times))
        if target <= 0:
            return limits.copy()

        slack_frac = 1.0 - times / target

        # --- donors: hosts comfortably off the critical path ------------
        cut_floor = (
            self._cut_floor_w
            if self._cut_floor_w is not None
            else np.full_like(limits, opts.min_limit_w)
        )
        donors = slack_frac > opts.margin
        cut = np.zeros_like(limits)
        cut[donors] = opts.gain * slack_frac[donors] * (
            limits[donors] - cut_floor[donors]
        )
        cut = np.maximum(cut, 0.0)
        new_limits = np.maximum(limits - cut, cut_floor)
        cut = limits - new_limits
        # Entries go negative when the cut floor sits above the current
        # limit (the floor *raised* that host); only positive entries are
        # power actually harvested from donors.
        harvested = float(np.sum(np.maximum(cut, 0.0)))
        pool = self._pool_w + float(np.sum(cut))

        # --- receivers: near-critical hosts with headroom ---------------
        receivers = (slack_frac <= opts.margin) & (new_limits < opts.max_limit_w - 1e-9)
        grant_total = 0.0
        if pool > 0 and np.any(receivers):
            headroom = opts.max_limit_w - new_limits[receivers]
            grant_total = min(pool, float(np.sum(headroom)))
            grants = grant_total * headroom / float(np.sum(headroom))
            new_limits[receivers] += grants
            pool -= grant_total

        self._pool_w = pool
        self._last_step_w = float(np.max(np.abs(new_limits - limits)))
        self._limits = new_limits
        self._steps += 1
        self._harvested_w += harvested
        self._redistributed_w += grant_total
        if enabled():
            registry = get_registry()
            registry.counter("runtime.balancer.steps").inc()
            registry.counter("runtime.balancer.harvested_w").inc(harvested)
            registry.counter("runtime.balancer.redistributed_w").inc(grant_total)
        return new_limits.copy()

    def converged(self) -> bool:
        """Limits stopped moving (relative to the settable range width).

        The first positive answer also records the feedback loop's
        steps-to-converge and cumulative power moved into the telemetry
        registry (once per agent instance).
        """
        span = self.options.max_limit_w - self.options.min_limit_w
        is_converged = self._last_step_w < self.options.tolerance * span
        if is_converged and not self._convergence_recorded and enabled():
            self._convergence_recorded = True
            get_registry().histogram(
                "runtime.balancer.steps_to_converge"
            ).observe(self._steps)
            emit(
                "runtime.balancer", "converged",
                steps=self._steps,
                harvested_w=self._harvested_w,
                redistributed_w=self._redistributed_w,
                unallocated_w=self._pool_w,
            )
        return is_converged

    def describe(self):
        """Budget, pool, step size, and shifting totals for report
        metadata."""
        return {
            "job_budget_w": self.job_budget_w,
            "unallocated_w": self._pool_w,
            "last_step_w": self._last_step_w if np.isfinite(self._last_step_w) else -1.0,
            "steps": float(self._steps),
            "harvested_w": self._harvested_w,
            "redistributed_w": self._redistributed_w,
        }

    @classmethod
    def make_batch(cls, agents) -> "_PowerBalancerBatch | None":
        """Batch a group of balancers sharing one :class:`BalancerOptions`.

        Returns ``None`` (→ per-run fallback in the batched controller)
        when the group mixes options or contains an agent that has already
        stepped — the batch owns state from epoch 0, so a mid-flight agent
        cannot be adopted.
        """
        options = agents[0].options
        if any(a.options != options for a in agents[1:]):
            return None
        if any(a._limits is not None for a in agents):
            return None
        budgets = np.array([a.job_budget_w for a in agents], dtype=float)
        return _PowerBalancerBatch(budgets, options)


class _PowerBalancerBatch(AgentBatch):
    """Vectorised power balancer: G feedback loops stepped as tensors.

    Every elementwise expression below mirrors
    :meth:`PowerBalancerAgent.adjust` term-for-term (same operation
    order), so each row is bit-identical to its serial twin.  The one
    intentionally *serial* piece is the receivers grant step: NumPy's
    pairwise summation over a compressed ``headroom`` gather differs in
    the last ulp from any masked full-row reduction once a row has ≥ 8
    receivers, so that step loops over rows and reproduces the serial
    compressed sum exactly.
    """

    def __init__(self, budgets_w: np.ndarray, options: BalancerOptions) -> None:
        self.options = options
        self._budgets_w = np.asarray(budgets_w, dtype=float)
        g = self._budgets_w.size
        self._limits: np.ndarray | None = None   # (G, hosts)
        self._cut_floor_w: np.ndarray | None = None
        self._pool_w = np.zeros(g)
        self._last_step_w = np.full(g, np.inf)
        self._steps = np.zeros(g, dtype=np.int64)
        self._harvested_w = np.zeros(g)
        self._redistributed_w = np.zeros(g)
        self._convergence_recorded = np.zeros(g, dtype=bool)

    # ------------------------------------------------------------------
    def _initial_limits(self, rows: np.ndarray, hosts: int) -> np.ndarray:
        opts = self.options
        uniform = self._budgets_w[rows] / hosts
        limits = np.broadcast_to(uniform[:, None], (rows.size, hosts))
        clamped = np.clip(limits, opts.min_limit_w, opts.max_limit_w)
        self._pool_w[rows] = self._budgets_w[rows] - np.sum(clamped, axis=1)
        return np.ascontiguousarray(clamped)

    def adjust_batch(self, sample: SampleBatch, rows: np.ndarray) -> np.ndarray:
        opts = self.options
        if self._limits is None:
            hosts = sample.power_limit_w.shape[1]
            self._limits = self._initial_limits(rows, hosts)
            reference = np.asarray(sample.host_power_w, dtype=float)
            self._cut_floor_w = np.maximum(
                reference - opts.harvest_fraction * (reference - opts.min_limit_w),
                opts.min_limit_w,
            )
            return self._limits.copy()

        limits = self._limits[rows]
        cut_floor = self._cut_floor_w[rows]
        times = np.asarray(sample.host_time_s, dtype=float)
        target = np.max(times, axis=1)
        # Rows with a degenerate epoch keep their state untouched (the
        # serial agent early-returns before any update).
        stepped = target > 0
        safe_target = np.where(stepped, target, 1.0)

        slack_frac = 1.0 - times / safe_target[:, None]

        donors = slack_frac > opts.margin
        cut = np.where(
            donors, opts.gain * slack_frac * (limits - cut_floor), 0.0
        )
        cut = np.maximum(cut, 0.0)
        new_limits = np.maximum(limits - cut, cut_floor)
        cut = limits - new_limits
        harvested = np.sum(np.maximum(cut, 0.0), axis=1)
        pool = self._pool_w[rows] + np.sum(cut, axis=1)

        receivers = (slack_frac <= opts.margin) & (
            new_limits < opts.max_limit_w - 1e-9
        )
        grant_total = np.zeros(rows.size)
        for i in range(rows.size):
            if not stepped[i]:
                continue
            recv = receivers[i]
            if pool[i] > 0 and np.any(recv):
                # Compressed gather + sum, exactly as the serial agent —
                # see the class docstring for why this must not be a
                # masked vector reduction.
                headroom = opts.max_limit_w - new_limits[i, recv]
                grant = min(float(pool[i]), float(np.sum(headroom)))
                grants = grant * headroom / float(np.sum(headroom))
                new_limits[i, recv] += grants
                pool[i] -= grant
                grant_total[i] = grant

        out = np.where(stepped[:, None], new_limits, limits)
        step_w = np.max(np.abs(new_limits - limits), axis=1)

        upd = rows[stepped]
        self._pool_w[upd] = pool[stepped]
        self._last_step_w[upd] = step_w[stepped]
        self._limits[upd] = new_limits[stepped]
        self._steps[upd] += 1
        self._harvested_w[upd] += harvested[stepped]
        self._redistributed_w[upd] += grant_total[stepped]
        if enabled():
            registry = get_registry()
            registry.counter("runtime.balancer.steps").inc(int(np.sum(stepped)))
            registry.counter("runtime.balancer.harvested_w").inc(
                float(np.sum(harvested[stepped]))
            )
            registry.counter("runtime.balancer.redistributed_w").inc(
                float(np.sum(grant_total[stepped]))
            )
        return out

    def converged_mask(self, rows: np.ndarray) -> np.ndarray:
        opts = self.options
        span = opts.max_limit_w - opts.min_limit_w
        mask = self._last_step_w[rows] < opts.tolerance * span
        if enabled():
            fresh = rows[mask & ~self._convergence_recorded[rows]]
            if fresh.size:
                self._convergence_recorded[fresh] = True
                hist = get_registry().histogram(
                    "runtime.balancer.steps_to_converge"
                )
                for row in fresh.tolist():
                    hist.observe(int(self._steps[row]))
                    emit(
                        "runtime.balancer", "converged",
                        steps=int(self._steps[row]),
                        harvested_w=float(self._harvested_w[row]),
                        redistributed_w=float(self._redistributed_w[row]),
                        unallocated_w=float(self._pool_w[row]),
                    )
        return mask

    def describe_run(self, row: int):
        last_step = self._last_step_w[row]
        return {
            "job_budget_w": float(self._budgets_w[row]),
            "unallocated_w": float(self._pool_w[row]),
            "last_step_w": float(last_step) if np.isfinite(last_step) else -1.0,
            "steps": float(self._steps[row]),
            "harvested_w": float(self._harvested_w[row]),
            "redistributed_w": float(self._redistributed_w[row]),
        }
