"""Fixed-frequency agent: GEOPM's frequency-pinning plugin, emulated.

GEOPM ships a frequency-oriented agent family (``frequency_map``) that
holds cores at a requested operating frequency — sites use it for
run-to-run reproducibility studies and for energy sweeps.  The stack here
actuates through RAPL only, so the agent achieves a target frequency by
feedback on the power limit: each epoch it compares the achieved
frequency against the target and nudges the limit proportionally.

The agent is model-free like the balancer: it never consults the
simulator's power model, only observed (frequency, limit) pairs, and it
estimates the local W-per-GHz slope from consecutive epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.agent import Agent, DEFAULT_REGISTRY, PlatformSample
from repro.units import ensure_positive

__all__ = ["FrequencyGovernorOptions", "FrequencyGovernorAgent"]


@dataclass(frozen=True)
class FrequencyGovernorOptions:
    """Tuning of the frequency feedback loop."""

    gain: float = 0.8
    tolerance_ghz: float = 0.005
    min_limit_w: float = 136.0
    max_limit_w: float = 240.0
    #: Initial W-per-GHz slope estimate; refined online from observations.
    initial_slope_w_per_ghz: float = 120.0

    def __post_init__(self) -> None:
        ensure_positive(self.gain, "gain")
        ensure_positive(self.tolerance_ghz, "tolerance_ghz")
        ensure_positive(self.initial_slope_w_per_ghz, "initial_slope_w_per_ghz")
        if self.max_limit_w <= self.min_limit_w:
            raise ValueError("max_limit_w must exceed min_limit_w")


@DEFAULT_REGISTRY.register
class FrequencyGovernorAgent(Agent):
    """Hold every host at ``target_freq_ghz`` via RAPL feedback.

    Parameters
    ----------
    target_freq_ghz:
        The frequency to pin (must lie inside the DVFS band to be
        reachable; an unreachable target saturates at a RAPL bound and
        the agent reports non-convergence).
    options:
        Feedback tuning.
    """

    name = "frequency_governor"

    def __init__(self, target_freq_ghz: float,
                 options: "FrequencyGovernorOptions | None" = None) -> None:
        ensure_positive(target_freq_ghz, "target_freq_ghz")
        self.target_freq_ghz = float(target_freq_ghz)
        self.options = (options if options is not None
                        else FrequencyGovernorOptions())
        self._limits: np.ndarray | None = None
        self._prev_freq: np.ndarray | None = None
        self._prev_limits: np.ndarray | None = None
        self._slope: np.ndarray | None = None
        self._max_error_ghz = np.inf

    def adjust(self, sample: PlatformSample) -> np.ndarray:
        """One proportional step toward the target frequency."""
        opts = self.options
        freq = np.asarray(sample.mean_freq_ghz, dtype=float)
        if self._limits is None:
            n = freq.size
            self._limits = np.asarray(sample.power_limit_w, dtype=float).copy()
            self._slope = np.full(n, opts.initial_slope_w_per_ghz)
            self._prev_freq = freq.copy()
            self._prev_limits = self._limits.copy()

        # Refine the per-host W/GHz slope from the last actuation, where
        # both the limit and the frequency actually moved.
        dl = self._limits - self._prev_limits
        df = freq - self._prev_freq
        moved = (np.abs(df) > 1e-6) & (np.abs(dl) > 1e-6)
        self._slope[moved] = np.clip(np.abs(dl[moved] / df[moved]), 30.0, 400.0)

        error = self.target_freq_ghz - freq
        self._max_error_ghz = float(np.max(np.abs(error)))
        step = opts.gain * error * self._slope
        new_limits = np.clip(
            self._limits + step, opts.min_limit_w, opts.max_limit_w
        )
        self._prev_freq = freq.copy()
        self._prev_limits = self._limits
        self._limits = new_limits
        return new_limits.copy()

    def converged(self) -> bool:
        """All hosts within tolerance of the target, or pinned at a bound."""
        if self._limits is None:
            return False
        at_bound = (
            (self._limits <= self.options.min_limit_w + 1e-9)
            | (self._limits >= self.options.max_limit_w - 1e-9)
        )
        if bool(np.all(at_bound)) and self._max_error_ghz > self.options.tolerance_ghz:
            # Saturated without reaching the target: steady, not converged
            # onto the requested frequency — report convergence so the
            # controller stops, but expose the residual via describe().
            return True
        return self._max_error_ghz <= self.options.tolerance_ghz

    def describe(self):
        """Target and the residual tracking error."""
        return {
            "target_freq_ghz": self.target_freq_ghz,
            "max_error_ghz": (
                self._max_error_ghz if np.isfinite(self._max_error_ghz) else -1.0
            ),
        }
