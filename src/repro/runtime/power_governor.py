"""The power governor agent: uniform job-level cap enforcement.

GEOPM's ``power_governor`` divides a job power budget evenly across hosts
and holds it there.  It is the intra-job mechanism behind the paper's
``StaticCaps`` baseline and the initial state of every power-sharing
policy ("step 1: uniformly distribute the system power limit among hosts").
"""

from __future__ import annotations

import numpy as np

from repro.runtime.agent import (
    Agent,
    AgentBatch,
    DEFAULT_REGISTRY,
    PlatformSample,
    SampleBatch,
)
from repro.units import ensure_positive

__all__ = ["PowerGovernorAgent"]


@DEFAULT_REGISTRY.register
class PowerGovernorAgent(Agent):
    """Hold every host at ``job_budget_w / host_count``.

    Parameters
    ----------
    job_budget_w:
        Total node-power budget for the job (W).
    """

    name = "power_governor"

    def __init__(self, job_budget_w: float) -> None:
        ensure_positive(job_budget_w, "job_budget_w")
        self.job_budget_w = float(job_budget_w)

    def adjust(self, sample: PlatformSample) -> np.ndarray:
        """Uniform per-host limit; constant across epochs."""
        hosts = sample.power_limit_w.size
        return np.full(hosts, self.job_budget_w / hosts)

    def describe(self):
        """Report the governed budget."""
        return {"job_budget_w": self.job_budget_w}

    @classmethod
    def make_batch(cls, agents) -> "_PowerGovernorBatch":
        """Batch any group of governors (stateless uniform splits)."""
        return _PowerGovernorBatch(
            np.array([a.job_budget_w for a in agents], dtype=float)
        )


class _PowerGovernorBatch(AgentBatch):
    """Vectorised governor: every run's uniform split in one expression."""

    def __init__(self, budgets_w: np.ndarray) -> None:
        self._budgets_w = budgets_w

    def adjust_batch(self, sample: SampleBatch, rows: np.ndarray) -> np.ndarray:
        hosts = sample.power_limit_w.shape[1]
        uniform = self._budgets_w[rows] / hosts
        return np.broadcast_to(uniform[:, None], (rows.size, hosts)).copy()

    def converged_mask(self, rows: np.ndarray) -> np.ndarray:
        # Serial ``PowerGovernorAgent`` inherits the trivially-true
        # converged().
        return np.ones(rows.size, dtype=bool)

    def describe_run(self, row: int):
        return {"job_budget_w": float(self._budgets_w[row])}
