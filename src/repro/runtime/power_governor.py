"""The power governor agent: uniform job-level cap enforcement.

GEOPM's ``power_governor`` divides a job power budget evenly across hosts
and holds it there.  It is the intra-job mechanism behind the paper's
``StaticCaps`` baseline and the initial state of every power-sharing
policy ("step 1: uniformly distribute the system power limit among hosts").
"""

from __future__ import annotations

import numpy as np

from repro.runtime.agent import Agent, DEFAULT_REGISTRY, PlatformSample
from repro.units import ensure_positive

__all__ = ["PowerGovernorAgent"]


@DEFAULT_REGISTRY.register
class PowerGovernorAgent(Agent):
    """Hold every host at ``job_budget_w / host_count``.

    Parameters
    ----------
    job_budget_w:
        Total node-power budget for the job (W).
    """

    name = "power_governor"

    def __init__(self, job_budget_w: float) -> None:
        ensure_positive(job_budget_w, "job_budget_w")
        self.job_budget_w = float(job_budget_w)

    def adjust(self, sample: PlatformSample) -> np.ndarray:
        """Uniform per-host limit; constant across epochs."""
        hosts = sample.power_limit_w.size
        return np.full(hosts, self.job_budget_w / hosts)

    def describe(self):
        """Report the governed budget."""
        return {"job_budget_w": self.job_budget_w}
