"""Agent abstraction: GEOPM's plugin interface, reduced to its essentials.

GEOPM agents observe platform signals each control epoch and decide new
control values (RAPL limits here).  The simulator presents an epoch's
telemetry as a :class:`PlatformSample`; an :class:`Agent` returns the node
power limits to apply for the next epoch.  Agents are registered by name in
:class:`AgentRegistry`, mirroring GEOPM's plugin-loading behaviour the
paper leans on for portability ("they can be ported to other architectures
... by leveraging GEOPM's portable plugin infrastructure").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Type

import numpy as np

__all__ = ["PlatformSample", "SampleBatch", "Agent", "AgentBatch", "AgentRegistry"]


@dataclass(frozen=True)
class PlatformSample:
    """One control epoch's telemetry for a job's hosts.

    Attributes
    ----------
    epoch:
        Control-epoch index (one bulk-synchronous iteration here).
    host_time_s:
        Each host's compute-phase time this epoch.
    epoch_time_s:
        The job's iteration wall time (critical path + barrier).
    host_power_w:
        Each host's mean power over the epoch (compute + poll phases).
    power_limit_w:
        Node limits that were in force during the epoch.
    host_energy_j:
        Energy per host over the epoch.
    mean_freq_ghz:
        Mean achieved frequency per host over the epoch.
    """

    epoch: int
    host_time_s: np.ndarray
    epoch_time_s: float
    host_power_w: np.ndarray
    power_limit_w: np.ndarray
    host_energy_j: np.ndarray
    mean_freq_ghz: np.ndarray


@dataclass(frozen=True)
class SampleBatch:
    """One control epoch's telemetry for many runs, structure-of-arrays.

    The batched counterpart of :class:`PlatformSample`: every per-host
    array carries a leading *run* axis, so ``host_time_s[a]`` is run
    ``a``'s compute-phase times this epoch.  Row ``a`` is bit-identical to
    the :class:`PlatformSample` a serial controller would have produced
    for the same run (the contract of
    :class:`~repro.runtime.batch.ControllerBatch`).
    """

    epoch: int
    host_time_s: np.ndarray      # (A, hosts)
    epoch_time_s: np.ndarray     # (A,)
    host_power_w: np.ndarray     # (A, hosts)
    power_limit_w: np.ndarray    # (A, hosts)
    host_energy_j: np.ndarray    # (A, hosts)
    mean_freq_ghz: np.ndarray    # (A, hosts)

    @property
    def run_count(self) -> int:
        """Runs stacked in this sample."""
        return int(self.epoch_time_s.size)

    def sample_for(self, row: int) -> PlatformSample:
        """Materialise one run's :class:`PlatformSample` (fresh arrays)."""
        return PlatformSample(
            epoch=self.epoch,
            host_time_s=self.host_time_s[row].copy(),
            epoch_time_s=float(self.epoch_time_s[row]),
            host_power_w=self.host_power_w[row].copy(),
            power_limit_w=self.power_limit_w[row].copy(),
            host_energy_j=self.host_energy_j[row].copy(),
            mean_freq_ghz=self.mean_freq_ghz[row].copy(),
        )


class Agent(abc.ABC):
    """Base class for job-runtime agents.

    Subclasses implement :meth:`adjust`; the controller calls it once per
    epoch with fresh telemetry and programs the returned limits before the
    next epoch.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def adjust(self, sample: PlatformSample) -> np.ndarray:
        """Return node power limits (W) to apply for the next epoch."""

    def converged(self) -> bool:
        """Whether the agent's control loop has reached steady state.

        Agents with no dynamic behaviour are trivially converged; the
        balancer overrides this with its epsilon test.
        """
        return True

    def describe(self) -> Dict[str, float]:
        """Agent-specific scalars for the job report metadata."""
        return {}


class AgentBatch(abc.ABC):
    """Vectorised counterpart of :class:`Agent` for lockstep batched runs.

    A batch agent owns the control state of ``G`` member runs at once (one
    row per run) and must be *bit-identical* to stepping each member's
    serial :class:`Agent` on its own: for every active row, the returned
    limits, the convergence verdict, and :meth:`describe_run` equal what
    the serial agent would have produced after the same sample sequence.

    Agent classes opt in by providing a ``make_batch(agents)`` classmethod
    returning an :class:`AgentBatch` (or ``None`` when the group cannot be
    batched — e.g. heterogeneous options — in which case the controller
    falls back to per-run serial stepping).

    Converged runs freeze: the controller stops including their rows, so
    ``rows`` is always the still-active subset of ``range(G)`` and state
    for frozen rows must stay untouched — exactly like a serial controller
    that stopped calling :meth:`Agent.adjust`.
    """

    @abc.abstractmethod
    def adjust_batch(self, sample: SampleBatch, rows: np.ndarray) -> np.ndarray:
        """Return ``(A, hosts)`` next-epoch limits for the active rows.

        ``sample`` stacks the active runs' epoch telemetry; ``rows`` maps
        each of its ``A`` rows to the member index within the group.
        """

    @abc.abstractmethod
    def converged_mask(self, rows: np.ndarray) -> np.ndarray:
        """``(A,)`` boolean mask: which of the given rows have converged."""

    def describe_run(self, row: int) -> Dict[str, float]:
        """Member ``row``'s :meth:`Agent.describe` scalars."""
        return {}


class AgentRegistry:
    """Name -> agent-class registry (GEOPM plugin emulation)."""

    def __init__(self) -> None:
        self._agents: Dict[str, Type[Agent]] = {}

    def register(self, agent_cls: Type[Agent]) -> Type[Agent]:
        """Register an agent class under its ``name`` (decorator-friendly)."""
        name = agent_cls.name
        if not name or name == "abstract":
            raise ValueError(f"{agent_cls.__name__} must define a concrete name")
        if name in self._agents:
            raise ValueError(f"agent {name!r} already registered")
        self._agents[name] = agent_cls
        return agent_cls

    def create(self, name: str, /, **kwargs) -> Agent:
        """Instantiate a registered agent by name."""
        try:
            agent_cls = self._agents[name]
        except KeyError:
            raise KeyError(
                f"unknown agent {name!r}; registered: {sorted(self._agents)}"
            ) from None
        return agent_cls(**kwargs)

    def names(self):
        """Registered agent names, sorted."""
        return sorted(self._agents)


#: Process-wide default registry, analogous to GEOPM's plugin path.
DEFAULT_REGISTRY = AgentRegistry()
