"""Agent abstraction: GEOPM's plugin interface, reduced to its essentials.

GEOPM agents observe platform signals each control epoch and decide new
control values (RAPL limits here).  The simulator presents an epoch's
telemetry as a :class:`PlatformSample`; an :class:`Agent` returns the node
power limits to apply for the next epoch.  Agents are registered by name in
:class:`AgentRegistry`, mirroring GEOPM's plugin-loading behaviour the
paper leans on for portability ("they can be ported to other architectures
... by leveraging GEOPM's portable plugin infrastructure").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Type

import numpy as np

__all__ = ["PlatformSample", "Agent", "AgentRegistry"]


@dataclass(frozen=True)
class PlatformSample:
    """One control epoch's telemetry for a job's hosts.

    Attributes
    ----------
    epoch:
        Control-epoch index (one bulk-synchronous iteration here).
    host_time_s:
        Each host's compute-phase time this epoch.
    epoch_time_s:
        The job's iteration wall time (critical path + barrier).
    host_power_w:
        Each host's mean power over the epoch (compute + poll phases).
    power_limit_w:
        Node limits that were in force during the epoch.
    host_energy_j:
        Energy per host over the epoch.
    mean_freq_ghz:
        Mean achieved frequency per host over the epoch.
    """

    epoch: int
    host_time_s: np.ndarray
    epoch_time_s: float
    host_power_w: np.ndarray
    power_limit_w: np.ndarray
    host_energy_j: np.ndarray
    mean_freq_ghz: np.ndarray


class Agent(abc.ABC):
    """Base class for job-runtime agents.

    Subclasses implement :meth:`adjust`; the controller calls it once per
    epoch with fresh telemetry and programs the returned limits before the
    next epoch.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def adjust(self, sample: PlatformSample) -> np.ndarray:
        """Return node power limits (W) to apply for the next epoch."""

    def converged(self) -> bool:
        """Whether the agent's control loop has reached steady state.

        Agents with no dynamic behaviour are trivially converged; the
        balancer overrides this with its epsilon test.
        """
        return True

    def describe(self) -> Dict[str, float]:
        """Agent-specific scalars for the job report metadata."""
        return {}


class AgentRegistry:
    """Name -> agent-class registry (GEOPM plugin emulation)."""

    def __init__(self) -> None:
        self._agents: Dict[str, Type[Agent]] = {}

    def register(self, agent_cls: Type[Agent]) -> Type[Agent]:
        """Register an agent class under its ``name`` (decorator-friendly)."""
        name = agent_cls.name
        if not name or name == "abstract":
            raise ValueError(f"{agent_cls.__name__} must define a concrete name")
        if name in self._agents:
            raise ValueError(f"agent {name!r} already registered")
        self._agents[name] = agent_cls
        return agent_cls

    def create(self, name: str, /, **kwargs) -> Agent:
        """Instantiate a registered agent by name."""
        try:
            agent_cls = self._agents[name]
        except KeyError:
            raise KeyError(
                f"unknown agent {name!r}; registered: {sorted(self._agents)}"
            ) from None
        return agent_cls(**kwargs)

    def names(self):
        """Registered agent names, sorted."""
        return sorted(self._agents)


#: Process-wide default registry, analogous to GEOPM's plugin path.
DEFAULT_REGISTRY = AgentRegistry()
