"""GEOPM-style traces: per-epoch telemetry records.

Alongside its end-of-job report, GEOPM writes a *trace* — one row per
control epoch per host with the signals the agent sampled.  Traces are
what operators use to debug a balancer that won't converge and what
papers plot time series from.  :class:`TraceWriter` collects
:class:`~repro.runtime.agent.PlatformSample` objects from a controller
run into a columnar trace with CSV export, and :func:`attach_tracer`
wires one into a controller non-invasively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.runtime.agent import PlatformSample

__all__ = ["TraceRecord", "JobTrace", "TraceWriter", "attach_tracer"]

#: Columns of a trace row, in GEOPM's naming spirit.
TRACE_COLUMNS = (
    "epoch",
    "host",
    "epoch_time_s",
    "host_time_s",
    "power_w",
    "power_limit_w",
    "energy_j",
    "frequency_ghz",
)


@dataclass(frozen=True)
class TraceRecord:
    """One host's telemetry for one epoch."""

    epoch: int
    host: int
    epoch_time_s: float
    host_time_s: float
    power_w: float
    power_limit_w: float
    energy_j: float
    frequency_ghz: float

    def row(self) -> Dict[str, float]:
        """Flat dict in :data:`TRACE_COLUMNS` order."""
        return {
            "epoch": self.epoch,
            "host": self.host,
            "epoch_time_s": self.epoch_time_s,
            "host_time_s": self.host_time_s,
            "power_w": self.power_w,
            "power_limit_w": self.power_limit_w,
            "energy_j": self.energy_j,
            "frequency_ghz": self.frequency_ghz,
        }


@dataclass
class JobTrace:
    """A complete trace: all epochs of all hosts of one job."""

    job_name: str
    records: List[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def epochs(self) -> int:
        """Number of distinct epochs recorded."""
        return len({r.epoch for r in self.records})

    @property
    def hosts(self) -> int:
        """Number of distinct hosts recorded."""
        return len({r.host for r in self.records})

    def column(self, name: str, host: Optional[int] = None) -> np.ndarray:
        """One column as an array, optionally filtered to a single host.

        Rows are ordered by (epoch, host), so a single-host column is an
        epoch-ordered time series.
        """
        if name not in TRACE_COLUMNS:
            raise KeyError(f"unknown trace column {name!r}; have {TRACE_COLUMNS}")
        rows = (
            self.records
            if host is None
            else [r for r in self.records if r.host == host]
        )
        return np.array([getattr(r, name) for r in rows], dtype=float)

    def limit_history(self) -> np.ndarray:
        """Power limits as an (epochs, hosts) matrix — the balancer's
        convergence picture."""
        epochs = sorted({r.epoch for r in self.records})
        hosts = sorted({r.host for r in self.records})
        out = np.full((len(epochs), len(hosts)), np.nan)
        epoch_index = {e: i for i, e in enumerate(epochs)}
        host_index = {h: j for j, h in enumerate(hosts)}
        for r in self.records:
            out[epoch_index[r.epoch], host_index[r.host]] = r.power_limit_w
        return out

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace as CSV; returns the path written."""
        from repro.analysis.export import write_csv

        return write_csv([r.row() for r in self.records], path)


class TraceWriter:
    """Collects platform samples into a :class:`JobTrace`.

    Call :meth:`record` once per epoch with the sample the controller
    produced; hosts are numbered by array position.
    """

    def __init__(self, job_name: str) -> None:
        self.trace = JobTrace(job_name=job_name)

    def record(self, sample: PlatformSample) -> None:
        """Append one epoch's telemetry for every host."""
        n = sample.host_time_s.size
        for host in range(n):
            self.trace.records.append(
                TraceRecord(
                    epoch=sample.epoch,
                    host=host,
                    epoch_time_s=float(sample.epoch_time_s),
                    host_time_s=float(sample.host_time_s[host]),
                    power_w=float(sample.host_power_w[host]),
                    power_limit_w=float(sample.power_limit_w[host]),
                    energy_j=float(sample.host_energy_j[host]),
                    frequency_ghz=float(sample.mean_freq_ghz[host]),
                )
            )


def attach_tracer(controller) -> TraceWriter:
    """Attach a tracer to a controller without touching its agent.

    Wraps the controller's ``_run_epoch`` so every sample is recorded
    before the agent sees it.  Returns the writer; read
    ``writer.trace`` after :meth:`Controller.run`.
    """
    writer = TraceWriter(job_name=controller.job.name)
    original = controller._run_epoch

    def traced(epoch, limits_w):
        sample = original(epoch, limits_w)
        writer.record(sample)
        return sample

    controller._run_epoch = traced
    return writer
