"""GEOPM-style traces: per-epoch telemetry records.

Alongside its end-of-job report, GEOPM writes a *trace* — one row per
control epoch per host with the signals the agent sampled.  Traces are
what operators use to debug a balancer that won't converge and what
papers plot time series from.  :class:`TraceWriter` collects
:class:`~repro.runtime.agent.PlatformSample` objects from a controller
run into a columnar trace with CSV export, and :func:`attach_tracer`
wires one into a controller non-invasively.

Traces ride the unified telemetry pipeline: :meth:`TraceWriter.record`
*publishes* each sample as a ``runtime.trace`` event on an
:class:`~repro.telemetry.events.EventBus` (the global bus by default)
and builds its :class:`JobTrace` from a subscription to those same
events — so any other subscriber (a live dashboard, the JSONL event
log) sees exactly what the trace file will contain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.runtime.agent import PlatformSample
from repro.telemetry import Event, EventBus, get_bus

__all__ = ["TraceRecord", "JobTrace", "TraceWriter", "attach_tracer"]

#: Columns of a trace row, in GEOPM's naming spirit.
TRACE_COLUMNS = (
    "epoch",
    "host",
    "epoch_time_s",
    "host_time_s",
    "power_w",
    "power_limit_w",
    "energy_j",
    "frequency_ghz",
)


@dataclass(frozen=True)
class TraceRecord:
    """One host's telemetry for one epoch."""

    epoch: int
    host: int
    epoch_time_s: float
    host_time_s: float
    power_w: float
    power_limit_w: float
    energy_j: float
    frequency_ghz: float

    def row(self) -> Dict[str, float]:
        """Flat dict in :data:`TRACE_COLUMNS` order."""
        return {
            "epoch": self.epoch,
            "host": self.host,
            "epoch_time_s": self.epoch_time_s,
            "host_time_s": self.host_time_s,
            "power_w": self.power_w,
            "power_limit_w": self.power_limit_w,
            "energy_j": self.energy_j,
            "frequency_ghz": self.frequency_ghz,
        }


@dataclass
class JobTrace:
    """A complete trace: all epochs of all hosts of one job."""

    job_name: str
    records: List[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def epochs(self) -> int:
        """Number of distinct epochs recorded."""
        return len({r.epoch for r in self.records})

    @property
    def hosts(self) -> int:
        """Number of distinct hosts recorded."""
        return len({r.host for r in self.records})

    def column(self, name: str, host: Optional[int] = None) -> np.ndarray:
        """One column as an array, optionally filtered to a single host.

        Rows are ordered by (epoch, host), so a single-host column is an
        epoch-ordered time series.
        """
        if name not in TRACE_COLUMNS:
            raise KeyError(f"unknown trace column {name!r}; have {TRACE_COLUMNS}")
        rows = (
            self.records
            if host is None
            else [r for r in self.records if r.host == host]
        )
        return np.array([getattr(r, name) for r in rows], dtype=float)

    def limit_history(self) -> np.ndarray:
        """Power limits as an (epochs, hosts) matrix — the balancer's
        convergence picture."""
        epochs = sorted({r.epoch for r in self.records})
        hosts = sorted({r.host for r in self.records})
        out = np.full((len(epochs), len(hosts)), np.nan)
        epoch_index = {e: i for i, e in enumerate(epochs)}
        host_index = {h: j for j, h in enumerate(hosts)}
        for r in self.records:
            out[epoch_index[r.epoch], host_index[r.host]] = r.power_limit_w
        return out

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the trace as CSV; returns the path written.

        An empty trace (a zero-epoch run) still produces a well-formed
        file: the header row alone, so downstream CSV readers see the
        schema instead of a zero-byte file.
        """
        from repro.analysis.export import write_csv

        if not self.records:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(",".join(TRACE_COLUMNS) + "\r\n", encoding="utf-8")
            return path
        return write_csv([r.row() for r in self.records], path)


class TraceWriter:
    """Collects platform samples into a :class:`JobTrace` via the bus.

    Call :meth:`record` once per epoch with the sample the controller
    produced; hosts are numbered by array position.  Each call publishes
    one ``runtime.trace`` / ``epoch_sample`` event carrying the per-host
    columns; the writer's own subscription turns those events into
    :class:`TraceRecord` rows, so traces and the event log share one
    pipeline.  Publishing is unconditional — an explicitly attached
    tracer is a request for data, not subject to the global telemetry
    switch.

    Parameters
    ----------
    job_name:
        Job the trace belongs to (filters this writer's subscription,
        so concurrent writers on a shared bus do not cross-collect).
    bus:
        Event bus to publish on; defaults to the global telemetry bus.
    """

    def __init__(self, job_name: str, bus: Optional[EventBus] = None) -> None:
        self.trace = JobTrace(job_name=job_name)
        self.bus = bus if bus is not None else get_bus()
        self._token: Optional[int] = self.bus.subscribe(
            self._on_event, kinds=["epoch_sample"], sources=["runtime.trace"]
        )

    def record(self, sample: PlatformSample) -> None:
        """Publish one epoch's telemetry (every host) as a trace event."""
        self.bus.publish(
            "runtime.trace", "epoch_sample",
            job=self.trace.job_name,
            epoch=int(sample.epoch),
            epoch_time_s=float(sample.epoch_time_s),
            host_time_s=[float(v) for v in sample.host_time_s],
            power_w=[float(v) for v in sample.host_power_w],
            power_limit_w=[float(v) for v in sample.power_limit_w],
            energy_j=[float(v) for v in sample.host_energy_j],
            frequency_ghz=[float(v) for v in sample.mean_freq_ghz],
        )

    def _on_event(self, event: Event) -> None:
        """Expand one epoch_sample event into per-host trace rows."""
        payload = event.payload
        if payload.get("job") != self.trace.job_name:
            return
        for host, host_time in enumerate(payload["host_time_s"]):
            self.trace.records.append(
                TraceRecord(
                    epoch=payload["epoch"],
                    host=host,
                    epoch_time_s=payload["epoch_time_s"],
                    host_time_s=host_time,
                    power_w=payload["power_w"][host],
                    power_limit_w=payload["power_limit_w"][host],
                    energy_j=payload["energy_j"][host],
                    frequency_ghz=payload["frequency_ghz"][host],
                )
            )

    def close(self) -> None:
        """Detach from the bus (the collected trace stays readable)."""
        if self._token is not None:
            self.bus.unsubscribe(self._token)
            self._token = None


def attach_tracer(controller) -> TraceWriter:
    """Attach a tracer to a controller without touching its agent.

    Wraps the controller's ``_run_epoch`` so every sample is recorded
    before the agent sees it.  Returns the writer; read
    ``writer.trace`` after :meth:`Controller.run`.
    """
    writer = TraceWriter(job_name=controller.job.name)
    original = controller._run_epoch

    def traced(epoch, limits_w):
        sample = original(epoch, limits_w)
        writer.record(sample)
        return sample

    controller._run_epoch = traced
    return writer
