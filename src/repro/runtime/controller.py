"""The runtime controller: drives an agent over a job's control epochs.

GEOPM's Controller sits inside the job, samples platform telemetry each
epoch (one bulk-synchronous iteration of the synthetic kernel), hands the
sample to the agent, and programs the limits the agent returns.  This
module does exactly that against the simulated platform, producing the
:class:`~repro.runtime.reports.JobReport` that the characterization layer
and the resource-manager policies consume.

The controller runs a *single job* — the multi-job grid runs go through
the vectorised :func:`repro.sim.execution.simulate_mix` path instead; the
controller exists for characterization runs and for validating that the
balancer's feedback loop converges to the analytic steady state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.runtime.agent import Agent, PlatformSample
from repro.runtime.reports import JobReport, report_from_arrays
from repro.sim.engine import ExecutionModel
from repro.telemetry import ScopedTimer, emit, enabled, get_registry, span
from repro.workload.job import Job, WorkloadMix

__all__ = ["EpochResult", "Controller"]


@dataclass(frozen=True)
class EpochResult:
    """Telemetry of one simulated control epoch."""

    epoch: int
    sample: PlatformSample
    limits_applied_w: np.ndarray


class Controller:
    """Run one job under an agent until convergence or an epoch budget.

    Parameters
    ----------
    job:
        The job to execute.
    efficiencies:
        Per-host variation multipliers (length ``job.node_count``).
    agent:
        The runtime agent making power decisions.
    model:
        Physics bundle (defaults to the Quartz node model).
    noise_std:
        Relative lognormal noise on per-epoch compute times.  The
        characterization pipeline uses 0 for deterministic steady states;
        convergence tests use small positive values.
    seed:
        RNG seed for epoch noise.
    fault_injector:
        Optional :class:`~repro.faults.injection.RuntimeFaultInjector`
        (duck-typed so this module never imports :mod:`repro.faults`).
        When set and active, each epoch the injector filters the limits
        the agent requested (actuator faults), raises the compute-noise
        sigma during bursts, and corrupts the sample the *agent* sees —
        ``history`` and the job report keep the truthful physics.  A
        ``None`` or inactive injector leaves the fault-free code path
        bit-identical.
    """

    def __init__(
        self,
        job: Job,
        efficiencies: np.ndarray,
        agent: Agent,
        model: Optional[ExecutionModel] = None,
        noise_std: float = 0.0,
        seed: int = 0,
        barrier_overhead_s: float = 5.0e-4,
        fault_injector=None,
    ) -> None:
        eff = np.asarray(efficiencies, dtype=float)
        if eff.shape != (job.node_count,):
            raise ValueError(
                f"efficiencies must have shape ({job.node_count},), got {eff.shape}"
            )
        self.job = job
        self.efficiencies = eff
        self.agent = agent
        self.model = model if model is not None else ExecutionModel()
        self.noise_std = float(noise_std)
        self.barrier_overhead_s = float(barrier_overhead_s)
        self._rng = np.random.default_rng(seed)
        self.fault_injector = fault_injector
        self._clock_s = 0.0
        # A single-job mix gives the controller the same flattened layout
        # the vectorised engine uses.
        self._layout = WorkloadMix(name=job.name, jobs=(job,)).layout()
        self.history: List[EpochResult] = []

    @property
    def _injecting(self) -> bool:
        return self.fault_injector is not None and self.fault_injector.active

    # ------------------------------------------------------------------
    def _run_epoch(self, epoch: int, limits_w: np.ndarray) -> PlatformSample:
        """Simulate one bulk-synchronous iteration under ``limits_w``."""
        layout = self._layout
        sigma = self.noise_std
        if self._injecting:
            limits_w = self.fault_injector.filter_limits(limits_w, self._clock_s)
            sigma = self.fault_injector.noise_sigma(sigma, self._clock_s)
        caps = self.model.power_model.clamp_cap(limits_w)
        freq = self.model.frequencies(caps, layout, self.efficiencies)
        t = self.model.compute_time(freq, layout)
        if sigma > 0:
            t = t * self._rng.lognormal(0.0, sigma, size=t.shape)
        epoch_time = float(np.max(t)) + self.barrier_overhead_s
        p_compute = self.model.power_model.power_at_freq(
            freq, layout.kappa, self.efficiencies
        )
        p_poll = self.model.poll_power(caps, layout, self.efficiencies)
        slack = np.maximum(epoch_time - t, 0.0)
        energy = p_compute * t + p_poll * slack
        mean_power = energy / epoch_time
        return PlatformSample(
            epoch=epoch,
            host_time_s=t,
            epoch_time_s=epoch_time,
            host_power_w=mean_power,
            power_limit_w=caps,
            host_energy_j=energy,
            mean_freq_ghz=freq,
        )

    def run(
        self,
        initial_limits_w: Optional[np.ndarray] = None,
        max_epochs: int = 200,
        min_epochs: int = 3,
    ) -> JobReport:
        """Execute epochs until the agent converges (or the budget runs out).

        Returns the GEOPM-style job report aggregated over all epochs run.
        """
        if max_epochs < 1:
            raise ValueError("max_epochs must be positive")
        n = self.job.node_count
        if initial_limits_w is None:
            limits = np.full(n, self.model.power_model.tdp_w)
        else:
            limits = np.asarray(initial_limits_w, dtype=float)
            if limits.shape != (n,):
                raise ValueError(f"initial limits must have shape ({n},)")

        self.history.clear()
        self._clock_s = 0.0
        with span("runtime.controller.run", job=self.job.name,
                  agent=self.agent.name, hosts=n,
                  injecting=self._injecting) as trace_sp, \
                ScopedTimer("runtime.controller.run_s") as timer:
            for epoch in range(max_epochs):
                epoch_start_s = self._clock_s
                sample = self._run_epoch(epoch, limits)
                self._clock_s += sample.epoch_time_s
                observed = sample
                if self._injecting:
                    # The agent steers on the corrupted view; history and
                    # the report keep the truthful physics sample.
                    observed = self.fault_injector.corrupt_sample(
                        sample, epoch_start_s
                    )
                limits = self.agent.adjust(observed)
                self.history.append(EpochResult(epoch, sample, limits.copy()))
                if epoch + 1 >= min_epochs and self.agent.converged():
                    break
            if trace_sp is not None:
                trace_sp.set_attribute("epochs", len(self.history))
                trace_sp.set_attribute("converged", self.agent.converged())
        converged = self.agent.converged()
        report = self._build_report()
        if enabled():
            registry = get_registry()
            registry.counter("runtime.controller.runs").inc()
            registry.histogram("runtime.controller.epochs").observe(
                len(self.history)
            )
            if converged:
                registry.counter("runtime.controller.converged").inc()
            emit(
                "runtime.controller", "run_complete",
                job=self.job.name, agent=self.agent.name,
                epochs=len(self.history), converged=converged,
                wall_s=timer.elapsed_s,
            )
            report.telemetry.update({
                "run_wall_s": timer.elapsed_s,
                "epochs": float(len(self.history)),
                "epoch_wall_s_mean": timer.elapsed_s / len(self.history),
                "converged": 1.0 if converged else 0.0,
            })
        return report

    # ------------------------------------------------------------------
    def steady_state_sample(self) -> PlatformSample:
        """Telemetry of the final epoch (the converged operating point)."""
        if not self.history:
            raise RuntimeError("controller has not run")
        return self.history[-1].sample

    def final_limits_w(self) -> np.ndarray:
        """Limits in force after the final epoch."""
        if not self.history:
            raise RuntimeError("controller has not run")
        return self.history[-1].limits_applied_w.copy()

    def _build_report(self) -> JobReport:
        # One pass over the history stacking the per-epoch arrays; the
        # reductions (and the total-time sum the figure of merit reuses)
        # happen once in :func:`report_from_arrays` instead of the former
        # per-record accumulation loop plus a per-host ``float()`` loop.
        samples = [record.sample for record in self.history]
        return report_from_arrays(
            job_name=self.job.name,
            agent=self.agent.name,
            epoch_times_s=np.array([s.epoch_time_s for s in samples]),
            host_energy_j=np.stack([s.host_energy_j for s in samples]),
            mean_freq_ghz=np.stack([s.mean_freq_ghz for s in samples]),
            final_limits_w=self.history[-1].limits_applied_w,
            metadata=dict(self.agent.describe()),
        )
