"""GEOPM-style reports: the interface between runtime and resource manager.

On the real system, GEOPM writes a per-job report summarising every host's
energy, runtime, average power, and achieved frequency; the paper's
policies are computed *from those reports* ("The power is removed from and
added to jobs based on the observed ... power usage (obtained from GEOPM
reports)").  This module defines the same artefact, so the policy layer
never reaches into the simulator directly — it sees exactly what a
production resource manager would see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = ["HostReport", "JobReport", "report_from_arrays"]


@dataclass(frozen=True)
class HostReport:
    """Per-host section of a GEOPM report.

    Attributes
    ----------
    host_id:
        Host index within the job.
    runtime_s:
        Wall time the host spent in the job.
    energy_j:
        Package energy consumed over that time.
    mean_power_w:
        ``energy / runtime``; recorded explicitly because it is the
        quantity every policy in the paper consumes.
    mean_freq_ghz:
        Average achieved core frequency.
    power_limit_w:
        The RAPL node limit in force at report time.
    epochs:
        Control epochs observed (iterations, for the synthetic kernel).
    """

    host_id: int
    runtime_s: float
    energy_j: float
    mean_power_w: float
    mean_freq_ghz: float
    power_limit_w: float
    epochs: int

    def __post_init__(self) -> None:
        if self.runtime_s < 0 or self.energy_j < 0:
            raise ValueError("runtime and energy must be non-negative")


@dataclass(frozen=True)
class JobReport:
    """A complete GEOPM report for one job execution.

    The array accessors return host-ordered NumPy views so policy code can
    stay vectorised.
    """

    job_name: str
    agent: str
    hosts: Tuple[HostReport, ...]
    figure_of_merit: float = 0.0
    metadata: Dict[str, float] = field(default_factory=dict)
    #: Telemetry summary of the run that produced the report (controller
    #: wall time, epochs, convergence flag, ...), rendered as its own
    #: report section.  Empty when the producer recorded none.
    telemetry: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.hosts:
            raise ValueError("a job report needs at least one host")
        ids = [h.host_id for h in self.hosts]
        if ids != sorted(set(ids)):
            raise ValueError("host reports must be unique and host-id ordered")

    # ------------------------------------------------------------------
    @property
    def host_count(self) -> int:
        """Hosts covered by the report."""
        return len(self.hosts)

    def mean_power_w(self) -> np.ndarray:
        """Per-host mean power (the policies' primary input)."""
        return np.array([h.mean_power_w for h in self.hosts])

    def power_limits_w(self) -> np.ndarray:
        """Per-host RAPL limits in force."""
        return np.array([h.power_limit_w for h in self.hosts])

    def energy_j(self) -> np.ndarray:
        """Per-host energy."""
        return np.array([h.energy_j for h in self.hosts])

    def runtime_s(self) -> np.ndarray:
        """Per-host runtime."""
        return np.array([h.runtime_s for h in self.hosts])

    def mean_freq_ghz(self) -> np.ndarray:
        """Per-host mean achieved frequency."""
        return np.array([h.mean_freq_ghz for h in self.hosts])

    def total_energy_j(self) -> float:
        """Job energy."""
        return float(np.sum(self.energy_j()))

    def max_host_power_w(self) -> float:
        """Most power-hungry host's mean power.

        The ``Precharacterized`` policy submits jobs with exactly this cap
        and ``StaticCaps`` uses it as the per-job clip level.
        """
        return float(np.max(self.mean_power_w()))

    def summary(self) -> Dict[str, float]:
        """Scalar roll-up for logs and tables."""
        power = self.mean_power_w()
        return {
            "hosts": float(self.host_count),
            "total_energy_j": self.total_energy_j(),
            "max_runtime_s": float(np.max(self.runtime_s())),
            "mean_power_w": float(np.mean(power)),
            "max_power_w": float(np.max(power)),
            "min_power_w": float(np.min(power)),
        }

    def to_geopm_format(self) -> str:
        """Render the report in GEOPM's report-file style.

        GEOPM writes per-job YAML-like reports with a header block and a
        ``Hosts:`` section carrying per-host totals; downstream site
        tooling (and this paper's characterization pipeline) parses that
        layout.  The emitter covers the fields this stack produces.
        """
        lines = [
            "##### geopm-style report #####",
            f"Job Name: {self.job_name}",
            f"Agent: {self.agent}",
            f"Figure of Merit: {self.figure_of_merit:.6f}",
        ]
        if self.metadata:
            lines.append("Policy:")
            for key in sorted(self.metadata):
                lines.append(f"  {key}: {self.metadata[key]:.6f}")
        if self.telemetry:
            lines.append("Telemetry:")
            for key in sorted(self.telemetry):
                lines.append(f"  {key}: {self.telemetry[key]:.6f}")
        lines.append("Hosts:")
        for host in self.hosts:
            lines.extend(
                [
                    f"  host-{host.host_id}:",
                    f"    runtime (s): {host.runtime_s:.6f}",
                    f"    package-energy (J): {host.energy_j:.6f}",
                    f"    power (W): {host.mean_power_w:.6f}",
                    f"    frequency (GHz): {host.mean_freq_ghz:.6f}",
                    f"    power-limit (W): {host.power_limit_w:.6f}",
                    f"    epoch-count: {host.epochs}",
                ]
            )
        return "\n".join(lines) + "\n"


def report_from_arrays(
    job_name: str,
    agent: str,
    epoch_times_s: np.ndarray,
    host_energy_j: np.ndarray,
    mean_freq_ghz: np.ndarray,
    final_limits_w: np.ndarray,
    metadata: Dict[str, float],
) -> JobReport:
    """Build a :class:`JobReport` from stacked per-epoch history arrays.

    This is the one report construction both the serial
    :class:`~repro.runtime.controller.Controller` and the batched
    :class:`~repro.runtime.batch.ControllerBatch` go through, so a batched
    run's report is bit-identical to its serial twin by construction: the
    caller hands the same ``(E,)`` epoch times and ``(E, hosts)`` energy /
    frequency stacks, and every reduction below happens in one fixed order.

    Parameters
    ----------
    epoch_times_s:
        Per-epoch wall times, shape ``(E,)``.
    host_energy_j / mean_freq_ghz:
        Per-epoch per-host samples, shape ``(E, hosts)``.
    final_limits_w:
        Limits in force after the final epoch, shape ``(hosts,)``.
    metadata:
        The agent's :meth:`~repro.runtime.agent.Agent.describe` scalars.
    """
    epoch_times = np.asarray(epoch_times_s, dtype=float)
    energy_eh = np.asarray(host_energy_j, dtype=float)
    freq_eh = np.asarray(mean_freq_ghz, dtype=float)
    epochs = int(epoch_times.size)
    if epochs == 0:
        raise ValueError("a report needs at least one epoch")
    total_time = float(np.sum(epoch_times))
    energy = np.sum(energy_eh, axis=0)
    freq_sum = np.sum(freq_eh, axis=0)
    mean_power = energy / total_time if total_time else np.zeros_like(energy)
    mean_freq = freq_sum / epochs
    hosts = tuple(
        HostReport(
            host_id=i,
            runtime_s=total_time,
            energy_j=e,
            mean_power_w=p,
            mean_freq_ghz=f,
            power_limit_w=limit,
            epochs=epochs,
        )
        for i, (e, p, f, limit) in enumerate(
            zip(energy.tolist(), mean_power.tolist(), mean_freq.tolist(),
                np.asarray(final_limits_w, dtype=float).tolist())
        )
    )
    return JobReport(
        job_name=job_name,
        agent=agent,
        hosts=hosts,
        figure_of_merit=total_time / epochs,
        metadata=metadata,
    )
