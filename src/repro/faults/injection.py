"""Runtime-layer fault injection: the controller's view of a schedule.

The :class:`RuntimeFaultInjector` adapts a :class:`~repro.faults.schedule.
FaultSchedule` to the per-epoch control loop in
:class:`~repro.runtime.controller.Controller`:

* **actuator faults** (``CAP_STUCK`` / ``CAP_ERROR``) intercept the
  limits the agent asks for before they reach the platform — a stuck
  domain holds its value, an erroring domain reverts to TDP;
* **sensor faults** (``SENSOR_DROPOUT`` / ``NOISE_BURST``) corrupt the
  :class:`~repro.runtime.agent.PlatformSample` the *agent* sees while the
  physics (and the job report built from it) stays truthful — a dropout
  holds the last good reading (or zeros when there is none), a burst
  multiplies readings by per-host lognormal jitter;
* **compute faults** (``NOISE_BURST``) also raise the epoch compute-time
  noise floor, since a machine-room event that garbles sensors rarely
  leaves timing untouched.

Every applied fault increments a ``faults.*`` counter and emits a
``faults.injection`` event on the telemetry bus, so a run's fault record
is auditable after the fact.  An injector over an inactive schedule is a
strict no-op: the controller keeps its exact fault-free code path.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.faults.schedule import FaultKind, FaultSchedule
from repro.runtime.agent import PlatformSample
from repro.telemetry import emit, enabled, get_registry

__all__ = ["RuntimeFaultInjector"]


class RuntimeFaultInjector:
    """Applies a fault schedule to one controller run.

    Parameters
    ----------
    schedule:
        The timeline to inject (times are run-relative seconds).
    tdp_w:
        The cap an erroring RAPL domain reverts to.
    seed:
        Seed for the sensor-jitter stream (independent of the physics
        noise stream so injecting sensor faults never perturbs physics).
    """

    def __init__(self, schedule: FaultSchedule, tdp_w: float = 240.0,
                 seed: int = 0) -> None:
        self.schedule = schedule
        self.tdp_w = float(tdp_w)
        self._rng = np.random.default_rng(seed)
        self._last_good: Optional[PlatformSample] = None
        #: (time_s, kind, hosts) tuples of every fault applied this run.
        self.applied: List[Tuple[float, str, Tuple[int, ...]]] = []

    @property
    def active(self) -> bool:
        """Whether any injection can happen at all."""
        return self.schedule.active

    # ------------------------------------------------------------------
    def _record(self, time_s: float, kind: str,
                hosts: Tuple[int, ...] = ()) -> None:
        self.applied.append((float(time_s), kind, hosts))
        if enabled():
            get_registry().counter(f"faults.{kind}").inc()
            get_registry().counter("faults.injected").inc()
            emit("faults.injection", "fault_injected",
                 fault=kind, time_s=float(time_s), hosts=list(hosts))

    # ------------------------------------------------------------------
    def filter_limits(self, limits_w: np.ndarray,
                      time_s: float) -> np.ndarray:
        """The limits the platform actually honours at ``time_s``."""
        if not self.active:
            return limits_w
        overrides = self.schedule.cap_overrides_at(time_s, self.tdp_w)
        if not overrides:
            return limits_w
        out = np.asarray(limits_w, dtype=float).copy()
        hosts = tuple(h for h in overrides if h < out.size)
        for host in hosts:
            out[host] = overrides[host]
        if hosts:
            self._record(time_s, "cap_override", hosts)
        return out

    def noise_sigma(self, base_sigma: float, time_s: float) -> float:
        """Effective compute-noise sigma at ``time_s``."""
        if not self.active:
            return base_sigma
        sigma = self.schedule.noise_sigma_at(time_s, base_sigma)
        if sigma != base_sigma:
            self._record(time_s, "noise_burst")
        return sigma

    def corrupt_sample(self, sample: PlatformSample,
                       time_s: float) -> PlatformSample:
        """The sample the *agent* sees at ``time_s``.

        Physics history stays truthful; only the agent's telemetry view is
        corrupted.  Dropouts hold the last good reading on the affected
        hosts (zeros when the run has none yet); noise bursts add per-host
        lognormal jitter at the burst sigma to power/energy readings.
        """
        if not self.active:
            self._last_good = sample
            return sample
        corrupted = sample
        held = False
        dropouts = self.schedule.sensor_dropout_at(time_s)
        if dropouts:
            hosts = set()
            for event in dropouts:
                ids = event.host_ids or range(sample.host_power_w.size)
                hosts.update(h for h in ids if h < sample.host_power_w.size)
            if hosts:
                idx = np.array(sorted(hosts), dtype=int)
                power = corrupted.host_power_w.copy()
                energy = corrupted.host_energy_j.copy()
                freq = corrupted.mean_freq_ghz.copy()
                if self._last_good is not None:
                    power[idx] = self._last_good.host_power_w[idx]
                    energy[idx] = self._last_good.host_energy_j[idx]
                    freq[idx] = self._last_good.mean_freq_ghz[idx]
                else:
                    power[idx] = 0.0
                    energy[idx] = 0.0
                    freq[idx] = 0.0
                corrupted = dataclasses.replace(
                    corrupted, host_power_w=power, host_energy_j=energy,
                    mean_freq_ghz=freq,
                )
                self._record(time_s, "sensor_dropout", tuple(int(i) for i in idx))
                held = True
        # Remember the post-dropout (pre-jitter) view: hosts inside a
        # dropout stay frozen at their onset reading instead of tracking
        # the truth at one-epoch lag.
        self._last_good = corrupted if held else sample
        burst_sigma = self.schedule.noise_sigma_at(time_s, 0.0)
        if burst_sigma > 0.0:
            jitter = self._rng.lognormal(
                0.0, burst_sigma, size=corrupted.host_power_w.shape
            )
            corrupted = dataclasses.replace(
                corrupted,
                host_power_w=corrupted.host_power_w * jitter,
                host_energy_j=corrupted.host_energy_j * jitter,
            )
            self._record(time_s, "sensor_noise")
        return corrupted
