"""Named fault scenarios: the standard resilience suite.

Each scenario is a parameterised template — the same named disturbance
materialises against any cluster size, budget, and shift length — so the
resilience experiment, the CLI ``faults`` subcommand, and the CI smoke
job all speak the same vocabulary.  Fractions of the shift (rather than
absolute seconds) keep a scenario's *shape* invariant across scales.

The suite covers the exceptional-case classes named in ISSUE/PAPERS:
EcoShift-style dynamic budget shifts (step and ramp), node failure with
recovery, telemetry blackouts, actuator faults, a compound cascade, and
a deliberately infeasible brownout that exercises the all-floor tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.faults.schedule import FaultSchedule

__all__ = ["FaultScenario", "STANDARD_SCENARIOS", "SCENARIO_NAMES",
           "build_scenario"]


@dataclass(frozen=True)
class FaultScenario:
    """A named, parameterised fault-schedule template."""

    name: str
    description: str
    _builder: Callable[[float, int, float], FaultSchedule]

    def build(self, base_budget_w: float, host_count: int,
              duration_s: float) -> FaultSchedule:
        """Materialise the schedule for a concrete site."""
        if base_budget_w <= 0 or host_count < 1 or duration_s <= 0:
            raise ValueError("scenario needs positive budget/hosts/duration")
        schedule = self._builder(float(base_budget_w), int(host_count),
                                 float(duration_s))
        return FaultSchedule(events=schedule.events, name=self.name)

    def feasible(self, base_budget_w: float, host_count: int,
                 duration_s: float, min_cap_w: float = 136.0) -> bool:
        """Whether stage-2 re-planning can ever meet this scenario's
        budget: the lowest budget on the timeline still covers every
        host at the RAPL floor."""
        schedule = self.build(base_budget_w, host_count, duration_s)
        budgets = [float(base_budget_w)] + [
            float(e.budget_w) for e in schedule.events
            if e.budget_w is not None
        ]
        return min(budgets) >= host_count * float(min_cap_w)


def _budget_step(budget: float, hosts: int, t: float) -> FaultSchedule:
    return (FaultSchedule()
            .budget_drop(0.30 * t, 0.75 * budget)
            .budget_restore(0.70 * t, budget))


def _budget_ramp(budget: float, hosts: int, t: float) -> FaultSchedule:
    return (FaultSchedule()
            .budget_drop(0.25 * t, 0.65 * budget, ramp_s=0.15 * t)
            .budget_restore(0.65 * t, budget, ramp_s=0.15 * t))


def _node_loss(budget: float, hosts: int, t: float) -> FaultSchedule:
    failed = tuple(range(max(1, hosts // 8)))
    return (FaultSchedule()
            .node_failure(0.30 * t, failed)
            .node_recovery(0.75 * t, failed))


def _sensor_blackout(budget: float, hosts: int, t: float) -> FaultSchedule:
    return FaultSchedule().sensor_dropout(0.30 * t, 0.30 * t)


def _stuck_caps(budget: float, hosts: int, t: float) -> FaultSchedule:
    stuck = tuple(range(min(2, hosts)))
    erroring = (hosts - 1,) if hosts > 2 else ()
    schedule = FaultSchedule().cap_stuck(
        0.25 * t, stuck, stuck_at_w=136.0, duration_s=0.40 * t
    )
    if erroring:
        schedule = schedule.cap_error(0.25 * t, erroring, duration_s=0.40 * t)
    return schedule.noise_burst(0.25 * t, 0.10 * t, sigma=0.03)


def _cascade(budget: float, hosts: int, t: float) -> FaultSchedule:
    failed = tuple(range(max(1, hosts // 10)))
    return (FaultSchedule()
            .budget_drop(0.25 * t, 0.70 * budget, ramp_s=0.05 * t)
            .node_failure(0.30 * t, failed)
            .sensor_dropout(0.35 * t, 0.20 * t)
            .node_recovery(0.70 * t, failed)
            .budget_restore(0.80 * t, budget))


def _brownout(budget: float, hosts: int, t: float) -> FaultSchedule:
    # 35 % of a typical site budget sits below hosts x floor: the
    # infeasible regime where even the all-floor state overshoots and the
    # stack must *report* infeasibility instead of pretending.
    return (FaultSchedule()
            .budget_drop(0.30 * t, 0.35 * budget)
            .budget_restore(0.80 * t, budget))


STANDARD_SCENARIOS: Dict[str, FaultScenario] = {
    s.name: s for s in (
        FaultScenario(
            "budget-step",
            "facility budget steps down 25% mid-shift, restores later",
            _budget_step,
        ),
        FaultScenario(
            "budget-ramp",
            "budget ramps down to 65% and back (EcoShift-style shift)",
            _budget_ramp,
        ),
        FaultScenario(
            "node-loss",
            "an eighth of the hosts fail mid-shift and later recover",
            _node_loss,
        ),
        FaultScenario(
            "sensor-blackout",
            "site-wide monitor dropout: characterization goes dark",
            _sensor_blackout,
        ),
        FaultScenario(
            "stuck-caps",
            "RAPL domains stuck at the floor / erroring to TDP, with a "
            "sensor noise burst",
            _stuck_caps,
        ),
        FaultScenario(
            "cascade",
            "compound event: budget drop + node loss + sensor blackout",
            _cascade,
        ),
        FaultScenario(
            "brownout",
            "budget collapses to 35%: typically below hosts x floor "
            "(infeasible; exercises the all-floor tier)",
            _brownout,
        ),
    )
}

#: Stable presentation order for tables and the CLI.
SCENARIO_NAMES: Tuple[str, ...] = tuple(STANDARD_SCENARIOS)


def build_scenario(name: str, base_budget_w: float, host_count: int,
                   duration_s: float) -> FaultSchedule:
    """Materialise a named scenario (KeyError lists the valid names)."""
    try:
        scenario = STANDARD_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}"
        ) from None
    return scenario.build(base_budget_w, host_count, duration_s)
