"""Graceful degradation: planning power when the world is misbehaving.

The manager's fault-time decision ladder, from best to worst information:

1. **Re-plan** — characterization is available, so run the site policy
   against the new conditions, with *bounded retry*: a policy whose
   allocation comes back over budget (stale characterization, float drift
   on a ramping budget) is retried against a slightly shaved budget
   (``retry_margin`` per attempt, ``max_retries`` times), each retry
   charging simulated ``backoff_s`` of decision latency.
2. **Proportional clamp** — characterization is unavailable (sensor
   dropout, first batch after a cold start): fall back to the stage-1
   emergency clamp, which needs no job knowledge at all — scale every
   running cap's above-floor share onto the budget.
3. **All-floor** — the budget cannot cover even ``hosts x floor``: pin
   every host at the RAPL floor and *say so* (``feasible=False``); the
   operator must shed load.  This is the case the old emergency path
   silently mis-reported (see :class:`~repro.manager.emergency.
   InfeasibleBudgetError`).

Every decision is recorded as a :class:`DegradationDecision` and emitted
through the telemetry bus (``faults.degradation.*``), so a resilience run
can audit *which* tier produced every batch's caps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.allocation import fit_to_budget
from repro.core.policy import Policy
from repro.telemetry import emit, enabled, get_registry, span

__all__ = [
    "DegradationConfig",
    "DegradationDecision",
    "proportional_clamp_caps",
    "quarantine_caps",
    "plan_with_degradation",
]


@dataclass(frozen=True)
class DegradationConfig:
    """Retry/backoff knobs of the degradation ladder."""

    #: Extra planning attempts after the first failed one.
    max_retries: int = 2
    #: Budget shaved per retry (fraction of the requested budget).
    retry_margin: float = 0.005
    #: Simulated decision latency charged per retry (seconds).
    backoff_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if not 0.0 <= self.retry_margin < 1.0:
            raise ValueError("retry_margin must be in [0, 1)")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")


@dataclass(frozen=True)
class DegradationDecision:
    """Which tier produced the caps, and at what cost.

    Attributes
    ----------
    tier:
        ``"replan"`` (policy allocation succeeded), ``"clamp"`` (the
        characterization-free proportional fallback), or ``"floor"``
        (infeasible budget; all hosts pinned at the RAPL floor).
    attempts:
        Planning attempts consumed (1 on a first-try success; 0 when the
        ladder skipped straight to a fallback).
    backoff_s:
        Simulated decision latency accumulated by retries.
    caps_w:
        The per-host caps to program.
    planned_budget_w:
        The budget the successful attempt actually planned against
        (shaved below the request by retries).
    feasible:
        ``False`` only on the ``"floor"`` tier — the caps *exceed* the
        budget and the caller must surface that, not hide it.
    notes:
        Free-form diagnostics (requested budget, floor power, ...).
    """

    tier: str
    attempts: int
    backoff_s: float
    caps_w: np.ndarray
    planned_budget_w: float
    feasible: bool
    notes: Dict[str, float] = field(default_factory=dict)


def proportional_clamp_caps(
    current_caps_w: np.ndarray,
    budget_w: float,
    min_cap_w: float,
) -> np.ndarray:
    """The characterization-free fallback: stage-1 clamp arithmetic.

    Identical maths to :func:`repro.manager.emergency.emergency_clamp`
    (proportional above the floor), kept here so the faults layer depends
    only on :mod:`repro.core`.
    """
    caps = np.maximum(np.asarray(current_caps_w, dtype=float), min_cap_w)
    return fit_to_budget(caps, float(budget_w), float(min_cap_w))


def quarantine_caps(
    caps_w: np.ndarray,
    failed_hosts,
    min_cap_w: float,
    tdp_w: float,
) -> np.ndarray:
    """Quarantine failed hosts and redistribute their budget share.

    Failed hosts are parked at the RAPL floor (a quarantined node idles
    at its minimum domain power until it is drained); their above-floor
    share water-fills uniformly over the survivors up to TDP.  Power is
    conserved up to survivor saturation, so the cluster never exceeds the
    budget the original caps met.
    """
    caps = np.asarray(caps_w, dtype=float).copy()
    failed = sorted({int(h) for h in failed_hosts if 0 <= int(h) < caps.size})
    if not failed:
        return caps
    from repro.core.allocation import distribute_uniform

    idx = np.array(failed, dtype=int)
    freed = float(np.sum(np.maximum(caps[idx] - min_cap_w, 0.0)))
    caps[idx] = min_cap_w
    survivors = np.ones(caps.size, dtype=bool)
    survivors[idx] = False
    if freed > 0 and survivors.any():
        bounds = np.where(survivors, tdp_w, caps)
        caps, _ = distribute_uniform(freed, caps, bounds)
    if enabled():
        get_registry().counter("faults.quarantined_hosts").inc(len(failed))
        emit("faults.degradation", "hosts_quarantined",
             hosts=failed, freed_w=freed)
    return caps


def plan_with_degradation(
    policy: Policy,
    budget_w: float,
    characterization=None,
    current_caps_w: Optional[np.ndarray] = None,
    host_count: Optional[int] = None,
    min_cap_w: float = 136.0,
    tdp_w: float = 240.0,
    config: Optional[DegradationConfig] = None,
) -> DegradationDecision:
    """Walk the degradation ladder and return the caps to program.

    ``characterization`` being ``None`` models the sensor-dropout /
    cold-start case; ``current_caps_w`` seeds the clamp fallback (uniform
    TDP when absent — the power-on state).  ``host_count`` is only needed
    when neither is given.
    """
    config = config if config is not None else DegradationConfig()
    budget = float(budget_w)
    if characterization is not None:
        hosts = characterization.host_count
        min_cap_w = characterization.min_cap_w
        tdp_w = characterization.tdp_w
    elif current_caps_w is not None:
        hosts = int(np.asarray(current_caps_w).size)
    elif host_count is not None:
        hosts = int(host_count)
    else:
        raise ValueError(
            "need a characterization, current caps, or a host count"
        )
    floor_power = hosts * float(min_cap_w)

    def _emit(decision: DegradationDecision) -> DegradationDecision:
        if enabled():
            registry = get_registry()
            registry.counter(f"faults.degradation.{decision.tier}").inc()
            if decision.attempts > 1:
                registry.counter("faults.degradation.retries").inc(
                    decision.attempts - 1
                )
            emit("faults.degradation", "plan_degraded",
                 tier=decision.tier, attempts=decision.attempts,
                 feasible=decision.feasible,
                 requested_budget_w=budget,
                 planned_budget_w=decision.planned_budget_w,
                 backoff_s=decision.backoff_s)
        return decision

    def _ladder() -> DegradationDecision:
        # Tier 3 short-circuit: nothing can fit.
        if budget < floor_power:
            return _emit(DegradationDecision(
                tier="floor", attempts=0, backoff_s=0.0,
                caps_w=np.full(hosts, float(min_cap_w)),
                planned_budget_w=budget, feasible=False,
                notes={"floor_power_w": floor_power,
                       "requested_budget_w": budget},
            ))

        # Tier 1: policy re-plan with bounded retry/backoff.
        if characterization is not None:
            for attempt in range(config.max_retries + 1):
                planned = budget * (1.0 - config.retry_margin * attempt)
                if planned < floor_power:
                    break
                try:
                    allocation = policy.allocate(characterization, planned)
                except (ValueError, ArithmeticError):
                    continue
                if policy.system_power_aware and not allocation.within_budget():
                    continue
                if float(np.sum(allocation.caps_w)) > budget + 1e-6 \
                        and policy.system_power_aware:
                    continue
                return _emit(DegradationDecision(
                    tier="replan", attempts=attempt + 1,
                    backoff_s=attempt * config.backoff_s,
                    caps_w=allocation.caps_w, planned_budget_w=planned,
                    feasible=True,
                    notes={"requested_budget_w": budget},
                ))

        # Tier 2: characterization-free proportional clamp.
        if current_caps_w is not None:
            seed_caps = np.asarray(current_caps_w, dtype=float)
        else:
            seed_caps = np.full(hosts, float(tdp_w))
        attempts_spent = (config.max_retries + 1) \
            if characterization is not None else 0
        return _emit(DegradationDecision(
            tier="clamp", attempts=attempts_spent,
            backoff_s=attempts_spent * config.backoff_s
            if characterization is not None else 0.0,
            caps_w=proportional_clamp_caps(seed_caps, budget, min_cap_w),
            planned_budget_w=budget, feasible=True,
            notes={"requested_budget_w": budget,
                   "floor_power_w": floor_power},
        ))

    with span("faults.degradation.plan", policy=policy.name,
              budget_w=budget, hosts=hosts,
              blinded=characterization is None) as trace_sp:
        decision = _ladder()
        if trace_sp is not None:
            trace_sp.set_attribute("tier", decision.tier)
            trace_sp.set_attribute("attempts", decision.attempts)
            trace_sp.set_attribute("feasible", decision.feasible)
    return decision
