"""Deterministic fault schedules for the power stack.

The paper's conclusion asks for policies that "minimize the loss of
quality of service in exceptional cases"; this module makes exceptional
cases *first-class inputs*.  A :class:`FaultSchedule` is an immutable,
seedable timeline of :class:`FaultEvent` records covering the fault
classes a production power manager actually sees:

* **facility budget drops and restores** (a feeder trips, a
  demand-response event ends), optionally ramped over a window —
  EcoShift's dynamic power-constraint shifts;
* **node failure / drain / recovery** — a host leaves the schedulable
  pool and later returns (Fan's checkpoint-under-power-events scenario);
* **monitor sensor dropout and noise bursts** — the telemetry a layer
  depends on goes dark or untrustworthy for a window;
* **stuck or erroring RAPL caps** — the actuator stops obeying writes
  (stuck at a value, or the write fails and the domain stays at TDP).

Schedules are pure data: every consumer (the runtime controller, the
batched engine, the site simulation) *queries* the schedule at its own
clock and applies the faults at its own granularity.  An **empty
schedule is a guaranteed no-op** — every injection hook in the stack is
gated on :attr:`FaultSchedule.active`, so a fault-free schedule takes
exactly the code path a ``None`` schedule does and produces bit-identical
results (pinned by ``tests/property/test_fault_properties.py``).
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule", "random_schedule"]


class FaultKind(enum.Enum):
    """The fault classes the stack can inject."""

    BUDGET_CHANGE = "budget_change"
    NODE_FAILURE = "node_failure"
    NODE_RECOVERY = "node_recovery"
    SENSOR_DROPOUT = "sensor_dropout"
    NOISE_BURST = "noise_burst"
    CAP_STUCK = "cap_stuck"
    CAP_ERROR = "cap_error"


#: Kinds the vectorised engine can apply directly (static-cap runs).
ENGINE_KINDS: FrozenSet[FaultKind] = frozenset(
    {FaultKind.CAP_STUCK, FaultKind.CAP_ERROR, FaultKind.NOISE_BURST}
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault on the timeline.

    Attributes
    ----------
    time_s:
        When the fault begins, on the consumer's clock (site clock for the
        manager, run-relative seconds for the controller/engine).
    kind:
        Fault class; determines which optional fields are meaningful.
    duration_s:
        Window length for windowed faults (sensor dropout, noise bursts,
        budget ramps).  ``0`` means instantaneous (step changes) and
        ``inf`` means "until a matching recovery event".
    budget_w:
        Target facility budget for ``BUDGET_CHANGE`` (reached at
        ``time_s + duration_s``; linear ramp in between).
    host_ids:
        Affected hosts for node/sensor/cap faults.  Empty tuple on
        sensor faults means "all hosts" (a site-wide telemetry outage).
    sigma:
        Absolute lognormal noise level during a ``NOISE_BURST`` (the
        effective noise is ``max(base noise, sigma)`` inside the window).
    stuck_at_w:
        The value a ``CAP_STUCK`` domain reports/holds regardless of
        writes.  ``CAP_ERROR`` ignores this: the write fails and the
        domain reverts to TDP (uncapped), the RAPL power-on default.
    """

    time_s: float
    kind: FaultKind
    duration_s: float = 0.0
    budget_w: Optional[float] = None
    host_ids: Tuple[int, ...] = ()
    sigma: float = 0.0
    stuck_at_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("fault time_s must be non-negative")
        if self.duration_s < 0:
            raise ValueError("fault duration_s must be non-negative")
        if self.kind is FaultKind.BUDGET_CHANGE:
            if self.budget_w is None or self.budget_w <= 0:
                raise ValueError("BUDGET_CHANGE needs a positive budget_w")
        if self.kind in (FaultKind.NODE_FAILURE, FaultKind.NODE_RECOVERY,
                         FaultKind.CAP_STUCK, FaultKind.CAP_ERROR):
            if not self.host_ids:
                raise ValueError(f"{self.kind.value} needs host_ids")
        if self.kind is FaultKind.CAP_STUCK:
            if self.stuck_at_w is None or self.stuck_at_w <= 0:
                raise ValueError("CAP_STUCK needs a positive stuck_at_w")
        if self.kind is FaultKind.NOISE_BURST and self.sigma <= 0:
            raise ValueError("NOISE_BURST needs a positive sigma")
        object.__setattr__(self, "host_ids",
                           tuple(sorted(int(h) for h in self.host_ids)))

    @property
    def end_s(self) -> float:
        """When the fault's window closes (``inf`` for open-ended faults)."""
        return self.time_s + self.duration_s

    def window_overlaps(self, start_s: float, end_s: float) -> bool:
        """Whether the fault's window intersects ``[start_s, end_s)``."""
        if self.duration_s == 0.0:
            return start_s <= self.time_s < end_s
        return self.time_s < end_s and self.end_s > start_s


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted set of fault events.

    Construct directly from events or through the fluent builders
    (:meth:`budget_drop`, :meth:`node_failure`, ...), which return new
    schedules::

        schedule = (FaultSchedule()
                    .budget_drop(time_s=60.0, budget_w=7000.0, ramp_s=10.0)
                    .node_failure(time_s=90.0, host_ids=(3, 4))
                    .node_recovery(time_s=150.0, host_ids=(3, 4)))

    All queries are pure; consumers never mutate a schedule.
    """

    events: Tuple[FaultEvent, ...] = ()
    name: str = "unnamed"

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: (e.time_s, e.kind.value)))
        object.__setattr__(self, "events", ordered)

    # -- builders ------------------------------------------------------
    def with_event(self, event: FaultEvent) -> "FaultSchedule":
        """A new schedule with ``event`` added."""
        return replace(self, events=self.events + (event,))

    def budget_drop(self, time_s: float, budget_w: float,
                    ramp_s: float = 0.0) -> "FaultSchedule":
        """Facility budget falls to ``budget_w`` (ramped over ``ramp_s``)."""
        return self.with_event(FaultEvent(
            time_s=time_s, kind=FaultKind.BUDGET_CHANGE,
            duration_s=ramp_s, budget_w=float(budget_w),
        ))

    #: A restore is the same event with a higher target; alias for intent.
    budget_restore = budget_drop

    def node_failure(self, time_s: float,
                     host_ids: Iterable[int]) -> "FaultSchedule":
        """Hosts leave the schedulable pool (failure or drain)."""
        return self.with_event(FaultEvent(
            time_s=time_s, kind=FaultKind.NODE_FAILURE,
            duration_s=float("inf"), host_ids=tuple(host_ids),
        ))

    def node_recovery(self, time_s: float,
                      host_ids: Iterable[int]) -> "FaultSchedule":
        """Previously failed hosts rejoin the pool."""
        return self.with_event(FaultEvent(
            time_s=time_s, kind=FaultKind.NODE_RECOVERY,
            host_ids=tuple(host_ids),
        ))

    def sensor_dropout(self, time_s: float, duration_s: float,
                       host_ids: Iterable[int] = ()) -> "FaultSchedule":
        """Monitor telemetry goes dark for a window (empty ids = site-wide)."""
        return self.with_event(FaultEvent(
            time_s=time_s, kind=FaultKind.SENSOR_DROPOUT,
            duration_s=duration_s, host_ids=tuple(host_ids),
        ))

    def noise_burst(self, time_s: float, duration_s: float,
                    sigma: float) -> "FaultSchedule":
        """Compute/telemetry jitter rises to ``sigma`` for a window."""
        return self.with_event(FaultEvent(
            time_s=time_s, kind=FaultKind.NOISE_BURST,
            duration_s=duration_s, sigma=float(sigma),
        ))

    def cap_stuck(self, time_s: float, host_ids: Iterable[int],
                  stuck_at_w: float,
                  duration_s: float = float("inf")) -> "FaultSchedule":
        """RAPL domains hold ``stuck_at_w`` regardless of writes."""
        return self.with_event(FaultEvent(
            time_s=time_s, kind=FaultKind.CAP_STUCK, duration_s=duration_s,
            host_ids=tuple(host_ids), stuck_at_w=float(stuck_at_w),
        ))

    def cap_error(self, time_s: float, host_ids: Iterable[int],
                  duration_s: float = float("inf")) -> "FaultSchedule":
        """RAPL writes fail; domains revert to the TDP default."""
        return self.with_event(FaultEvent(
            time_s=time_s, kind=FaultKind.CAP_ERROR, duration_s=duration_s,
            host_ids=tuple(host_ids),
        ))

    # -- queries -------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the schedule injects anything at all.

        Every injection hook in the stack is gated on this, which is what
        makes an empty schedule bit-identical to no schedule.
        """
        return bool(self.events)

    def of_kind(self, *kinds: FaultKind) -> Tuple[FaultEvent, ...]:
        """Events of the given kinds, in time order."""
        wanted = set(kinds)
        return tuple(e for e in self.events if e.kind in wanted)

    # Lazy per-schedule query indices.  A schedule is frozen, so the
    # event tuple never changes after __post_init__ and the indices are
    # built once on first query; derived schedules (``replace``-based
    # builders, ``shifted``, ``engine_slice``) are new instances and
    # rebuild their own.  Stored via object.__setattr__ because the
    # dataclass is frozen; they are not fields, so equality, repr and
    # pickling of the schedule are unaffected.
    def _budget_index(
        self,
    ) -> Tuple[Tuple[FaultEvent, ...], List[float]]:
        cached = self.__dict__.get("_budget_idx")
        if cached is None:
            events = self.of_kind(FaultKind.BUDGET_CHANGE)
            cached = (events, [e.time_s for e in events])
            object.__setattr__(self, "_budget_idx", cached)
        return cached

    def _node_index(self) -> Tuple[List[float], Tuple[FrozenSet[int], ...]]:
        cached = self.__dict__.get("_node_idx")
        if cached is None:
            events = self.of_kind(FaultKind.NODE_FAILURE,
                                  FaultKind.NODE_RECOVERY)
            failed: set = set()
            prefixes = [frozenset()]
            for event in events:
                if event.kind is FaultKind.NODE_FAILURE:
                    failed.update(event.host_ids)
                else:
                    failed.difference_update(event.host_ids)
                prefixes.append(frozenset(failed))
            cached = ([e.time_s for e in events], tuple(prefixes))
            object.__setattr__(self, "_node_idx", cached)
        return cached

    def _dropout_index(
        self,
    ) -> Tuple[Tuple[FaultEvent, ...], List[float]]:
        cached = self.__dict__.get("_dropout_idx")
        if cached is None:
            events = self.of_kind(FaultKind.SENSOR_DROPOUT)
            cached = (events, [e.time_s for e in events])
            object.__setattr__(self, "_dropout_idx", cached)
        return cached

    def budget_at(self, time_s: float, base_budget_w: float) -> float:
        """The facility budget in force at ``time_s``.

        Step changes apply from their event time; ramped changes
        interpolate linearly from the pre-event budget to the target over
        ``duration_s``.

        Bisects to the events already started at ``time_s`` and replays
        only from the last *completed* change (which overwrites any
        earlier budget), so per-query cost is O(log E + ramps in flight)
        instead of O(E) — bit-identical to the full scan, pinned by the
        fault property suite.
        """
        budget = float(base_budget_w)
        events, times = self._budget_index()
        n = bisect_right(times, time_s)
        start = n - 1
        while start >= 0:
            event = events[start]
            if not (event.duration_s > 0 and time_s < event.end_s):
                break
            start -= 1
        if start < 0:
            start = 0
        for event in events[start:n]:
            if event.duration_s > 0 and time_s < event.end_s:
                frac = (time_s - event.time_s) / event.duration_s
                budget = budget + frac * (event.budget_w - budget)
            else:
                budget = float(event.budget_w)
        return budget

    def failed_hosts_at(self, time_s: float) -> FrozenSet[int]:
        """Hosts out of the pool at ``time_s`` (failures minus recoveries).

        Served from precomputed prefix snapshots over the node events in
        timeline order, found by bisection — O(log E) per query.
        """
        times, prefixes = self._node_index()
        return prefixes[bisect_right(times, time_s)]

    def sensor_dropout_at(self, time_s: float) -> Tuple[FaultEvent, ...]:
        """Sensor-dropout windows covering ``time_s``."""
        events, times = self._dropout_index()
        return tuple(
            e for e in events[:bisect_right(times, time_s)]
            if time_s < e.end_s
        )

    def noise_sigma_at(self, time_s: float, base_sigma: float) -> float:
        """Effective lognormal noise at ``time_s`` (max of base and bursts)."""
        sigma = float(base_sigma)
        for event in self.of_kind(FaultKind.NOISE_BURST):
            if event.time_s <= time_s < event.end_s:
                sigma = max(sigma, event.sigma)
        return sigma

    def cap_overrides_at(self, time_s: float, tdp_w: float) -> Dict[int, float]:
        """Per-host actuator overrides in force at ``time_s``.

        Stuck domains hold their stuck value; erroring domains revert to
        TDP (the RAPL power-on default when a write fails).  Later events
        win on the same host.
        """
        overrides: Dict[int, float] = {}
        for event in self.of_kind(FaultKind.CAP_STUCK, FaultKind.CAP_ERROR):
            if event.time_s <= time_s < event.end_s or (
                event.duration_s == 0.0 and event.time_s <= time_s
            ):
                value = event.stuck_at_w if event.kind is FaultKind.CAP_STUCK \
                    else float(tdp_w)
                for host in event.host_ids:
                    overrides[host] = float(value)
        return overrides

    def events_between(self, start_s: float,
                       end_s: float) -> Tuple[FaultEvent, ...]:
        """Events whose start time falls in ``[start_s, end_s)``."""
        return tuple(e for e in self.events if start_s <= e.time_s < end_s)

    def boundaries(self) -> Tuple[float, ...]:
        """Sorted finite clock points at which fault state can change.

        Every event start and (finite) window end, deduplicated — the
        points where a consumer that came up empty should re-check the
        world.  Both the batch shift loop and the streaming site engine
        schedule their retry-admission waits on these.
        """
        return tuple(sorted({
            t for e in self.events for t in (e.time_s, e.end_s)
            if np.isfinite(t)
        }))

    # -- derived schedules ---------------------------------------------
    def shifted(self, dt_s: float) -> "FaultSchedule":
        """The schedule on a clock offset by ``dt_s`` (events before the
        new origin are clamped to time zero, keeping open windows open)."""
        moved = []
        for event in self.events:
            start = event.time_s + dt_s
            if start < 0:
                if event.duration_s == 0.0 or event.end_s + dt_s <= 0:
                    continue  # fully in the past on the new clock
                duration = event.duration_s + start if np.isfinite(
                    event.duration_s) else event.duration_s
                moved.append(replace(event, time_s=0.0, duration_s=duration))
            else:
                moved.append(replace(event, time_s=start))
        return FaultSchedule(events=tuple(moved), name=self.name)

    def engine_slice(self, start_s: float) -> Optional["FaultSchedule"]:
        """The engine-applicable faults, re-clocked to a run starting at
        ``start_s`` on this schedule's clock.  ``None`` when no cap or
        noise fault could touch the run."""
        shifted = self.shifted(-start_s)
        events = tuple(e for e in shifted.events if e.kind in ENGINE_KINDS)
        if not events:
            return None
        return FaultSchedule(events=events, name=self.name)


@dataclass(frozen=True)
class _RandomScheduleSpec:
    """Internal: parameters of :func:`random_schedule` (documented there)."""

    duration_s: float
    host_count: int
    base_budget_w: float
    events: int = 4
    min_budget_fraction: float = 0.6
    seed: int = 0
    kinds: Tuple[FaultKind, ...] = field(default=(
        FaultKind.BUDGET_CHANGE, FaultKind.NODE_FAILURE,
        FaultKind.SENSOR_DROPOUT, FaultKind.NOISE_BURST,
        FaultKind.CAP_STUCK,
    ))


def random_schedule(
    duration_s: float,
    host_count: int,
    base_budget_w: float,
    events: int = 4,
    min_budget_fraction: float = 0.6,
    seed: int = 0,
    kinds: Optional[Sequence[FaultKind]] = None,
) -> FaultSchedule:
    """A seeded random schedule for fuzz-style resilience runs.

    Draws ``events`` faults uniformly over ``[0, duration_s)`` from the
    given kinds; budget drops stay above ``min_budget_fraction`` of the
    base budget (always floor-feasible scenarios by construction when the
    caller picks the fraction accordingly), node failures take at most a
    quarter of the hosts and are paired with recoveries.  Identical
    arguments produce identical schedules.
    """
    spec = _RandomScheduleSpec(
        duration_s=float(duration_s), host_count=int(host_count),
        base_budget_w=float(base_budget_w), events=int(events),
        min_budget_fraction=float(min_budget_fraction), seed=int(seed),
        kinds=tuple(kinds) if kinds is not None else
        _RandomScheduleSpec.__dataclass_fields__["kinds"].default,
    )
    if spec.events < 1:
        raise ValueError("need at least one event")
    rng = np.random.default_rng(spec.seed)
    schedule = FaultSchedule(name=f"random-{spec.seed}")
    max_failed = max(1, spec.host_count // 4)
    for _ in range(spec.events):
        kind = spec.kinds[int(rng.integers(len(spec.kinds)))]
        t = float(rng.uniform(0.0, spec.duration_s))
        window = float(rng.uniform(0.05, 0.25) * spec.duration_s)
        if kind is FaultKind.BUDGET_CHANGE:
            fraction = float(rng.uniform(spec.min_budget_fraction, 1.0))
            schedule = schedule.budget_drop(
                t, fraction * spec.base_budget_w,
                ramp_s=float(rng.uniform(0.0, 0.1 * spec.duration_s)),
            )
        elif kind is FaultKind.NODE_FAILURE:
            count = int(rng.integers(1, max_failed + 1))
            hosts = tuple(
                int(h) for h in
                rng.choice(spec.host_count, size=count, replace=False)
            )
            schedule = schedule.node_failure(t, hosts)
            schedule = schedule.node_recovery(
                min(t + window, spec.duration_s), hosts
            )
        elif kind is FaultKind.SENSOR_DROPOUT:
            schedule = schedule.sensor_dropout(t, window)
        elif kind is FaultKind.NOISE_BURST:
            schedule = schedule.noise_burst(
                t, window, sigma=float(rng.uniform(0.01, 0.05))
            )
        elif kind is FaultKind.CAP_STUCK:
            host = int(rng.integers(spec.host_count))
            schedule = schedule.cap_stuck(
                t, (host,), stuck_at_w=float(rng.uniform(136.0, 240.0)),
                duration_s=window,
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"random_schedule cannot draw {kind}")
    return schedule
