"""Fault injection & graceful degradation for the power stack.

The robustness axis of the reproduction: deterministic, seedable fault
timelines (:mod:`repro.faults.schedule`), injection adapters for each
layer's clock (:mod:`repro.faults.injection` for the runtime controller;
the engine and site simulation consume schedules directly), the named
standard scenario suite (:mod:`repro.faults.scenarios`), and the
manager-side degradation ladder (:mod:`repro.faults.degradation`).

Design rule: **an empty schedule is a no-op by construction** — every
hook in the stack is gated on :attr:`FaultSchedule.active`, so fault-free
runs keep their exact pre-existing code paths and bit-identical results
(property-tested).  Every injected fault and every degradation decision
emits ``faults.*`` telemetry, so a run's exceptional-case record is as
observable as its steady state.
"""

from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    random_schedule,
)
from repro.faults.injection import RuntimeFaultInjector
from repro.faults.scenarios import (
    SCENARIO_NAMES,
    STANDARD_SCENARIOS,
    FaultScenario,
    build_scenario,
)
from repro.faults.degradation import (
    DegradationConfig,
    DegradationDecision,
    plan_with_degradation,
    proportional_clamp_caps,
    quarantine_caps,
)

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "random_schedule",
    "RuntimeFaultInjector",
    "FaultScenario",
    "STANDARD_SCENARIOS",
    "SCENARIO_NAMES",
    "build_scenario",
    "DegradationConfig",
    "DegradationDecision",
    "plan_with_degradation",
    "proportional_clamp_caps",
    "quarantine_caps",
]
