"""StaticCaps: uniform distribution, workload-clipped — the baseline.

Paper §III-B: "system power is uniformly distributed to all nodes in the
cluster.  A static cap is applied for each job, using the max of average
powers from all nodes in the job's monitor characterization run."  The
cap for every host is therefore the smaller of its uniform share and its
job's observed per-node maximum; the clipped power is *not* redistributed
(that is precisely the waste ``MinimizeWaste`` exists to recover).

"Note that this policy's final state is the same as the initial state of
the MinimizeWaste and MixedAdaptive power-sharing policies" — at budgets
where the uniform share is below every job's clip level, StaticCaps is the
pure uniform allocation.

Every Fig. 8 metric is reported relative to this policy.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.allocation import PowerAllocation
from repro.core.policy import Policy

__all__ = ["StaticCapsPolicy"]


class StaticCapsPolicy(Policy):
    """Uniform share, clipped at each job's max observed node power."""

    name = "StaticCaps"
    system_power_aware = True
    application_aware = False

    def _allocate(self, char: MixCharacterization, budget_w: float) -> PowerAllocation:
        uniform = self.uniform_share(char, budget_w)
        job_clip = char.job_max_monitor_power_w()
        clip_per_host = job_clip[char.host_job_index()]
        caps = np.minimum(uniform, clip_per_host)
        return PowerAllocation(
            policy_name=self.name,
            mix_name=char.mix_name,
            budget_w=budget_w,
            caps_w=caps,
            unallocated_w=budget_w - float(np.sum(caps)),
            notes={"uniform_share_w": uniform},
        )
