"""JobAdaptive: performance-aware sharing *within* jobs only.

Paper §III-B: "For the JobAdaptive policy, system power is dynamically
shared within jobs to maximize performance, but power cannot be shared
across different jobs.  In other words, the policy is not full-system-
aware.  The system power cap is initially distributed uniformly across
jobs.  Power is further distributed among hosts within each job, based on
the performance-aware characterization data.  If any of the nodes are
assigned a power limit that exceeds an evenly-distributed power cap, then
all nodes in the job have their power caps reduced by the percentage of
their current power consumption that corrects that violation."

And from §VI-C: "the JobAdaptive policy continues to distribute the
remainder power within each workload to the nodes that need the most
power" — the within-job surplus goes to the needy hosts (weighted by
needed power above the floor), up to TDP; it is never exported to another
job, which is exactly the limitation marker-(b) of Fig. 7 exposes.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.allocation import PowerAllocation, distribute_weighted, fit_to_budget
from repro.core.policy import Policy

__all__ = ["JobAdaptivePolicy"]


class JobAdaptivePolicy(Policy):
    """Per-job silos: balancer-guided caps inside each job's uniform budget."""

    name = "JobAdaptive"
    system_power_aware = False
    application_aware = True

    def _allocate(self, char: MixCharacterization, budget_w: float) -> PowerAllocation:
        uniform = self.uniform_share(char, budget_w)
        floor = char.min_cap_w
        tdp = char.tdp_w
        caps = np.empty(char.host_count)
        leftover_total = 0.0

        for j in range(char.job_count):
            block = char.job_slice(j)
            hosts = block.stop - block.start
            job_budget = uniform * hosts
            targets = np.maximum(char.needed_cap_w[block], floor)

            if float(np.sum(targets)) > job_budget:
                # Overflow: proportional reduction onto the job budget.
                job_caps = fit_to_budget(targets, job_budget, floor)
                leftover = 0.0
            else:
                # Surplus: push the remainder to the hosts that need the
                # most power, bounded by TDP; the job cannot export it.
                surplus = job_budget - float(np.sum(targets))
                weights = np.maximum(targets - floor, 0.0)
                if not np.any(weights > 0):
                    weights = np.ones_like(targets)
                bounds = np.full(hosts, tdp)
                job_caps, leftover = distribute_weighted(
                    surplus, targets, weights, bounds
                )
            caps[block] = job_caps
            leftover_total += leftover

        return PowerAllocation(
            policy_name=self.name,
            mix_name=char.mix_name,
            budget_w=budget_w,
            caps_w=caps,
            unallocated_w=leftover_total,
            notes={"uniform_share_w": uniform},
        )
