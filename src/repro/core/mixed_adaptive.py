"""MixedAdaptive: the paper's proposed system- and application-aware policy.

Paper §III-A, verbatim steps:

1. "Uniformly distribute the system power limit among hosts across all
   jobs."
2. "Decrease the allocated power of each host down to the amount of power
   needed on that host, as determined by the previously described power
   balancer pre-characterization runs.  The total amount of decreased
   power is now considered deallocated.  If there is a significant enough
   power shortage, the surplus can be as low as zero watts."
3. "Uniformly distribute the deallocated power among hosts that need more
   power to meet their characterized performance, at most up to the
   characterized power.  Repeat this step until no deallocated power
   remains, or all hosts have been assigned their needed power."
4. "If there is a power surplus, allocate the remainder of power across
   all hosts with a weighted distribution.  The weight of each host is
   determined by the distance from the host's minimum settable power limit
   to the host's allocated power from previous steps."

The policy inherits the balancer's application awareness (step 2 uses
*needed*, not observed, power) and the resource manager's system awareness
(steps 3-4 move power freely across job boundaries).
"""

from __future__ import annotations

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.allocation import (
    PowerAllocation,
    distribute_uniform,
    distribute_weighted,
)
from repro.core.policy import Policy

__all__ = ["MixedAdaptivePolicy"]


class MixedAdaptivePolicy(Policy):
    """The four-step system-application integrated allocation."""

    name = "MixedAdaptive"
    system_power_aware = True
    application_aware = True

    def _allocate(self, char: MixCharacterization, budget_w: float) -> PowerAllocation:
        floor = char.min_cap_w
        tdp = char.tdp_w
        needed = np.maximum(char.needed_cap_w, floor)

        # Step 1: uniform distribution across every host of every job.
        uniform = self.uniform_share(char, budget_w)
        alloc = np.full(char.host_count, uniform)

        # Step 2: trim each host to its needed power; pool the trimmings.
        trimmed = np.minimum(alloc, needed)
        pool = float(np.sum(alloc - trimmed))
        alloc = trimmed

        # Step 3: uniform refill of still-needy hosts, up to needed power.
        alloc, pool = distribute_uniform(pool, alloc, needed)

        # Step 4: weighted spread of any true surplus across all hosts,
        # weighted by distance from the RAPL floor, bounded by TDP.
        weights = np.maximum(alloc - floor, 0.0)
        if not np.any(weights > 0):
            weights = np.ones_like(alloc)
        bounds = np.full(char.host_count, tdp)
        alloc, leftover = distribute_weighted(pool, alloc, weights, bounds)

        return PowerAllocation(
            policy_name=self.name,
            mix_name=char.mix_name,
            budget_w=budget_w,
            caps_w=alloc,
            unallocated_w=leftover,
            notes={
                "uniform_share_w": uniform,
                "needed_total_w": float(np.sum(needed)),
            },
        )
