"""Policy registry: name-based construction and the canonical ordering.

The canonical order matches the paper's legends (Figs. 7-8):
Precharacterized, StaticCaps, MinimizeWaste, JobAdaptive, MixedAdaptive.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from repro.core.policy import Policy
from repro.core.precharacterized import PrecharacterizedPolicy
from repro.core.static_caps import StaticCapsPolicy
from repro.core.minimize_waste import MinimizeWastePolicy
from repro.core.job_adaptive import JobAdaptivePolicy
from repro.core.mixed_adaptive import MixedAdaptivePolicy

__all__ = ["POLICY_NAMES", "POLICY_CLASSES", "create_policy", "default_policies"]

#: Paper legend order.
POLICY_NAMES: Tuple[str, ...] = (
    "Precharacterized",
    "StaticCaps",
    "MinimizeWaste",
    "JobAdaptive",
    "MixedAdaptive",
)

POLICY_CLASSES: Dict[str, Type[Policy]] = {
    PrecharacterizedPolicy.name: PrecharacterizedPolicy,
    StaticCapsPolicy.name: StaticCapsPolicy,
    MinimizeWastePolicy.name: MinimizeWastePolicy,
    JobAdaptivePolicy.name: JobAdaptivePolicy,
    MixedAdaptivePolicy.name: MixedAdaptivePolicy,
}


def create_policy(name: str) -> Policy:
    """Instantiate one policy by its paper name."""
    try:
        return POLICY_CLASSES[name]()
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}") from None


def default_policies() -> List[Policy]:
    """All five policies in the paper's legend order."""
    return [create_policy(name) for name in POLICY_NAMES]
