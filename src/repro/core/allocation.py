"""Power-allocation container and redistribution arithmetic.

The paper's policies are compositions of three redistribution moves:

* *uniform filling* (MixedAdaptive step 3): "uniformly distribute the
  deallocated power among hosts that need more power ... at most up to the
  characterized power.  Repeat until no deallocated power remains, or all
  hosts have been assigned their needed power";
* *weighted filling* (MixedAdaptive step 4, MinimizeWaste surplus): spread
  a pool proportionally to per-host weights, respecting per-host upper
  bounds, iterating as hosts saturate;
* *proportional fitting* (JobAdaptive overflow): scale a set of targets
  down onto a budget, never below the floor.

All three are exact water-filling procedures: they terminate in at most
``hosts`` rounds because every round either exhausts the pool or saturates
at least one host, and they conserve power to floating-point accuracy
(pool in == allocation delta + pool out), a property the test suite checks
with hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "PowerAllocation",
    "distribute_uniform",
    "distribute_weighted",
    "fit_to_budget",
]

# Pools below this many watts across a whole cluster are considered spent;
# guards the water-filling loops against float-residue spinning.
_POOL_EPSILON_W = 1.0e-9


@dataclass(frozen=True)
class PowerAllocation:
    """A policy's output: per-host node power caps plus bookkeeping.

    Attributes
    ----------
    policy_name / mix_name:
        Identification.
    budget_w:
        The system budget the policy was given.
    caps_w:
        Per-host node power caps (W), already inside the RAPL-settable
        range.
    unallocated_w:
        Budget the policy chose not to (or could not) place.
    notes:
        Free-form diagnostic scalars (per-policy internals worth logging).
    """

    policy_name: str
    mix_name: str
    budget_w: float
    caps_w: np.ndarray
    unallocated_w: float = 0.0
    notes: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.caps_w.ndim != 1 or self.caps_w.size == 0:
            raise ValueError("caps_w must be a non-empty 1-D array")
        if not np.all(np.isfinite(self.caps_w)):
            raise ValueError("caps_w must be finite")

    @property
    def total_allocated_w(self) -> float:
        """Sum of caps."""
        return float(np.sum(self.caps_w))

    def within_budget(self, tolerance_w: float = 1.0e-6) -> bool:
        """Whether the allocation respects the system budget."""
        return self.total_allocated_w <= self.budget_w + tolerance_w


def distribute_uniform(
    pool_w: float,
    allocation_w: np.ndarray,
    upper_bound_w: np.ndarray,
) -> Tuple[np.ndarray, float]:
    """Water-fill ``pool_w`` in equal shares among unsaturated hosts.

    Each round grants every host below its bound an equal share of the
    remaining pool, clipped at its bound; freed share from saturating
    hosts rolls into the next round.  Returns ``(new allocation, leftover
    pool)``; leftover is nonzero only when every host reached its bound.
    """
    alloc = np.asarray(allocation_w, dtype=float).copy()
    bounds = np.asarray(upper_bound_w, dtype=float)
    if alloc.shape != bounds.shape:
        raise ValueError("allocation and bounds must share a shape")
    if np.any(bounds + 1e-12 < alloc):
        raise ValueError("upper bounds must be >= current allocation")
    pool = float(pool_w)
    if pool < 0:
        raise ValueError("pool must be non-negative")
    for _ in range(alloc.size + 1):
        if pool <= _POOL_EPSILON_W:
            break
        needy = np.flatnonzero(bounds - alloc > _POOL_EPSILON_W)
        if needy.size == 0:
            break
        share = pool / needy.size
        grant = np.minimum(share, bounds[needy] - alloc[needy])
        alloc[needy] += grant
        pool -= float(np.sum(grant))
    return alloc, max(pool, 0.0)


def distribute_weighted(
    pool_w: float,
    allocation_w: np.ndarray,
    weights: np.ndarray,
    upper_bound_w: np.ndarray,
) -> Tuple[np.ndarray, float]:
    """Water-fill ``pool_w`` proportionally to ``weights``, respecting bounds.

    Hosts with non-positive weight receive nothing.  Rounds repeat with
    saturated hosts removed until the pool is spent or no weighted host
    has headroom.  Returns ``(new allocation, leftover pool)``.
    """
    alloc = np.asarray(allocation_w, dtype=float).copy()
    bounds = np.asarray(upper_bound_w, dtype=float)
    w = np.asarray(weights, dtype=float)
    if not (alloc.shape == bounds.shape == w.shape):
        raise ValueError("allocation, weights, and bounds must share a shape")
    if np.any(bounds + 1e-12 < alloc):
        raise ValueError("upper bounds must be >= current allocation")
    pool = float(pool_w)
    if pool < 0:
        raise ValueError("pool must be non-negative")
    for _ in range(alloc.size + 1):
        if pool <= _POOL_EPSILON_W:
            break
        eligible = np.flatnonzero((bounds - alloc > _POOL_EPSILON_W) & (w > 0))
        if eligible.size == 0:
            break
        total_weight = float(np.sum(w[eligible]))
        # Normalise before scaling by the pool: multiplying first can
        # underflow to subnormals for tiny weights and break conservation.
        share = pool * (w[eligible] / total_weight)
        grant = np.minimum(share, bounds[eligible] - alloc[eligible])
        alloc[eligible] += grant
        pool -= float(np.sum(grant))
    return alloc, max(pool, 0.0)


def fit_to_budget(
    targets_w: np.ndarray,
    budget_w: float,
    floor_w: float,
) -> np.ndarray:
    """Scale targets down onto a budget without going below the floor.

    Implements the paper's JobAdaptive overflow rule ("all nodes in the
    job have their power caps reduced by the percentage ... that corrects
    that violation"): the above-floor portion of every target is scaled by
    a common factor; hosts pinned at the floor drop out and the factor is
    recomputed, which terminates in at most ``hosts`` rounds.

    If even all-floor allocation exceeds the budget, the all-floor vector
    is returned (RAPL cannot go lower; the budget is infeasible).
    """
    targets = np.asarray(targets_w, dtype=float).copy()
    budget = float(budget_w)
    floor = float(floor_w)
    if np.any(targets + 1e-12 < floor):
        raise ValueError("targets must be at or above the floor")
    if float(np.sum(targets)) <= budget:
        return targets
    if targets.size * floor >= budget:
        return np.full_like(targets, floor)
    scaled = targets.copy()
    for _ in range(targets.size + 1):
        excess = float(np.sum(scaled)) - budget
        if excess <= _POOL_EPSILON_W:
            break
        above = scaled - floor
        movable = float(np.sum(above))
        if movable <= _POOL_EPSILON_W:
            break
        factor = max(0.0, 1.0 - excess / movable)
        scaled = floor + above * factor
    return scaled
