"""The policy abstraction.

A policy maps a mix characterization and a system power budget to per-host
node power caps.  Policies never see the simulator or the hardware model —
only GEOPM-report-derived characterization arrays — which mirrors where
they would run in production (inside the resource manager, consuming job
runtime reports) and is what makes the paper's comparison fair: every
policy gets exactly the same information its real counterpart would have.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.allocation import PowerAllocation
from repro.units import ensure_positive

__all__ = ["Policy"]


class Policy(abc.ABC):
    """Base class for system-wide power management policies.

    Subclasses implement :meth:`_allocate`; the public :meth:`allocate`
    wraps it with input validation and the RAPL clamp so every policy's
    output is guaranteed programmable.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Whether the policy may move power across job boundaries.
    system_power_aware: bool = False

    #: Whether the policy uses performance-aware (balancer) characterization.
    application_aware: bool = False

    def allocate(self, char: MixCharacterization, budget_w: float) -> PowerAllocation:
        """Compute per-host caps for ``budget_w`` on the characterized mix."""
        ensure_positive(budget_w, "budget_w")
        allocation = self._allocate(char, float(budget_w))
        caps = np.clip(allocation.caps_w, char.min_cap_w, char.tdp_w)
        if not np.array_equal(caps, allocation.caps_w):
            allocation = PowerAllocation(
                policy_name=allocation.policy_name,
                mix_name=allocation.mix_name,
                budget_w=allocation.budget_w,
                caps_w=caps,
                unallocated_w=allocation.unallocated_w,
                notes=allocation.notes,
            )
        return allocation

    @abc.abstractmethod
    def _allocate(self, char: MixCharacterization, budget_w: float) -> PowerAllocation:
        """Policy-specific allocation; returns caps before the RAPL clamp."""

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, bool]:
        """Visibility flags, as in the paper's policy comparison table."""
        return {
            "system_power_aware": self.system_power_aware,
            "application_aware": self.application_aware,
        }

    @staticmethod
    def uniform_share(char: MixCharacterization, budget_w: float) -> float:
        """The per-host uniform share — step 1 of every sharing policy."""
        return budget_w / char.host_count
