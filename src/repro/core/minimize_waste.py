"""MinimizeWaste: system-aware, performance-agnostic power sharing.

Paper §III-B: "MinimizeWaste shares system power across hosts, to minimize
unused power budget.  This policy is intended to statically emulate the
dynamic approach documented in SLURM's real-time power management feature,
which is full-system-aware.  Our policy first distributes power caps across
jobs.  It then reduces the budget for low-power jobs to minimize unused
(wasted) power budgets, and evenly redistributes power to high-power jobs.
The power is removed from and added to jobs based on the observed
performance-agnostic power usage (obtained from GEOPM reports) for each
workload.  Surplus power is redistributed, weighted by the difference
between minimum settable power and currently assigned power."

Concretely:

1. uniform per-host share of the system budget;
2. hosts observed to draw less than their share are trimmed to their
   observed (monitor) power — the trimmed power becomes the surplus pool;
3. the pool is granted to power-bound hosts (observed power above their
   share), weighted by ``assigned - floor``, bounded by their observed
   power (the policy has no performance data, so observed draw is the
   only sensible ceiling).

Any pool that remains (every host at its observed power) is left
unallocated: the policy minimises *waste*, it does not invent demand.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.allocation import PowerAllocation, distribute_weighted
from repro.core.policy import Policy

__all__ = ["MinimizeWastePolicy"]


class MinimizeWastePolicy(Policy):
    """Trim to observed power, redistribute surplus to power-bound hosts."""

    name = "MinimizeWaste"
    system_power_aware = True
    application_aware = False

    def _allocate(self, char: MixCharacterization, budget_w: float) -> PowerAllocation:
        uniform = self.uniform_share(char, budget_w)
        observed = char.monitor_power_w
        floor = char.min_cap_w

        # Step 1-2: uniform, then trim over-provisioned hosts to observed
        # draw (never below the RAPL floor).
        trimmed = np.minimum(uniform, np.maximum(observed, floor))
        pool = budget_w - float(np.sum(trimmed))
        pool = max(pool, 0.0)

        # Step 3: grant the pool to hosts whose observed draw exceeds the
        # assignment, weighted by distance from the floor.
        bounds = np.maximum(observed, trimmed)
        weights = np.where(observed > trimmed, trimmed - floor, 0.0)
        caps, leftover = distribute_weighted(pool, trimmed, weights, bounds)

        return PowerAllocation(
            policy_name=self.name,
            mix_name=char.mix_name,
            budget_w=budget_w,
            caps_w=caps,
            unallocated_w=leftover,
            notes={
                "uniform_share_w": uniform,
                "trimmed_pool_w": pool,
            },
        )
