"""The paper's contribution: system-wide power management policies.

Five policies with increasing visibility (paper §III):

=====================  =====================  ==============================
Policy                 System-power aware     Application-performance aware
=====================  =====================  ==============================
``Precharacterized``   no                     no (static per-job cap)
``StaticCaps``         yes (uniform)          no
``MinimizeWaste``      yes                    no (observed power only)
``JobAdaptive``        no (per-job silo)      yes
``MixedAdaptive``      yes                    yes — the proposed policy
=====================  =====================  ==============================

Every policy is a pure function from (mix characterization, system budget)
to per-host node power caps — see :class:`~repro.core.policy.Policy` — so
they are deterministic, unit-testable, and directly comparable.  Shared
water-filling/redistribution arithmetic lives in :mod:`repro.core.allocation`.
"""

from repro.core.allocation import (
    PowerAllocation,
    distribute_uniform,
    distribute_weighted,
    fit_to_budget,
)
from repro.core.policy import Policy
from repro.core.static_caps import StaticCapsPolicy
from repro.core.precharacterized import PrecharacterizedPolicy
from repro.core.minimize_waste import MinimizeWastePolicy
from repro.core.job_adaptive import JobAdaptivePolicy
from repro.core.mixed_adaptive import MixedAdaptivePolicy
from repro.core.frequency_capped import FrequencyCappedPolicy
from repro.core.registry import POLICY_NAMES, create_policy, default_policies

__all__ = [
    "PowerAllocation",
    "distribute_uniform",
    "distribute_weighted",
    "fit_to_budget",
    "Policy",
    "StaticCapsPolicy",
    "PrecharacterizedPolicy",
    "MinimizeWastePolicy",
    "JobAdaptivePolicy",
    "MixedAdaptivePolicy",
    "FrequencyCappedPolicy",
    "POLICY_NAMES",
    "create_policy",
    "default_policies",
]
