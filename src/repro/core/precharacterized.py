"""Precharacterized: per-job static caps with no system awareness.

Paper §III-B: "a user pre-characterizes a workload, and submits the job
with a cap equal to the average power consumption at the most power-hungry
node.  This policy does not consider system-wide power limits."

Because it ignores the budget, the policy over-subscribes the system at
every budget below ``max`` ("The Precharacterized policy is unable to stay
within the system-wide budget for all except the high power cap case, so
it is omitted from further plots" — §VI-A).  The allocation records the
overshoot in its notes so the Fig. 7 bars can show bars above 100 %.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.allocation import PowerAllocation
from repro.core.policy import Policy

__all__ = ["PrecharacterizedPolicy"]


class PrecharacterizedPolicy(Policy):
    """Every host capped at its job's most power-hungry observed node."""

    name = "Precharacterized"
    system_power_aware = False
    application_aware = False

    def _allocate(self, char: MixCharacterization, budget_w: float) -> PowerAllocation:
        job_cap = char.job_max_monitor_power_w()
        caps = job_cap[char.host_job_index()].astype(float)
        total = float(np.sum(caps))
        return PowerAllocation(
            policy_name=self.name,
            mix_name=char.mix_name,
            budget_w=budget_w,
            caps_w=caps,
            unallocated_w=max(budget_w - total, 0.0),
            notes={"overshoot_w": max(total - budget_w, 0.0)},
        )
