"""FrequencyCapped: an EAR-style uniform-frequency alternative policy.

The paper's related work (§VII-B) surveys frequency-oriented site tools —
EAR "detects application loops and scales frequency for reduced energy
consumption".  Some sites cap *frequency* uniformly instead of power:
every node gets the largest common frequency the budget can sustain.
This extension policy implements that scheme over the RAPL substrate so
it can be compared head-to-head with the paper's power-oriented policies.

Mechanically: binary-search the highest frequency ``f`` such that the sum
over hosts of the power needed to reach ``f`` (given each host's activity
and part quality, as reflected in its observed power) fits the budget;
then cap each host at exactly its ``f``-sustaining power.

The contrast with ``StaticCaps`` is instructive: a uniform *power* cap
lets efficient parts clock higher (performance variance, uniform power);
a uniform *frequency* cap equalises performance and lets power vary —
under hardware variation the two divide the same budget differently.

The policy is deliberately not in the paper's registry (it is not one of
the five evaluated policies); construct it directly.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.allocation import PowerAllocation
from repro.core.policy import Policy
from repro.hardware.node import NodePowerModel

__all__ = ["FrequencyCappedPolicy"]


class FrequencyCappedPolicy(Policy):
    """Uniform frequency, per-host power — the EAR-style alternative.

    Parameters
    ----------
    power_model:
        Node power model used to translate frequency targets into caps.
        Unlike the paper's five policies this one needs a hardware model
        (frequency is not observable from characterization data alone);
        it receives the same model the site calibrated for its nodes.
    efficiencies:
        Per-host variation multipliers for the allocated nodes, in mix
        host order.
    kappas:
        Per-host activity factors (from the workload layout).
    """

    name = "FrequencyCapped"
    system_power_aware = True
    application_aware = False

    def __init__(self, power_model: NodePowerModel, efficiencies: np.ndarray,
                 kappas: np.ndarray) -> None:
        eff = np.asarray(efficiencies, dtype=float)
        kap = np.asarray(kappas, dtype=float)
        if eff.shape != kap.shape:
            raise ValueError("efficiencies and kappas must share a shape")
        self._power_model = power_model
        self._eff = eff
        self._kappa = kap

    def _power_for_freq(self, freq_ghz: float) -> np.ndarray:
        """Per-host node power that sustains ``freq_ghz``."""
        return self._power_model.power_at_freq(freq_ghz, self._kappa, self._eff)

    def _allocate(self, char: MixCharacterization, budget_w: float) -> PowerAllocation:
        if char.host_count != self._eff.size:
            raise ValueError(
                f"policy built for {self._eff.size} hosts, characterization "
                f"has {char.host_count}"
            )
        spec = self._power_model.spec
        lo, hi = spec.min_freq_ghz, spec.turbo_freq_ghz

        def total_power(freq: float) -> float:
            caps = self._power_model.clamp_cap(self._power_for_freq(freq))
            return float(np.sum(caps))

        if total_power(hi) <= budget_w:
            freq = hi
        elif total_power(lo) >= budget_w:
            freq = lo
        else:
            for _ in range(60):  # ~1e-18 GHz resolution; exact enough
                mid = 0.5 * (lo + hi)
                if total_power(mid) <= budget_w:
                    lo = mid
                else:
                    hi = mid
            freq = lo

        caps = self._power_model.clamp_cap(self._power_for_freq(freq))
        total = float(np.sum(caps))
        # The floor clamp can push the total over a very tight budget;
        # scale back onto it (hosts at the floor stay at the floor).
        if total > budget_w:
            from repro.core.allocation import fit_to_budget

            caps = fit_to_budget(caps, budget_w, char.min_cap_w)
        return PowerAllocation(
            policy_name=self.name,
            mix_name=char.mix_name,
            budget_w=budget_w,
            caps_w=caps,
            unallocated_w=max(budget_w - float(np.sum(caps)), 0.0),
            notes={"target_freq_ghz": freq},
        )
