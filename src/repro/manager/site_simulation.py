"""Time-stepped site simulation: arrivals, admission, dispatch, telemetry.

The capstone integration of the resource-manager substrate: jobs *arrive
over time*, the power-aware admission controller decides what starts
whenever capacity frees up, admitted batches run under a policy, and the
site's power telemetry accumulates into the Fig. 1-style record.  This is
the operating loop the paper's stack serves, driven end to end:

    arrivals -> JobQueue -> PowerAwareAdmission -> Scheduler
             -> Policy allocation -> simulate_mix -> telemetry

The simulation is event-stepped at batch granularity: whenever the
cluster drains, the next admission round runs against everything that has
arrived by then.  (Co-scheduling newly admitted jobs alongside running
ones would need preemptive re-allocation, which the paper leaves to
future work; batch granularity keeps the model inside what the paper's
policies define.)

The long-lived, event-driven form of this loop lives in
:mod:`repro.stream`: the streaming site engine reuses
:func:`execute_admitted_batch` — the per-batch physics extracted here —
so a replayed arrival list is bit-identical between the two, while the
stream engine adds sustained-load behaviours (rolling admission on
capacity-freed events, mid-stream budget changes, backpressure) this
closed batch call cannot express.

Fault replay
------------
An optional :class:`~repro.faults.schedule.FaultSchedule` turns the shift
into a resilience run.  Each admission round queries the schedule at the
site clock: the facility budget in force (drops, ramps, restores), the
failed-host set (scheduling moves to the healthy subset and the failed
hosts are quarantined for the batch), and whether a sensor dropout has
blinded characterization (the batch then plans through the
:func:`~repro.faults.degradation.plan_with_degradation` ladder's
characterization-free clamp tier).  Engine-applicable faults (stuck or
erroring caps, noise bursts) are re-clocked into the batch's
:class:`~repro.sim.execution.SimulationOptions` via
:meth:`~repro.faults.schedule.FaultSchedule.engine_slice`.  Every fault
hook is gated on :attr:`~repro.faults.schedule.FaultSchedule.active`, so
``None`` and an *empty* schedule take the identical fault-free code path
and produce bit-identical results.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.characterization.mix_characterization import characterize_mix
from repro.core.policy import Policy
from repro.manager.admission import AdmissionDecision, PowerAwareAdmission
from repro.manager.power_manager import PowerManager, apply_job_runtime
from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.manager.scheduler import ScheduledMix, Scheduler
from repro.hardware.cluster import Cluster
from repro.sim.execution import SimulationOptions
from repro.telemetry import emit, enabled, get_registry, span
from repro.units import ensure_positive
from repro.workload.job import WorkloadMix

__all__ = [
    "Arrival",
    "BatchRecord",
    "BatchExecution",
    "BatchPlanner",
    "PlannedBatch",
    "SiteSimulationResult",
    "budget_only_schedule",
    "execute_admitted_batch",
    "execute_planned_batches",
    "finish_planned_batch",
    "plan_admitted_batch",
    "plan_shift_batch",
    "run_site_simulation",
    "shift_rounds",
]


@dataclass(frozen=True)
class Arrival:
    """One job submission with its arrival time."""

    time_s: float
    request: JobRequest

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("arrival time must be non-negative")


@dataclass(frozen=True)
class BatchRecord:
    """One admission round and its execution.

    The trailing defaulted fields are only populated on fault-replay
    runs; a fault-free shift records the historical six fields exactly as
    before.
    """

    start_s: float
    end_s: float
    admitted: Tuple[str, ...]
    deferred: Tuple[str, ...]
    mean_power_w: float
    energy_j: float
    #: Facility budget in force when the batch launched (0 = not recorded).
    budget_w: float = 0.0
    #: Degradation-ladder tier that produced the caps ("none" fault-free).
    degradation_tier: str = "none"
    #: Hosts quarantined (out of the schedulable pool) during the batch.
    quarantined: Tuple[int, ...] = ()
    #: Watt-seconds above the *launch* budget after planning — the
    #: post-re-plan compliance quantity (zero on feasible scenarios for
    #: system-power-aware policies).
    planned_overshoot_ws: float = 0.0
    #: Total watt-seconds over budget including the reaction window of
    #: mid-batch budget drops (the pre-re-plan exposure).
    overshoot_ws: float = 0.0
    #: Simulated decision latency charged by degradation-ladder retries.
    backoff_s: float = 0.0

    @property
    def duration_s(self) -> float:
        """Wall time of the batch."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class BatchExecution:
    """One admitted batch, executed — the unit both site loops share.

    ``completion_s[i]`` is job ``i``'s completion clock **including** the
    degradation ladder's decision latency (``backoff_s``): retries delay
    the launch, so every job finishes no later than the batch's
    ``record.end_s`` (the job on the critical path finishes exactly
    then).
    """

    record: BatchRecord
    job_names: Tuple[str, ...]
    completion_s: Tuple[float, ...]


@dataclass(frozen=True)
class SiteSimulationResult:
    """Everything the simulated shift produced."""

    policy_name: str
    budget_w: float
    batches: Tuple[BatchRecord, ...]
    completed: Tuple[str, ...]
    never_admitted: Tuple[str, ...]
    job_turnaround_s: Dict[str, float]
    #: Name of the replayed fault schedule ("" on fault-free shifts).
    fault_schedule_name: str = ""
    #: Jobs still pending (or not yet arrived) when the shift hit its
    #: ``max_batches`` round limit — unfinished work, *not* jobs the
    #: admission controller rejected as unschedulable.
    truncated: Tuple[str, ...] = ()

    @property
    def makespan_s(self) -> float:
        """Clock time from first arrival to last completion."""
        return float(self.batches[-1].end_s) if self.batches else 0.0

    def total_overshoot_ws(self) -> float:
        """Watt-seconds over budget across the shift (reaction included)."""
        return float(sum(b.overshoot_ws for b in self.batches))

    def planned_overshoot_ws(self) -> float:
        """Watt-seconds over the launch budget after re-planning.

        The post-stage-2 compliance quantity: zero on feasible scenarios
        whenever the policy is system-power-aware.
        """
        return float(sum(b.planned_overshoot_ws for b in self.batches))

    def degraded_batches(self) -> Tuple[int, ...]:
        """Indices of batches planned below the re-plan tier."""
        return tuple(
            i for i, b in enumerate(self.batches)
            if b.degradation_tier not in ("none", "replan")
        )

    @property
    def total_energy_j(self) -> float:
        """Energy across all batches."""
        return float(sum(b.energy_j for b in self.batches))

    def mean_turnaround_s(self) -> float:
        """Mean submission-to-completion time over completed jobs."""
        if not self.job_turnaround_s:
            return 0.0
        return float(np.mean(list(self.job_turnaround_s.values())))

    def peak_power_w(self) -> float:
        """Highest batch mean power (the budget-compliance check)."""
        return max((b.mean_power_w for b in self.batches), default=0.0)


def execute_admitted_batch(
    *,
    clock: float,
    batch_index: int,
    admitted: Sequence[JobRequest],
    decision: AdmissionDecision,
    batch_cluster: Cluster,
    policy: Policy,
    budget_w: float,
    batch_budget_w: float,
    quarantined: Tuple[int, ...],
    manager: PowerManager,
    noise_std: float,
    run_seed: Optional[int],
    fault_schedule,
    degradation,
    reaction_s: float,
    injecting: bool,
) -> BatchExecution:
    """Schedule, plan, and execute one admitted batch at ``clock``.

    The per-batch physics of the shift loop, extracted so the streaming
    site engine (:mod:`repro.stream.engine`) runs *exactly* this code:
    identical scheduling shuffle (``shuffle_seed=batch_index``), identical
    noise-seed derivation, identical degradation/overshoot accounting.
    Replaying one arrival list through either loop therefore produces
    bit-identical batch records.

    ``budget_w`` is the budget the planner quotes on fault-free launches
    (the batch's share of the facility budget); ``batch_budget_w`` the
    fault-adjusted budget in force at launch, used by the degradation
    ladder and the compliance accounting.
    """
    mix = WorkloadMix(
        name=f"batch-{batch_index}",
        jobs=tuple(r.to_job() for r in admitted),
    )
    scheduled = Scheduler(
        batch_cluster, shuffle_seed=batch_index
    ).allocate(mix)
    if run_seed is None:
        batch_seed = batch_index
    else:
        from repro.parallel.seeding import child_seed

        batch_seed = child_seed(run_seed, "site-batch", batch_index)
    tier = "none"
    backoff_s = 0.0
    with span("manager.site.batch", batch=batch_index,
              admitted=len(decision.admitted),
              quarantined=len(quarantined)) as batch_sp:
        if not injecting:
            char = characterize_mix(
                mix, scheduled.efficiencies, manager.model
            )
            run = manager.launch(
                scheduled, policy, budget_w, characterization=char,
                options=SimulationOptions(
                    noise_std=noise_std, seed=batch_seed
                ),
            )
            result = run.result
        else:
            from repro.faults.degradation import plan_with_degradation
            from repro.faults.schedule import FaultKind
            from repro.sim.execution import simulate_mix

            # Plan through the degradation ladder: sensor dropouts
            # blind characterization, forcing the clamp tier.
            blinded = bool(fault_schedule.sensor_dropout_at(clock))
            char = None if blinded else characterize_mix(
                mix, scheduled.efficiencies, manager.model
            )
            plan = plan_with_degradation(
                policy, batch_budget_w, characterization=char,
                host_count=scheduled.mix.total_nodes,
                min_cap_w=manager.model.power_model.min_cap_w,
                tdp_w=manager.model.power_model.tdp_w,
                config=degradation,
            )
            tier, backoff_s = plan.tier, plan.backoff_s
            caps = plan.caps_w
            if char is not None and plan.tier == "replan" \
                    and policy.application_aware:
                caps = apply_job_runtime(char, caps)
            result = simulate_mix(
                scheduled.mix, caps, scheduled.efficiencies,
                manager.model,
                SimulationOptions(
                    noise_std=noise_std, seed=batch_seed,
                    fault_schedule=fault_schedule.engine_slice(clock),
                ),
                policy_name=policy.name, budget_w=batch_budget_w,
            )
        duration = float(np.max(result.job_elapsed_s)) + backoff_s
        planned_overshoot_ws = 0.0
        overshoot_ws = 0.0
        if injecting:
            # Post-plan compliance against the launch budget, judged
            # on the iteration power trace...
            planned_overshoot_ws = result.budget_overshoot_watt_seconds(
                batch_budget_w
            )
            overshoot_ws = planned_overshoot_ws
            # ...plus the reaction window of any budget drop landing
            # mid-batch, charged at the batch's mean draw until the
            # actuator responds.
            mean_p = result.mean_system_power_w
            for event in fault_schedule.of_kind(FaultKind.BUDGET_CHANGE):
                if clock < event.time_s < clock + duration:
                    dipped = fault_schedule.budget_at(
                        max(event.time_s, event.end_s), budget_w
                    )
                    window = min(
                        reaction_s, clock + duration - event.time_s
                    )
                    overshoot_ws += max(0.0, mean_p - dipped) * window
        if batch_sp is not None:
            batch_sp.set_attribute("degradation_tier", tier)
            batch_sp.set_attribute("duration_s", duration)
    record = BatchRecord(
        start_s=clock,
        end_s=clock + duration,
        admitted=decision.admitted,
        deferred=decision.deferred,
        mean_power_w=result.mean_system_power_w,
        energy_j=result.total_energy_j,
        budget_w=float(batch_budget_w),
        degradation_tier=tier,
        quarantined=quarantined,
        planned_overshoot_ws=planned_overshoot_ws,
        overshoot_ws=overshoot_ws,
        backoff_s=backoff_s,
    )
    if enabled():
        registry = get_registry()
        utilization = result.mean_system_power_w / batch_budget_w
        registry.gauge("manager.site.utilization").set(utilization)
        registry.histogram("manager.site.batch_duration_s").observe(duration)
        registry.counter("manager.site.batches").inc()
        registry.counter("manager.site.jobs_completed").inc(
            len(result.job_names)
        )
        emit(
            "manager.site", "batch_complete",
            batch=batch_index, policy=policy.name,
            admitted=len(decision.admitted),
            deferred=len(decision.deferred),
            duration_s=duration,
            mean_power_w=float(result.mean_system_power_w),
            utilization=utilization,
        )
    # The ladder's decision latency delays the launch, so it is charged
    # to every job's completion: elapsed + backoff keeps the float
    # operation order of ``duration`` and lands the critical-path job
    # exactly on ``record.end_s`` (fault-free, backoff is 0.0 and the
    # historical values are reproduced bit-for-bit).
    completions = tuple(
        clock + (float(elapsed) + backoff_s)
        for elapsed in result.job_elapsed_s
    )
    return BatchExecution(
        record=record,
        job_names=tuple(result.job_names),
        completion_s=completions,
    )


@dataclass(frozen=True)
class PlannedBatch:
    """An admitted batch, planned but not yet simulated.

    The batched rolling path of the streaming engine splits
    :func:`execute_admitted_batch` into stages so the expensive middle —
    the engine call — can be shared across all co-resident batches:
    :func:`plan_admitted_batch` produces one of these per batch,
    :func:`execute_planned_batches` runs all of them through
    :func:`~repro.sim.batch.simulate_layout_batch` grouped by job
    structure, and :func:`finish_planned_batch` turns each row back into
    the :class:`BatchExecution` the event loop consumes.  Every numeric
    field is derived exactly as the monolithic path derives it, so the
    staged pipeline is bit-identical to per-batch
    :func:`execute_admitted_batch` calls (pinned by the stream property
    suite).

    The trailing defaulted fields extend the stage split to the two
    callers beyond the original fault-free stream case:

    * ``group_key`` is the cross-site grouping context — the "cluster
      dimension" of the fused facility engine.  Batches only fuse into
      one stacked pass when it matches; ``None`` (shared physics) fuses
      freely, which is correct whenever model and noise settings are
      global, because everything else (caps, efficiencies, seeds,
      budgets) is already per-row.
    * ``tier`` / ``backoff_s`` / ``fault_schedule`` / ``reaction_s`` /
      ``sim_budget_w`` carry the degradation-ladder outcome and the
      compliance-accounting inputs of a *budget-only* fault batch (no
      engine-applicable faults, no failed hosts, no sensor dropouts —
      the case whose engine call is still the fault-free physics).
      Fault-free batches leave them at their defaults and reproduce the
      historical records bit-for-bit.
    """

    clock: float
    batch_index: int
    decision: AdmissionDecision
    scheduled: "ScheduledMix"
    effective_caps: np.ndarray
    batch_seed: int
    policy: Policy
    budget_w: float
    batch_budget_w: float
    quarantined: Tuple[int, ...]
    group_key: object = None
    tier: str = "none"
    backoff_s: float = 0.0
    fault_schedule: object = None
    reaction_s: float = 1.0
    #: Budget quoted on the result metadata (``None`` → ``budget_w``);
    #: the scalar path quotes ``batch_budget_w`` on fault runs.
    sim_budget_w: Optional[float] = None

    @property
    def mix(self) -> WorkloadMix:
        """The batch's workload mix (one entry per admitted job)."""
        return self.scheduled.mix


class BatchPlanner:
    """Memoised fault-free planning for a stream of admitted batches.

    Characterization and cap allocation depend only on the job *shapes*
    (kernel config, node count, iterations), the host-efficiency vector,
    and the budget — never on job or batch names — so a sustained stream
    drawing from a few job classes plans each (shape, hosts, budget)
    combination once and replays it from the memo thereafter.  This is
    the planning analogue of the admission controller's per-(config,
    nodes) estimate cache, and it reuses the same insight: streams are
    repetitive, physics is deterministic.

    Memo hits return the *identical* caps array (read-only) and a
    characterization re-labelled to the batch's mix name via
    ``dataclasses.replace`` — every numeric field byte-for-byte the one a
    fresh :func:`characterize_mix` + :meth:`PowerManager.plan` +
    :func:`apply_job_runtime` chain would produce, because that is
    exactly what populated the memo.
    """

    def __init__(self, manager: PowerManager, policy: Policy) -> None:
        self.manager = manager
        self.policy = policy
        # shape_key -> {"layout": HostLayout,
        #               "by_eff": {eff bytes -> {"char": ...,
        #                                        "caps": {budget -> caps}}}}
        # One nested entry per shape so the (potentially expensive)
        # shape-key tuple — it hashes every KernelConfig field — is
        # hashed once per plan call, not once per memo level.
        self._memo: Dict[tuple, dict] = {}
        #: Characterization-level memo hits/misses (the physics-pass
        #: savings a shared planner delivers across batches and, in the
        #: fused facility engine, across clusters).
        self.char_hits = 0
        self.char_misses = 0

    def _lookup(self, scheduled: "ScheduledMix") -> dict:
        """The per-(shape, efficiencies) memo slot, characterized.

        Seeds the mix's layout memo from the per-shape cache and counts
        a characterization hit or miss; shared by :meth:`plan` and
        :meth:`characterization`.
        """
        mix = scheduled.mix
        shape_key = tuple(
            (job.config, job.node_count, job.iterations) for job in mix.jobs
        )
        entry = self._memo.get(shape_key)
        if entry is None:
            entry = {"layout": mix.layout(),
                     "iters": mix.common_iterations(), "by_eff": {}}
            self._memo[shape_key] = entry
        else:
            object.__setattr__(mix, "_layout", entry["layout"])
            object.__setattr__(mix, "_common_iterations", entry["iters"])
        eff_key = scheduled.efficiencies.tobytes()
        sub = entry["by_eff"].get(eff_key)
        if sub is None:
            self.char_misses += 1
            char = characterize_mix(
                mix, scheduled.efficiencies, self.manager.model
            )
            sub = {"char": char, "caps": {}}
            entry["by_eff"][eff_key] = sub
        else:
            self.char_hits += 1
        return sub

    def characterization(self, scheduled: "ScheduledMix"):
        """The memoised characterization alone (no cap allocation).

        The budget-only fault path plans its caps through the
        degradation ladder rather than the per-budget caps memo (the
        faulted budget varies per epoch), but its characterization is
        the same pure function of (shapes, efficiencies, model) —
        numerically identical to the fresh ``characterize_mix`` call the
        scalar fault path makes.
        """
        return self._lookup(scheduled)["char"]

    def plan(self, scheduled: "ScheduledMix", budget_w: float,
             relabel: bool = True):
        """Characterize + allocate, memoised.  Returns ``(char, caps)``.

        Also seeds the mix's layout memo from the per-shape cache:
        :meth:`WorkloadMix.layout` memoises per *instance*, but every
        streamed batch is a fresh mix object, so without this the layout
        would be rebuilt per batch even though it depends only on the
        job shapes (names appear nowhere in a :class:`HostLayout`).
        Sharing one read-only layout across same-shape batches also lets
        the vectorised step's stacked-layout cache hit by identity.

        ``relabel=False`` skips rewriting a memo-hit characterization's
        ``mix_name`` to the current batch's name — callers that discard
        the characterization (the streaming planner) shouldn't pay the
        ``dataclasses.replace`` on every batch.
        """
        mix = scheduled.mix
        sub = self._lookup(scheduled)
        char = sub["char"]
        if relabel and char.mix_name != mix.name:
            char = dataclasses.replace(char, mix_name=mix.name)
        budget_key = float(budget_w)
        caps = sub["caps"].get(budget_key)
        if caps is None:
            allocation = self.manager.plan(
                scheduled, self.policy, budget_w, char
            )
            caps = allocation.caps_w
            if self.policy.application_aware:
                caps = apply_job_runtime(char, caps)
            caps = np.asarray(caps, dtype=float)
            caps.setflags(write=False)
            sub["caps"][budget_key] = caps
        return char, caps


#: Shared read-only ``arange(n)`` vectors for the uniform-hosts fast
#: path of :func:`plan_admitted_batch` (one per batch size seen).
_IDENTITY_ORDERS: Dict[int, np.ndarray] = {}


def _identity_order(n: int) -> np.ndarray:
    order = _IDENTITY_ORDERS.get(n)
    if order is None:
        order = np.arange(n)
        order.setflags(write=False)
        _IDENTITY_ORDERS[n] = order
    return order


def plan_admitted_batch(
    *,
    clock: float,
    batch_index: int,
    admitted: Sequence[JobRequest],
    decision: AdmissionDecision,
    host_efficiencies: np.ndarray,
    policy: Policy,
    budget_w: float,
    batch_budget_w: float,
    quarantined: Tuple[int, ...],
    manager: PowerManager,
    run_seed: Optional[int],
    planner: Optional[BatchPlanner] = None,
    uniform_hosts: bool = False,
) -> PlannedBatch:
    """Stage 1 of the fault-free batch pipeline: schedule and plan.

    Replicates :func:`execute_admitted_batch`'s scheduling bit-for-bit
    without constructing the node-subset :class:`Cluster` or a
    :class:`Scheduler`: on a subset of exactly ``mix.total_nodes`` nodes
    the scheduler's shuffle is a full permutation of ``arange(n)`` drawn
    from ``default_rng(batch_index)``, and the efficiencies are the
    subset's rows gathered through it.  ``host_efficiencies`` must be the
    cluster efficiencies of the batch's hosts in ascending host-id order
    — the order :meth:`Cluster.subset` would have copied them in.

    ``uniform_hosts=True`` asserts every entry of ``host_efficiencies``
    is equal (a homogeneous cluster, e.g. ``variation=None``).  The
    shuffle then permutes an all-equal vector — the identity on every
    physical input — so the permutation draw is skipped and the caller's
    array is bound directly (it must be treated as read-only).  Every
    simulated quantity is unchanged; only the (physics-inert, never
    recorded) ``node_ids`` order differs from the scalar path.
    """
    mix = WorkloadMix(
        name=f"batch-{batch_index}",
        jobs=tuple(r.to_job() for r in admitted),
    )
    n = mix.total_nodes
    if uniform_hosts:
        scheduled = ScheduledMix.trusted(
            mix, _identity_order(n), host_efficiencies
        )
    else:
        eff = np.asarray(host_efficiencies, dtype=float)
        if eff.shape != (n,):
            raise ValueError(
                f"host_efficiencies must have shape ({n},), got {eff.shape}"
            )
        order = np.arange(n)
        # Same stream as ``default_rng(batch_index)`` (an int seed is
        # handed straight to PCG64) but skips default_rng's
        # seed-normalisation layer — measurable at thousands of batches
        # per shift.
        np.random.Generator(np.random.PCG64(batch_index)).shuffle(order)
        scheduled = ScheduledMix.trusted(mix, order, eff[order].copy())
    if run_seed is None:
        batch_seed = batch_index
    else:
        from repro.parallel.seeding import child_seed

        batch_seed = child_seed(run_seed, "site-batch", batch_index)
    if planner is None:
        planner = BatchPlanner(manager, policy)
    _, effective_caps = planner.plan(scheduled, budget_w, relabel=False)
    return PlannedBatch(
        clock=clock,
        batch_index=batch_index,
        decision=decision,
        scheduled=scheduled,
        effective_caps=effective_caps,
        batch_seed=int(batch_seed),
        policy=policy,
        budget_w=float(budget_w),
        batch_budget_w=float(batch_budget_w),
        quarantined=quarantined,
    )


def budget_only_schedule(fault_schedule) -> bool:
    """Whether every event of a schedule is a ``BUDGET_CHANGE``.

    A budget-only schedule touches admission and compliance accounting
    but never the engine: no failed hosts, no sensor dropouts, and
    :meth:`~repro.faults.schedule.FaultSchedule.engine_slice` is ``None``
    at every clock.  Such batches can therefore stage through the
    batched pipeline — their engine call is the plain fault-free physics
    — which is exactly the shape the facility broker's composed leaf
    schedules take (allocation steps only).  Anything else falls back to
    the scalar :func:`execute_admitted_batch` path per cluster.
    """
    from repro.faults.schedule import FaultKind

    return all(
        event.kind is FaultKind.BUDGET_CHANGE
        for event in fault_schedule.events
    )


def plan_shift_batch(
    *,
    clock: float,
    batch_index: int,
    admitted: Sequence[JobRequest],
    decision: AdmissionDecision,
    cluster: Cluster,
    policy: Policy,
    budget_w: float,
    batch_budget_w: float,
    quarantined: Tuple[int, ...],
    manager: PowerManager,
    run_seed: Optional[int],
    planner: BatchPlanner,
    uniform_hosts: bool = False,
    injecting: bool = False,
    fault_schedule=None,
    degradation=None,
    reaction_s: float = 1.0,
    group_key: object = None,
) -> PlannedBatch:
    """Stage 1 for the *shift loop*: schedule and plan one batch.

    The shift loop's scheduling differs from the streaming engine's —
    :class:`Scheduler` shuffles the **whole cluster** (``arange(len(
    cluster))`` under ``default_rng(batch_index)``) and takes the first
    ``mix.total_nodes`` entries, where :func:`plan_admitted_batch`
    permutes an exactly-sized subset.  This stage replicates the shift
    loop's draw bit-for-bit, so the fused facility engine's staged
    batches match scalar :func:`shift_rounds` execution on
    heterogeneous clusters too.  ``uniform_hosts=True`` (an all-equal
    efficiency vector) skips the physically inert shuffle and binds a
    read-only slice of the cluster's efficiencies — every simulated
    quantity is unchanged; only the never-recorded ``node_ids`` differ.

    ``injecting=True`` plans a *budget-only* fault batch (see
    :func:`budget_only_schedule`): characterization from the planner's
    memo — numerically identical to the scalar path's fresh call — and
    caps through the same
    :func:`~repro.faults.degradation.plan_with_degradation` ladder at
    ``batch_budget_w``, with the schedule attached for stage 3's
    compliance accounting.
    """
    mix = WorkloadMix(
        name=f"batch-{batch_index}",
        jobs=tuple(r.to_job() for r in admitted),
    )
    n = mix.total_nodes
    if n > len(cluster):
        raise ValueError(
            f"mix {mix.name!r} needs {n} nodes but the partition has "
            f"{len(cluster)}"
        )
    if uniform_hosts:
        scheduled = ScheduledMix.trusted(
            mix, _identity_order(n), cluster.efficiencies[:n]
        )
    else:
        order = np.arange(len(cluster))
        np.random.Generator(np.random.PCG64(batch_index)).shuffle(order)
        node_ids = order[:n]
        scheduled = ScheduledMix.trusted(
            mix, node_ids, cluster.efficiencies[node_ids].copy()
        )
    if run_seed is None:
        batch_seed = batch_index
    else:
        from repro.parallel.seeding import child_seed

        batch_seed = child_seed(run_seed, "site-batch", batch_index)
    tier = "none"
    backoff_s = 0.0
    sim_budget_w: Optional[float] = None
    if not injecting:
        _, effective_caps = planner.plan(scheduled, budget_w, relabel=False)
        fault_schedule = None
    else:
        from repro.faults.degradation import plan_with_degradation

        char = planner.characterization(scheduled)
        plan = plan_with_degradation(
            policy, batch_budget_w, characterization=char,
            host_count=n,
            min_cap_w=manager.model.power_model.min_cap_w,
            tdp_w=manager.model.power_model.tdp_w,
            config=degradation,
        )
        tier, backoff_s = plan.tier, plan.backoff_s
        caps = plan.caps_w
        if plan.tier == "replan" and policy.application_aware:
            caps = apply_job_runtime(char, caps)
        effective_caps = np.asarray(caps, dtype=float)
        sim_budget_w = float(batch_budget_w)
    return PlannedBatch(
        clock=clock,
        batch_index=batch_index,
        decision=decision,
        scheduled=scheduled,
        effective_caps=effective_caps,
        batch_seed=int(batch_seed),
        policy=policy,
        budget_w=float(budget_w),
        batch_budget_w=float(batch_budget_w),
        quarantined=quarantined,
        group_key=group_key,
        tier=tier,
        backoff_s=backoff_s,
        fault_schedule=fault_schedule,
        reaction_s=reaction_s,
        sim_budget_w=sim_budget_w,
    )


#: Memoised telemetry instrument handles for :func:`finish_planned_batch`
#: — looked up once per registry generation instead of four name lookups
#: per batch (thousands of batches per streamed shift).
_FINISH_INSTRUMENTS: Optional[tuple] = None


def _finish_instruments(registry) -> tuple:
    global _FINISH_INSTRUMENTS
    cached = _FINISH_INSTRUMENTS
    if cached is None or cached[0] is not registry:
        cached = (
            registry,
            registry.gauge("manager.site.utilization"),
            registry.histogram("manager.site.batch_duration_s"),
            registry.counter("manager.site.batches"),
            registry.counter("manager.site.jobs_completed"),
        )
        _FINISH_INSTRUMENTS = cached
    return cached


def finish_planned_batch(planned: PlannedBatch, result,
                         scalars: Optional[tuple] = None) -> BatchExecution:
    """Stage 3: fold one simulated row back into a :class:`BatchExecution`.

    The tail of :func:`execute_admitted_batch`, verbatim: duration from
    the job critical path plus the ladder's ``backoff_s`` (identically
    zero on fault-free batches), the record fields, the completion
    clocks, and the same per-batch telemetry.  When the planned batch
    carries a budget-only ``fault_schedule``, the scalar path's
    compliance accounting runs too — overshoot against the launch budget
    from the iteration power trace, plus the reaction window of
    mid-batch budget drops — with the identical float operation order.

    ``scalars``, when given, is ``(job_elapsed_s, duration, mean_power,
    energy)`` precomputed for this row — :func:`execute_planned_batches`
    derives them for a whole group in four vectorised reductions whose
    per-row values are element-identical to the serial property chain
    (same summands, same order, exact max), saving four numpy dispatches
    per batch on the hot path.
    """
    backoff_s = planned.backoff_s
    if scalars is None:
        elapsed = result.job_elapsed_s
        duration = float(np.max(elapsed)) + backoff_s
        mean_power_w = result.mean_system_power_w
    else:
        elapsed, duration, mean_power_w, _ = scalars
        duration = duration + backoff_s
    planned_overshoot_ws = 0.0
    overshoot_ws = 0.0
    if planned.fault_schedule is not None:
        from repro.faults.schedule import FaultKind

        fault_schedule = planned.fault_schedule
        clock = planned.clock
        planned_overshoot_ws = result.budget_overshoot_watt_seconds(
            planned.batch_budget_w
        )
        overshoot_ws = planned_overshoot_ws
        mean_p = mean_power_w
        for event in fault_schedule.of_kind(FaultKind.BUDGET_CHANGE):
            if clock < event.time_s < clock + duration:
                dipped = fault_schedule.budget_at(
                    max(event.time_s, event.end_s), planned.budget_w
                )
                window = min(
                    planned.reaction_s, clock + duration - event.time_s
                )
                overshoot_ws += max(0.0, mean_p - dipped) * window
    record = BatchRecord(
        start_s=planned.clock,
        end_s=planned.clock + duration,
        admitted=planned.decision.admitted,
        deferred=planned.decision.deferred,
        mean_power_w=mean_power_w,
        energy_j=result.total_energy_j if scalars is None else scalars[3],
        budget_w=float(planned.batch_budget_w),
        degradation_tier=planned.tier,
        quarantined=planned.quarantined,
        planned_overshoot_ws=planned_overshoot_ws,
        overshoot_ws=overshoot_ws,
        backoff_s=backoff_s,
    )
    if enabled():
        _, gauge, histogram, batches, jobs = _finish_instruments(
            get_registry()
        )
        utilization = mean_power_w / planned.batch_budget_w
        gauge.set(utilization)
        histogram.observe(duration)
        batches.inc()
        jobs.inc(len(result.job_names))
        emit(
            "manager.site", "batch_complete",
            batch=planned.batch_index, policy=planned.policy.name,
            admitted=len(planned.decision.admitted),
            deferred=len(planned.decision.deferred),
            duration_s=duration,
            mean_power_w=float(mean_power_w),
            utilization=utilization,
        )
    clock = planned.clock
    completions = tuple(clock + (float(e) + backoff_s) for e in elapsed)
    return BatchExecution(
        record=record,
        job_names=tuple(result.job_names),
        completion_s=completions,
    )


def execute_planned_batches(
    planned: Sequence[PlannedBatch],
    manager: PowerManager,
    noise_std: float,
) -> List[BatchExecution]:
    """Stage 2: simulate all planned batches in grouped vectorised passes.

    Batches are grouped by job block structure (``job_boundaries``) and
    iteration count — the preconditions of
    :func:`~repro.sim.batch.simulate_layout_batch` — plus each batch's
    ``group_key`` (the cross-site grouping context; ``None`` everywhere
    on single-site streams).  Each group runs as one ``(S, hosts)``
    engine pass; batches from *different clusters* with matching
    structure therefore share a pass in the fused facility engine.
    Per-row bit-identity to the serial ``simulate_mix`` call makes
    grouping invisible in the results: only wall clock changes.
    Executions come back in input order.
    """
    from repro.sim.batch import simulate_layout_batch

    groups: Dict[tuple, List[int]] = {}
    for i, batch in enumerate(planned):
        layout = batch.mix.layout()
        key = (
            batch.group_key,
            layout.job_boundaries.tobytes(),
            batch.mix.common_iterations(),
        )
        groups.setdefault(key, []).append(i)
    results: List[object] = [None] * len(planned)
    scalars: List[Optional[tuple]] = [None] * len(planned)
    with span("manager.site.batched_step", batches=len(planned),
              groups=len(groups)):
        for indices in groups.values():
            rows = [planned[i] for i in indices]
            group_results = simulate_layout_batch(
                [b.mix for b in rows],
                np.stack([b.effective_caps for b in rows]),
                np.stack([b.scheduled.efficiencies for b in rows]),
                manager.model,
                SimulationOptions(noise_std=noise_std),
                seeds=[b.batch_seed for b in rows],
                policy_names=[b.policy.name for b in rows],
                budgets_w=[
                    b.budget_w if b.sim_budget_w is None else b.sim_budget_w
                    for b in rows
                ],
            )
            # Group-wide derived scalars: each row of these reductions
            # sums/maxes exactly the elements the per-row property chain
            # (job_elapsed_s / mean_system_power_w / total_energy_j)
            # would, in the same order, so the values are bit-identical
            # — four numpy calls replace four per batch.
            elapsed = np.stack(
                [r.iteration_times_s for r in group_results]
            ).sum(axis=1)
            duration = elapsed.max(axis=1)
            mean_power = np.stack(
                [r.host_mean_power_w for r in group_results]
            ).sum(axis=1)
            energy = np.stack(
                [r.host_energy_j for r in group_results]
            ).sum(axis=1)
            for row, (i, result) in enumerate(zip(indices, group_results)):
                results[i] = result
                scalars[i] = (
                    elapsed[row], float(duration[row]),
                    float(mean_power[row]), float(energy[row]),
                )
    return [
        finish_planned_batch(batch, result, scalar)
        for batch, result, scalar in zip(planned, results, scalars)
    ]


def run_site_simulation(
    arrivals: Sequence[Arrival],
    cluster: Cluster,
    policy: Policy,
    budget_w: float,
    admission: Optional[PowerAwareAdmission] = None,
    manager: Optional[PowerManager] = None,
    noise_std: float = 0.004,
    max_batches: int = 100,
    run_seed: Optional[int] = None,
    fault_schedule=None,
    degradation=None,
    reaction_s: float = 1.0,
) -> SiteSimulationResult:
    """Run the arrival stream to completion (or the batch limit).

    Jobs are admitted in batches whenever the cluster is free; a job that
    can never fit (its own estimate exceeds the budget or the cluster) is
    reported in ``never_admitted`` rather than looping forever.  Jobs
    still pending (or unarrived) when the ``max_batches`` round limit
    cuts the shift short are reported separately in ``truncated`` — they
    are unfinished work, not admission rejections.

    ``run_seed`` selects the noise stream for the whole shift: ``None``
    keeps the legacy per-batch seeds (the batch index), while an integer
    derives each batch's seed from ``(run_seed, batch index)`` via
    ``SeedSequence`` — the knob :func:`repro.parallel.tasks.site_replays`
    uses to replay one arrival stream under independent noise.

    ``fault_schedule`` (a :class:`~repro.faults.schedule.FaultSchedule`,
    ``None`` or empty = fault-free, bit-identical to the historical path)
    replays facility/hardware faults against the shift; ``degradation``
    is the optional :class:`~repro.faults.degradation.DegradationConfig`
    for the planning ladder, and ``reaction_s`` the actuation window
    charged when a budget drops *mid-batch* before the next admission
    round can re-plan (overshoot during that window is recorded in
    ``BatchRecord.overshoot_ws``).
    """
    ensure_positive(budget_w, "budget_w")
    injecting = fault_schedule is not None and fault_schedule.active
    with span("manager.site.run", policy=policy.name,
              budget_w=float(budget_w), arrivals=len(arrivals),
              hosts=len(cluster), injecting=injecting) as trace_sp:
        result = _run_shift(
            arrivals, cluster, policy, budget_w, admission, manager,
            noise_std, max_batches, run_seed, fault_schedule, degradation,
            reaction_s, injecting,
        )
        if trace_sp is not None:
            trace_sp.set_attribute("batches", len(result.batches))
            trace_sp.set_attribute("completed", len(result.completed))
            trace_sp.set_attribute("makespan_s", result.makespan_s)
    return result


def _run_shift(
    arrivals: Sequence[Arrival],
    cluster: Cluster,
    policy: Policy,
    budget_w: float,
    admission: Optional[PowerAwareAdmission],
    manager: Optional[PowerManager],
    noise_std: float,
    max_batches: int,
    run_seed: Optional[int],
    fault_schedule,
    degradation,
    reaction_s: float,
    injecting: bool,
) -> SiteSimulationResult:
    """The shift loop proper (see :func:`run_site_simulation`).

    Drives :func:`shift_rounds` in its non-staged mode: the generator
    never yields, so the first resume raises ``StopIteration`` carrying
    the result — the identical statements of the historical inline loop
    execute, in order.
    """
    rounds = shift_rounds(
        arrivals, cluster, policy, budget_w, admission, manager,
        noise_std, max_batches, run_seed, fault_schedule, degradation,
        reaction_s, injecting,
    )
    try:
        next(rounds)
    except StopIteration as stop:
        return stop.value
    raise RuntimeError("non-staged shift_rounds must not yield")


def shift_rounds(
    arrivals: Sequence[Arrival],
    cluster: Cluster,
    policy: Policy,
    budget_w: float,
    admission: Optional[PowerAwareAdmission],
    manager: Optional[PowerManager],
    noise_std: float,
    max_batches: int,
    run_seed: Optional[int],
    fault_schedule,
    degradation,
    reaction_s: float,
    injecting: bool,
    planner: Optional[BatchPlanner] = None,
    staged: bool = False,
    uniform_hosts: bool = False,
    group_key: object = None,
):
    """The shift loop as a resumable round generator.

    In the default (non-staged) mode this *is* the scalar shift loop:
    every admission round executes its batch inline via
    :func:`execute_admitted_batch` and the generator yields nothing —
    :func:`run_site_simulation` results are untouched.

    ``staged=True`` (requires a ``planner``) turns each executable round
    into a cooperative step instead: the round's batch is planned via
    :func:`plan_shift_batch`, **yielded** to the driver, and the
    driver ``send()``s back the :class:`BatchExecution` produced by a
    (possibly cross-cluster) :func:`execute_planned_batches` pass.  The
    fused facility engine drives one such generator per cluster in
    lockstep, fusing the yielded batches into shared stacked passes.
    Control flow, RNG draws, seeds, and accumulation order are the
    scalar loop's own — the statements are literally shared — so staged
    results are bit-identical.  Rounds that cannot stage (an active
    schedule with anything beyond ``BUDGET_CHANGE`` events — see
    :func:`budget_only_schedule`) fall back to the scalar execute inline,
    per batch, without breaking the generator protocol.

    The generator's return value (via ``StopIteration.value``) is the
    :class:`SiteSimulationResult`.
    """
    if staged and planner is None:
        raise ValueError("staged shift_rounds requires a planner")
    stageable = staged and (
        not injecting or budget_only_schedule(fault_schedule)
    )
    if injecting:
        # Clock points at which fault state can change: re-check the
        # world there when an admission round comes up empty.
        fault_boundaries = fault_schedule.boundaries()
    if not arrivals:
        raise ValueError("need at least one arrival")
    # JobRequest carries its lifecycle state, so submitting the caller's
    # objects would leave them COMPLETED afterwards and a replay of the
    # same arrival stream would see nothing pending.  Submit fresh copies.
    arrivals = [
        dataclasses.replace(a, request=dataclasses.replace(a.request))
        for a in sorted(arrivals, key=lambda a: a.time_s)
    ]
    manager = manager if manager is not None else PowerManager()
    admission = admission if admission is not None else PowerAwareAdmission(
        model=manager.model
    )

    queue = JobQueue()
    arrival_time: Dict[str, float] = {}
    # Cursor into the sorted stream — O(1) per arrival, where the
    # historical list.pop(0) walked the whole tail every admission.
    stream_pos = 0
    clock = 0.0
    batches: List[BatchRecord] = []
    completed: List[str] = []
    failed: List[str] = []
    turnaround: Dict[str, float] = {}

    for _ in range(max_batches):
        # Admit everything that has arrived by the current clock; if the
        # queue is empty, jump to the next arrival.
        while stream_pos < len(arrivals) \
                and arrivals[stream_pos].time_s <= clock:
            arrival = arrivals[stream_pos]
            stream_pos += 1
            queue.submit(arrival.request)
            arrival_time[arrival.request.name] = arrival.time_s
        if not queue.pending():
            if stream_pos >= len(arrivals):
                break
            clock = arrivals[stream_pos].time_s
            continue

        # Query the fault timeline at the site clock.  Fault-free these
        # stay the caller's budget and full cluster, so the historical
        # code path is untouched.
        batch_budget_w = budget_w
        batch_cluster = cluster
        quarantined: Tuple[int, ...] = ()
        if injecting:
            batch_budget_w = fault_schedule.budget_at(clock, budget_w)
            failed_hosts = fault_schedule.failed_hosts_at(clock)
            if failed_hosts:
                healthy = [
                    i for i in range(len(cluster)) if i not in failed_hosts
                ]
                quarantined = tuple(sorted(failed_hosts))
                if healthy:
                    batch_cluster = cluster.subset(healthy)
                else:
                    batch_cluster = None  # total outage: wait it out

        can_admit = batch_cluster is not None and batch_budget_w > 0
        decision = admission.decide(
            queue, batch_budget_w, nodes_available=len(batch_cluster),
            mark=True,
        ) if can_admit else None
        if decision is None or not decision.admitted:
            if injecting:
                # The dip may pass: advance to the next fault boundary
                # and retry admission there instead of failing the job.
                upcoming = [t for t in fault_boundaries if t > clock]
                if upcoming:
                    clock = upcoming[0]
                    continue
            # Nothing fits: drop the head-of-queue job as unschedulable
            # (its estimate alone exceeds capacity) and try again.
            stuck = queue.pending()[0]
            queue.mark(stuck.name, JobState.FAILED)
            failed.append(stuck.name)
            continue

        admitted = [queue.get(name) for name in decision.admitted]
        if stageable:
            planned = plan_shift_batch(
                clock=clock,
                batch_index=len(batches),
                admitted=admitted,
                decision=decision,
                cluster=batch_cluster,
                policy=policy,
                budget_w=budget_w,
                batch_budget_w=batch_budget_w,
                quarantined=quarantined,
                manager=manager,
                run_seed=run_seed,
                planner=planner,
                uniform_hosts=uniform_hosts,
                injecting=injecting,
                fault_schedule=fault_schedule,
                degradation=degradation,
                reaction_s=reaction_s,
                group_key=group_key,
            )
            execution = yield planned
        else:
            execution = execute_admitted_batch(
                clock=clock,
                batch_index=len(batches),
                admitted=admitted,
                decision=decision,
                batch_cluster=batch_cluster,
                policy=policy,
                budget_w=budget_w,
                batch_budget_w=batch_budget_w,
                quarantined=quarantined,
                manager=manager,
                noise_std=noise_std,
                run_seed=run_seed,
                fault_schedule=fault_schedule,
                degradation=degradation,
                reaction_s=reaction_s,
                injecting=injecting,
            )
        batches.append(execution.record)
        for name, completion in zip(execution.job_names,
                                    execution.completion_s):
            queue.mark(name, JobState.RUNNING)
            queue.mark(name, JobState.COMPLETED)
            completed.append(name)
            turnaround[name] = completion - arrival_time[name]
        clock = execution.record.end_s

    truncated = tuple(r.name for r in queue.pending()) + tuple(
        a.request.name for a in arrivals[stream_pos:]
    )
    result = SiteSimulationResult(
        policy_name=policy.name,
        budget_w=float(budget_w),
        batches=tuple(batches),
        completed=tuple(completed),
        never_admitted=tuple(failed),
        job_turnaround_s=turnaround,
        fault_schedule_name=fault_schedule.name if injecting else "",
        truncated=truncated,
    )
    if enabled():
        registry = get_registry()
        registry.histogram("manager.site.makespan_s").observe(result.makespan_s)
        emit(
            "manager.site", "simulation_complete",
            policy=policy.name, batches=len(batches),
            completed=len(completed), never_admitted=len(result.never_admitted),
            makespan_s=result.makespan_s,
            mean_turnaround_s=result.mean_turnaround_s(),
        )
    return result
