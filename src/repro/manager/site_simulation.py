"""Time-stepped site simulation: arrivals, admission, dispatch, telemetry.

The capstone integration of the resource-manager substrate: jobs *arrive
over time*, the power-aware admission controller decides what starts
whenever capacity frees up, admitted batches run under a policy, and the
site's power telemetry accumulates into the Fig. 1-style record.  This is
the operating loop the paper's stack serves, driven end to end:

    arrivals -> JobQueue -> PowerAwareAdmission -> Scheduler
             -> Policy allocation -> simulate_mix -> telemetry

The simulation is event-stepped at batch granularity: whenever the
cluster drains, the next admission round runs against everything that has
arrived by then.  (Co-scheduling newly admitted jobs alongside running
ones would need preemptive re-allocation, which the paper leaves to
future work; batch granularity keeps the model inside what the paper's
policies define.)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.characterization.mix_characterization import characterize_mix
from repro.core.policy import Policy
from repro.manager.admission import PowerAwareAdmission
from repro.manager.power_manager import PowerManager
from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.manager.scheduler import Scheduler
from repro.hardware.cluster import Cluster
from repro.sim.execution import SimulationOptions
from repro.telemetry import emit, enabled, get_registry
from repro.units import ensure_positive
from repro.workload.job import WorkloadMix

__all__ = ["Arrival", "BatchRecord", "SiteSimulationResult", "run_site_simulation"]


@dataclass(frozen=True)
class Arrival:
    """One job submission with its arrival time."""

    time_s: float
    request: JobRequest

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("arrival time must be non-negative")


@dataclass(frozen=True)
class BatchRecord:
    """One admission round and its execution."""

    start_s: float
    end_s: float
    admitted: Tuple[str, ...]
    deferred: Tuple[str, ...]
    mean_power_w: float
    energy_j: float

    @property
    def duration_s(self) -> float:
        """Wall time of the batch."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class SiteSimulationResult:
    """Everything the simulated shift produced."""

    policy_name: str
    budget_w: float
    batches: Tuple[BatchRecord, ...]
    completed: Tuple[str, ...]
    never_admitted: Tuple[str, ...]
    job_turnaround_s: Dict[str, float]

    @property
    def makespan_s(self) -> float:
        """Clock time from first arrival to last completion."""
        return float(self.batches[-1].end_s) if self.batches else 0.0

    @property
    def total_energy_j(self) -> float:
        """Energy across all batches."""
        return float(sum(b.energy_j for b in self.batches))

    def mean_turnaround_s(self) -> float:
        """Mean submission-to-completion time over completed jobs."""
        if not self.job_turnaround_s:
            return 0.0
        return float(np.mean(list(self.job_turnaround_s.values())))

    def peak_power_w(self) -> float:
        """Highest batch mean power (the budget-compliance check)."""
        return max((b.mean_power_w for b in self.batches), default=0.0)


def run_site_simulation(
    arrivals: Sequence[Arrival],
    cluster: Cluster,
    policy: Policy,
    budget_w: float,
    admission: Optional[PowerAwareAdmission] = None,
    manager: Optional[PowerManager] = None,
    noise_std: float = 0.004,
    max_batches: int = 100,
    run_seed: Optional[int] = None,
) -> SiteSimulationResult:
    """Run the arrival stream to completion (or the batch limit).

    Jobs are admitted in batches whenever the cluster is free; a job that
    can never fit (its own estimate exceeds the budget or the cluster) is
    reported in ``never_admitted`` rather than looping forever.

    ``run_seed`` selects the noise stream for the whole shift: ``None``
    keeps the legacy per-batch seeds (the batch index), while an integer
    derives each batch's seed from ``(run_seed, batch index)`` via
    ``SeedSequence`` — the knob :func:`repro.parallel.tasks.site_replays`
    uses to replay one arrival stream under independent noise.
    """
    ensure_positive(budget_w, "budget_w")
    if not arrivals:
        raise ValueError("need at least one arrival")
    # JobRequest carries its lifecycle state, so submitting the caller's
    # objects would leave them COMPLETED afterwards and a replay of the
    # same arrival stream would see nothing pending.  Submit fresh copies.
    arrivals = [
        dataclasses.replace(a, request=dataclasses.replace(a.request))
        for a in sorted(arrivals, key=lambda a: a.time_s)
    ]
    manager = manager if manager is not None else PowerManager()
    admission = admission if admission is not None else PowerAwareAdmission(
        model=manager.model
    )

    queue = JobQueue()
    arrival_time: Dict[str, float] = {}
    pending_stream = list(arrivals)
    clock = 0.0
    batches: List[BatchRecord] = []
    completed: List[str] = []
    turnaround: Dict[str, float] = {}

    for _ in range(max_batches):
        # Admit everything that has arrived by the current clock; if the
        # queue is empty, jump to the next arrival.
        while pending_stream and pending_stream[0].time_s <= clock:
            arrival = pending_stream.pop(0)
            queue.submit(arrival.request)
            arrival_time[arrival.request.name] = arrival.time_s
        if not queue.pending():
            if not pending_stream:
                break
            clock = pending_stream[0].time_s
            continue

        decision = admission.decide(
            queue, budget_w, nodes_available=len(cluster), mark=True
        )
        if not decision.admitted:
            # Nothing fits: drop the head-of-queue job as unschedulable
            # (its estimate alone exceeds capacity) and try again.
            stuck = queue.pending()[0]
            queue.mark(stuck.name, JobState.FAILED)
            continue

        admitted = [queue.get(name) for name in decision.admitted]
        mix = WorkloadMix(
            name=f"batch-{len(batches)}",
            jobs=tuple(r.to_job() for r in admitted),
        )
        scheduled = Scheduler(cluster, shuffle_seed=len(batches)).allocate(mix)
        char = characterize_mix(mix, scheduled.efficiencies, manager.model)
        if run_seed is None:
            batch_seed = len(batches)
        else:
            from repro.parallel.seeding import child_seed

            batch_seed = child_seed(run_seed, "site-batch", len(batches))
        run = manager.launch(
            scheduled, policy, budget_w, characterization=char,
            options=SimulationOptions(noise_std=noise_std, seed=batch_seed),
        )
        duration = float(np.max(run.result.job_elapsed_s))
        batches.append(
            BatchRecord(
                start_s=clock,
                end_s=clock + duration,
                admitted=decision.admitted,
                deferred=decision.deferred,
                mean_power_w=run.result.mean_system_power_w,
                energy_j=run.result.total_energy_j,
            )
        )
        if enabled():
            registry = get_registry()
            utilization = run.result.mean_system_power_w / budget_w
            registry.gauge("manager.site.utilization").set(utilization)
            registry.histogram("manager.site.batch_duration_s").observe(duration)
            registry.counter("manager.site.batches").inc()
            registry.counter("manager.site.jobs_completed").inc(
                len(run.result.job_names)
            )
            emit(
                "manager.site", "batch_complete",
                batch=len(batches) - 1, policy=policy.name,
                admitted=len(decision.admitted),
                deferred=len(decision.deferred),
                duration_s=duration,
                mean_power_w=float(run.result.mean_system_power_w),
                utilization=utilization,
            )
        for name, elapsed in zip(run.result.job_names, run.result.job_elapsed_s):
            queue.mark(name, JobState.RUNNING)
            queue.mark(name, JobState.COMPLETED)
            completed.append(name)
            turnaround[name] = clock + float(elapsed) - arrival_time[name]
        clock += duration

    never = tuple(
        r.name for r in list(queue.pending())
    ) + tuple(a.request.name for a in pending_stream)
    failed = tuple(
        name for name in arrival_time
        if name not in completed and name not in never
    )
    result = SiteSimulationResult(
        policy_name=policy.name,
        budget_w=float(budget_w),
        batches=tuple(batches),
        completed=tuple(completed),
        never_admitted=never + failed,
        job_turnaround_s=turnaround,
    )
    if enabled():
        registry = get_registry()
        registry.histogram("manager.site.makespan_s").observe(result.makespan_s)
        emit(
            "manager.site", "simulation_complete",
            policy=policy.name, batches=len(batches),
            completed=len(completed), never_admitted=len(result.never_admitted),
            makespan_s=result.makespan_s,
            mean_turnaround_s=result.mean_turnaround_s(),
        )
    return result
