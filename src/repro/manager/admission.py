"""Power-aware admission control: which queued jobs may start now.

The paper's §II frames the site operator's problem: "Power delivery
infrastructure must ensure that a site's total power consumption does not
exceed the deliverable power capacity."  Before any of the §III policies
can divide a budget among *running* jobs, the resource manager must decide
which jobs to admit at all — the admission step SLURM performs with its
power plugin.

:class:`PowerAwareAdmission` implements the standard greedy scheme over
characterization estimates:

* each pending job's power demand is estimated from its characterization
  (needed power when available, a user hint, or a worst-case TDP bound —
  in that order of preference);
* jobs are admitted in queue order while both node and power capacity
  remain (optionally with backfill: a later job that fits may jump a
  blocked head-of-queue job, the classic EASY-backfill compromise);
* the admitted set's total estimate never exceeds the budget, so the
  downstream allocation policy always starts from a feasible state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.characterization.mix_characterization import characterize_mix
from repro.manager.queue import JobQueue, JobRequest, JobState
from repro.sim.engine import ExecutionModel
from repro.telemetry import emit, enabled, get_registry
from repro.units import ensure_positive
from repro.workload.job import WorkloadMix

__all__ = ["AdmissionDecision", "PowerAwareAdmission"]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission pass."""

    admitted: Tuple[str, ...]
    deferred: Tuple[str, ...]
    estimates_w: Dict[str, float]
    budget_w: float
    nodes_available: int
    #: Fractional head-room the admitter held back; the effective limit
    #: the admitted set was judged against is :attr:`usable_budget_w`.
    safety_margin: float = 0.0
    #: Whether this pass held the head-of-queue reservation (no backfill
    #: past a blocked head that exhausted its bypass allowance).
    reserved_head: bool = False

    @property
    def admitted_power_w(self) -> float:
        """Total estimated draw of the admitted set."""
        return sum(self.estimates_w[name] for name in self.admitted)

    @property
    def usable_budget_w(self) -> float:
        """The budget the admitter actually admitted against."""
        return (1.0 - self.safety_margin) * self.budget_w

    @property
    def admitted_nodes(self) -> int:
        """Total nodes the admitted set occupies (via the estimates map
        keys' requests is not stored; computed by the admitter)."""
        return self._admitted_nodes

    # populated by the admitter post-init via object.__setattr__
    _admitted_nodes: int = 0

    def feasible(self) -> bool:
        """Whether the admitted set respects the admission limit.

        Judged against :attr:`usable_budget_w` — the same
        ``(1 - safety_margin) x budget`` the admitter admitted against —
        not the raw budget, so a decision that consumed its head-room is
        reported as infeasible rather than silently passing.
        """
        return self.admitted_power_w <= self.usable_budget_w + 1e-6


class PowerAwareAdmission:
    """Greedy (optionally backfilling) power-aware admission.

    Parameters
    ----------
    model:
        Physics bundle used to estimate per-job demand when no user hint
        is given.
    backfill:
        When True, a job behind a blocked one may be admitted if it fits
        in the remaining capacity (EASY-style).  When False, admission
        stops at the first job that does not fit (strict FIFO).
    safety_margin:
        Fractional head-room kept against estimate error: a job is
        admitted only if the admitted-set estimate stays below
        ``(1 - margin) x budget``.
    max_bypass_rounds:
        Starvation bound on EASY backfill: once the *same* blocked
        head-of-queue job has been jumped on this many consecutive
        admission passes, the head gains a reservation — no later job is
        admitted past it until it starts (capacity drains toward the
        starved job instead of being re-filled forever).  ``None``
        disables the bound (the classic unbounded-bypass behaviour).
    """

    def __init__(
        self,
        model: Optional[ExecutionModel] = None,
        backfill: bool = True,
        safety_margin: float = 0.02,
        max_bypass_rounds: Optional[int] = 8,
    ) -> None:
        if not 0.0 <= safety_margin < 1.0:
            raise ValueError("safety_margin must be in [0, 1)")
        if max_bypass_rounds is not None and max_bypass_rounds < 1:
            raise ValueError("max_bypass_rounds must be positive or None")
        self.model = model if model is not None else ExecutionModel()
        self.backfill = backfill
        self.safety_margin = safety_margin
        self.max_bypass_rounds = max_bypass_rounds
        # Aging state for the starvation bound: the current blocked head
        # and how many marked passes have admitted work past it.  O(1)
        # memory regardless of stream length.
        self._blocked_head: Optional[str] = None
        self._blocked_rounds: int = 0
        # Characterization estimates keyed by (config, nodes): bounded by
        # the distinct job *shapes* seen, not the jobs submitted, so a
        # million-arrival stream of a few job classes estimates each
        # class once.  User hints never enter the cache (they are O(1)).
        self._estimate_cache: Dict[Tuple[object, int], float] = {}

    # ------------------------------------------------------------------
    def estimate_job_power_w(self, request: JobRequest) -> float:
        """Estimated steady-state draw of one job (whole job, W).

        Preference order: the balancer-characterized needed power (what an
        application-aware site knows), then the user's hint scaled by the
        node count, then the TDP worst case.  Whatever the source, the
        estimate is floored at ``node_count x min_cap_w``: RAPL cannot
        cap below the floor, so no job can draw less — admitting against
        a smaller number would hand the allocator an infeasible budget.
        """
        floor_w = request.node_count * self.model.power_model.min_cap_w
        if request.power_hint_w is not None:
            return max(request.power_hint_w * request.node_count, floor_w)
        key = (request.config, request.node_count)
        cached = self._estimate_cache.get(key)
        if cached is not None:
            return cached
        job = request.to_job()
        mix = WorkloadMix(name=job.name, jobs=(job,))
        char = characterize_mix(
            mix, np.ones(job.node_count), self.model
        )
        estimate = max(float(np.sum(char.needed_power_w)), floor_w)
        self._estimate_cache[key] = estimate
        return estimate

    def decide(
        self,
        queue: JobQueue,
        budget_w: float,
        nodes_available: int,
        mark: bool = True,
    ) -> AdmissionDecision:
        """Admit pending jobs against the budget and node pool.

        With ``mark`` (default) admitted jobs transition to ALLOCATED in
        the queue; pass False for a dry run.
        """
        ensure_positive(budget_w, "budget_w")
        if nodes_available < 0:
            raise ValueError("nodes_available must be non-negative")

        pending = queue.pending()
        queue_depth = len(pending)
        head_name = pending[0].name if pending else None
        # Head-of-queue reservation: a head that has been backfilled past
        # on max_bypass_rounds consecutive marked passes blocks further
        # bypass, so freed capacity accumulates until it fits.
        reserve_head = (
            self.backfill
            and self.max_bypass_rounds is not None
            and head_name is not None
            and head_name == self._blocked_head
            and self._blocked_rounds >= self.max_bypass_rounds
        )
        allow_backfill = self.backfill and not reserve_head

        usable_w = (1.0 - self.safety_margin) * budget_w
        admitted: List[str] = []
        deferred: List[str] = []
        estimates: Dict[str, float] = {}
        power_used = 0.0
        nodes_used = 0
        blocked = False

        for idx, request in enumerate(pending):
            # Exact early exits (no estimate is computed for the skipped
            # tail, so ``estimates_w`` only covers jobs actually judged):
            # once a blocked head stops a no-backfill pass, or the node
            # pool is exhausted (every job needs >= 1 node), no later job
            # can be admitted — the remaining prefix scan is pure deferral.
            if (blocked and not allow_backfill) \
                    or nodes_used >= nodes_available:
                deferred.extend(r.name for r in pending[idx:])
                blocked = True
                break
            estimate = self.estimate_job_power_w(request)
            estimates[request.name] = estimate
            fits = (
                power_used + estimate <= usable_w
                and nodes_used + request.node_count <= nodes_available
            )
            if fits and (not blocked or allow_backfill):
                admitted.append(request.name)
                power_used += estimate
                nodes_used += request.node_count
            else:
                deferred.append(request.name)
                blocked = True

        if mark:
            for name in admitted:
                queue.mark(name, JobState.ALLOCATED)
            # Age the starvation bound only on marked passes (dry runs
            # must not consume the head's bypass allowance).
            if head_name is None or head_name in set(admitted):
                self._blocked_head, self._blocked_rounds = None, 0
            elif admitted:
                if head_name != self._blocked_head:
                    self._blocked_head, self._blocked_rounds = head_name, 0
                self._blocked_rounds += 1

        decision = AdmissionDecision(
            admitted=tuple(admitted),
            deferred=tuple(deferred),
            estimates_w=estimates,
            budget_w=budget_w,
            nodes_available=nodes_available,
            safety_margin=self.safety_margin,
            reserved_head=reserve_head,
        )
        object.__setattr__(decision, "_admitted_nodes", nodes_used)
        if enabled():
            registry = get_registry()
            registry.gauge("manager.admission.queue_depth").set(queue_depth)
            registry.counter("manager.admission.passes").inc()
            registry.counter("manager.admission.admitted").inc(len(admitted))
            registry.counter("manager.admission.deferred").inc(len(deferred))
            emit(
                "manager.admission", "admission_decision",
                admitted=len(admitted), deferred=len(deferred),
                queue_depth=queue_depth, budget_w=float(budget_w),
                admitted_power_w=power_used, nodes_used=nodes_used,
                nodes_available=nodes_available, dry_run=not mark,
                reserved_head=reserve_head,
            )
        return decision

    def decide_arrival(
        self,
        queue: JobQueue,
        request: JobRequest,
        budget_w: float,
        nodes_available: int,
        mark: bool = True,
    ) -> AdmissionDecision:
        """Incrementally judge one *new tail arrival* at unchanged capacity.

        The streaming engine's hot path: when a full :meth:`decide` pass
        at the same ``(usable budget, free nodes)`` already deferred
        **every** pending job and nothing has been admitted or completed
        since, re-running the full pass on a new arrival re-derives the
        identical all-deferred prefix — estimates are deterministic and
        ``fits`` is monotone in remaining capacity — so only the new tail
        needs judging.  This method is that single judgment: the request
        is admitted iff its own estimate fits the whole free capacity and
        backfill past the (still blocked) head is allowed.

        Caller contract: ``request`` is the most recent tail of
        ``queue``'s pending set, the premise above holds, and the fault
        state is unchanged since the blocking pass.  When the request
        *is* the head (nothing else pending), the premise is vacuous and
        this falls back to a full :meth:`decide` pass.

        The returned decision is abbreviated — ``estimates_w`` covers
        only the judged request and ``deferred`` lists the other pending
        names without re-judging them.  Starvation aging matches the full
        pass: a marked call that admits past the blocked head consumes
        one bypass round.
        """
        ensure_positive(budget_w, "budget_w")
        if nodes_available < 0:
            raise ValueError("nodes_available must be non-negative")
        head = queue.peek_pending()
        if head is None or head.name == request.name:
            return self.decide(queue, budget_w, nodes_available, mark=mark)
        head_name = head.name
        reserve_head = (
            self.backfill
            and self.max_bypass_rounds is not None
            and head_name == self._blocked_head
            and self._blocked_rounds >= self.max_bypass_rounds
        )
        allow_backfill = self.backfill and not reserve_head

        usable_w = (1.0 - self.safety_margin) * budget_w
        admitted: Tuple[str, ...] = ()
        estimates: Dict[str, float] = {}
        power_used = 0.0
        nodes_used = 0
        if allow_backfill:
            estimate = self.estimate_job_power_w(request)
            estimates[request.name] = estimate
            if estimate <= usable_w and request.node_count <= nodes_available:
                admitted = (request.name,)
                power_used = estimate
                nodes_used = request.node_count
        deferred = tuple(
            r.name for r in queue.pending() if r.name not in admitted
        )

        if mark and admitted:
            queue.mark(request.name, JobState.ALLOCATED)
            # The head stayed deferred while the tail was admitted past
            # it — exactly the full pass's aging bump.
            if head_name != self._blocked_head:
                self._blocked_head, self._blocked_rounds = head_name, 0
            self._blocked_rounds += 1

        decision = AdmissionDecision(
            admitted=admitted,
            deferred=deferred,
            estimates_w=estimates,
            budget_w=budget_w,
            nodes_available=nodes_available,
            safety_margin=self.safety_margin,
            reserved_head=reserve_head,
        )
        object.__setattr__(decision, "_admitted_nodes", nodes_used)
        if enabled():
            registry = get_registry()
            registry.gauge("manager.admission.queue_depth").set(
                len(deferred) + len(admitted)
            )
            registry.counter("manager.admission.passes").inc()
            registry.counter("manager.admission.admitted").inc(len(admitted))
            registry.counter("manager.admission.deferred").inc(len(deferred))
            emit(
                "manager.admission", "admission_decision",
                admitted=len(admitted), deferred=len(deferred),
                queue_depth=len(deferred) + len(admitted),
                budget_w=float(budget_w),
                admitted_power_w=power_used, nodes_used=nodes_used,
                nodes_available=nodes_available, dry_run=not mark,
                reserved_head=reserve_head, incremental=True,
            )
        return decision
