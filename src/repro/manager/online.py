"""Online re-planning — emulating the execution-time feedback loop.

The paper's §VIII: "Since there is not currently an existing protocol or
central mechanism for coordinating power management decisions across a
data center's power delivery hierarchy, we emulated this execution time
behavior by pre-characterizing our workloads ... By defining such [a]
protocol, this approach could be adapted to occur at execution time by
coordinating system-level objectives of a resource manager with
workload-level objectives of a job runtime."

:class:`OnlinePowerManager` implements that protocol over the simulator:
the mix runs in *epochs* (blocks of iterations); after each epoch the
manager rebuilds the characterization from the epoch's observed telemetry
— mean power per host as the "monitor" signal, the balancer's live
needed-power estimate as the performance signal — and re-runs the policy.
No pre-characterization is used: the first epoch runs uniformly capped and
the loop converges from there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.characterization.mix_characterization import (
    DEFAULT_HARVEST_FRACTION,
    MixCharacterization,
)
from repro.core.policy import Policy
from repro.manager.power_manager import apply_job_runtime
from repro.manager.scheduler import ScheduledMix
from repro.sim.engine import ExecutionModel
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.sim.results import MixRunResult
from repro.telemetry import ScopedTimer, emit, enabled, get_registry
from repro.units import ensure_positive

__all__ = ["OnlineEpoch", "OnlineRun", "OnlinePowerManager"]


@dataclass(frozen=True)
class OnlineEpoch:
    """One re-planning epoch: caps in force and the telemetry they produced."""

    index: int
    caps_w: np.ndarray
    result: MixRunResult

    @property
    def mean_power_w(self) -> float:
        """Cluster mean power over the epoch."""
        return self.result.mean_system_power_w


@dataclass(frozen=True)
class OnlineRun:
    """A completed online-managed execution."""

    policy_name: str
    budget_w: float
    epochs: Tuple[OnlineEpoch, ...]

    @property
    def total_elapsed_s(self) -> float:
        """Mean-job elapsed time summed over epochs."""
        return float(sum(e.result.mean_elapsed_s for e in self.epochs))

    @property
    def total_energy_j(self) -> float:
        """Total energy over all epochs."""
        return float(sum(e.result.total_energy_j for e in self.epochs))

    def caps_converged(self, tolerance_w: float = 1.0) -> bool:
        """Whether the last two epochs' caps agree within ``tolerance_w``."""
        if len(self.epochs) < 2:
            return False
        delta = np.abs(self.epochs[-1].caps_w - self.epochs[-2].caps_w)
        return bool(np.max(delta) <= tolerance_w)


class OnlinePowerManager:
    """Re-plans a policy from live telemetry every epoch.

    Parameters
    ----------
    model:
        Physics bundle.
    iterations_per_epoch:
        Bulk-synchronous iterations between re-planning points.
    harvest_fraction:
        Conservatism of the live needed-power estimate (matches the
        balancer's behaviour; see the characterization module).
    """

    def __init__(
        self,
        model: Optional[ExecutionModel] = None,
        iterations_per_epoch: int = 20,
        harvest_fraction: float = DEFAULT_HARVEST_FRACTION,
    ) -> None:
        if iterations_per_epoch < 1:
            raise ValueError("iterations_per_epoch must be positive")
        self.model = model if model is not None else ExecutionModel()
        self.iterations_per_epoch = iterations_per_epoch
        self.harvest_fraction = harvest_fraction

    # ------------------------------------------------------------------
    def _observe(self, scheduled: ScheduledMix, caps_w: np.ndarray,
                 epoch: int, noise_std: float) -> MixRunResult:
        """Run one epoch of iterations under the given caps."""
        from dataclasses import replace

        mix = scheduled.mix
        epoch_jobs = tuple(
            replace(job, iterations=self.iterations_per_epoch) for job in mix.jobs
        )
        from repro.workload.job import WorkloadMix

        epoch_mix = WorkloadMix(name=mix.name, jobs=epoch_jobs)
        options = SimulationOptions(noise_std=noise_std, seed=1000 + epoch)
        return simulate_mix(
            epoch_mix, caps_w, scheduled.efficiencies, self.model, options
        )

    def _characterize_from_telemetry(
        self, scheduled: ScheduledMix, observed: MixRunResult
    ) -> MixCharacterization:
        """Build the policy input from live telemetry.

        The monitor signal is the *projected unconstrained* power: the
        runtime knows each host's activity from its performance counters,
        so it can report what the host would draw uncapped even while
        capped — GEOPM reports exactly this style of derived signal.  The
        needed signal is the balancer's live estimate on the same
        telemetry.
        """
        # The analytic characterization from the layout is the projection
        # a GEOPM report would provide; telemetry feeds the noise the
        # policies must tolerate (tested in the ablation module).  With a
        # characterization cache activated (repro.parallel.cache), the
        # re-planning rounds after the first hit the memoized entry —
        # the characterization inputs are epoch-invariant — so online
        # runs pay the physics once per mix instead of once per epoch.
        from repro.characterization.mix_characterization import characterize_mix

        return characterize_mix(
            scheduled.mix,
            scheduled.efficiencies,
            self.model,
            harvest_fraction=self.harvest_fraction,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        scheduled: ScheduledMix,
        policy: Policy,
        budget_w: float,
        epochs: int = 5,
        noise_std: float = 0.008,
    ) -> OnlineRun:
        """Execute ``epochs`` re-planning rounds of the mix.

        Epoch 0 runs under the uniform budget split (no characterization
        exists yet); every later epoch runs under the policy's allocation
        from the previous epoch's telemetry, with the in-job runtime
        applied for application-aware policies.
        """
        ensure_positive(budget_w, "budget_w")
        if epochs < 1:
            raise ValueError("epochs must be positive")
        n = scheduled.mix.total_nodes
        caps = self.model.power_model.clamp_cap(np.full(n, budget_w / n))
        history: List[OnlineEpoch] = []
        with ScopedTimer("manager.online.run_s") as run_timer:
            for epoch in range(epochs):
                observed = self._observe(scheduled, caps, epoch, noise_std)
                history.append(
                    OnlineEpoch(index=epoch, caps_w=caps.copy(), result=observed)
                )
                with ScopedTimer("manager.online.characterize_s") as char_timer:
                    char = self._characterize_from_telemetry(scheduled, observed)
                allocation = policy.allocate(char, budget_w)
                previous_caps = caps
                caps = allocation.caps_w
                if policy.application_aware:
                    caps = apply_job_runtime(char, caps)
                caps = self.model.power_model.clamp_cap(caps)
                if enabled():
                    get_registry().counter("manager.online.replan_rounds").inc()
                    emit(
                        "manager.online", "replan",
                        epoch=epoch, policy=policy.name,
                        mean_power_w=float(observed.mean_system_power_w),
                        caps_moved_w=float(np.max(np.abs(caps - previous_caps))),
                        characterize_s=char_timer.elapsed_s,
                    )
        run = OnlineRun(
            policy_name=policy.name,
            budget_w=float(budget_w),
            epochs=tuple(history),
        )
        if enabled():
            emit(
                "manager.online", "run_complete",
                policy=policy.name, epochs=epochs,
                converged=run.caps_converged(), wall_s=run_timer.elapsed_s,
            )
        return run
