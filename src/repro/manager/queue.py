"""Job submission records and the admission queue.

A thin but faithful model of resource-manager admission: users submit
:class:`JobRequest` objects (a kernel configuration, a node count, and an
optional user-supplied power hint — how the ``Precharacterized`` policy's
"user submits the job with a cap" workflow enters the system), and the
queue tracks their lifecycle.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workload.job import Job
from repro.workload.kernel import KernelConfig

__all__ = ["JobState", "JobRequest", "JobQueue"]


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    ALLOCATED = "allocated"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class JobRequest:
    """One user submission.

    Attributes
    ----------
    name:
        User-visible job name (unique within a queue).
    config:
        Kernel configuration to run.
    node_count:
        Requested nodes.
    iterations:
        Bulk-synchronous iterations to run.
    power_hint_w:
        Optional user-supplied per-node power expectation (the
        Precharacterized workflow); ``None`` when the user provides none.
    """

    name: str
    config: KernelConfig
    node_count: int
    iterations: int = 100
    power_hint_w: Optional[float] = None
    state: JobState = field(default=JobState.PENDING, init=False)

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError("node_count must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.power_hint_w is not None and self.power_hint_w <= 0:
            raise ValueError("power_hint_w must be positive when given")

    def to_job(self) -> Job:
        """Materialise the workload-layer job."""
        return Job(
            name=self.name,
            config=self.config,
            node_count=self.node_count,
            iterations=self.iterations,
        )


class JobQueue:
    """FIFO admission queue with state tracking."""

    def __init__(self) -> None:
        self._requests: Dict[str, JobRequest] = {}
        self._order = itertools.count()
        self._sequence: Dict[str, int] = {}

    def submit(self, request: JobRequest) -> None:
        """Admit a request; names must be unique."""
        if request.name in self._requests:
            raise ValueError(f"job {request.name!r} already queued")
        self._requests[request.name] = request
        self._sequence[request.name] = next(self._order)

    def pending(self) -> List[JobRequest]:
        """Pending requests in submission order."""
        items = [r for r in self._requests.values() if r.state is JobState.PENDING]
        return sorted(items, key=lambda r: self._sequence[r.name])

    def get(self, name: str) -> JobRequest:
        """Look up a request by name."""
        try:
            return self._requests[name]
        except KeyError:
            raise KeyError(f"no job named {name!r}") from None

    def mark(self, name: str, state: JobState) -> None:
        """Transition a job's state (validated against the lifecycle)."""
        request = self.get(name)
        valid = {
            JobState.PENDING: {JobState.ALLOCATED, JobState.FAILED},
            JobState.ALLOCATED: {JobState.RUNNING, JobState.FAILED},
            JobState.RUNNING: {JobState.COMPLETED, JobState.FAILED},
            JobState.COMPLETED: set(),
            JobState.FAILED: set(),
        }
        if state not in valid[request.state]:
            raise ValueError(
                f"illegal transition {request.state.value} -> {state.value} "
                f"for job {name!r}"
            )
        request.state = state

    def __len__(self) -> int:
        return len(self._requests)
