"""Job submission records and the admission queue.

A thin but faithful model of resource-manager admission: users submit
:class:`JobRequest` objects (a kernel configuration, a node count, and an
optional user-supplied power hint — how the ``Precharacterized`` policy's
"user submits the job with a cap" workflow enters the system), and the
queue tracks their lifecycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.workload.job import Job
from repro.workload.kernel import KernelConfig

__all__ = ["JobState", "JobRequest", "JobQueue"]


class JobState(enum.Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    ALLOCATED = "allocated"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class JobRequest:
    """One user submission.

    Attributes
    ----------
    name:
        User-visible job name (unique within a queue).
    config:
        Kernel configuration to run.
    node_count:
        Requested nodes.
    iterations:
        Bulk-synchronous iterations to run.
    power_hint_w:
        Optional user-supplied per-node power expectation (the
        Precharacterized workflow); ``None`` when the user provides none.
    """

    name: str
    config: KernelConfig
    node_count: int
    iterations: int = 100
    power_hint_w: Optional[float] = None
    state: JobState = field(default=JobState.PENDING, init=False)

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError("node_count must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.power_hint_w is not None and self.power_hint_w <= 0:
            raise ValueError("power_hint_w must be positive when given")

    def to_job(self) -> Job:
        """Materialise the workload-layer job."""
        return Job(
            name=self.name,
            config=self.config,
            node_count=self.node_count,
            iterations=self.iterations,
        )


#: Legal lifecycle transitions, hoisted out of :meth:`JobQueue.mark` —
#: the streaming engine marks every job three times (allocated, running,
#: completed), so rebuilding this table per call showed up in profiles.
_VALID_TRANSITIONS: Dict[JobState, frozenset] = {
    JobState.PENDING: frozenset({JobState.ALLOCATED, JobState.FAILED}),
    JobState.ALLOCATED: frozenset({JobState.RUNNING, JobState.FAILED}),
    JobState.RUNNING: frozenset({JobState.COMPLETED, JobState.FAILED}),
    JobState.COMPLETED: frozenset(),
    JobState.FAILED: frozenset(),
}


class JobQueue:
    """FIFO admission queue with state tracking.

    Pending membership is tracked incrementally (an insertion-ordered
    dict maintained by :meth:`submit` / :meth:`mark`), so :meth:`pending`
    costs O(pending jobs) rather than O(every job ever submitted) — the
    property the streaming site engine relies on to sustain heavy
    arrival traffic.  Terminal records can be released with
    :meth:`forget` to keep long-lived queues memory-bounded.
    """

    def __init__(self) -> None:
        self._requests: Dict[str, JobRequest] = {}
        # Insertion-ordered view of the PENDING subset; submission order
        # equals insertion order because names are submitted exactly once
        # and no lifecycle transition re-enters PENDING.
        self._pending: Dict[str, JobRequest] = {}

    def submit(self, request: JobRequest) -> None:
        """Admit a request; names must be unique."""
        if request.name in self._requests:
            raise ValueError(f"job {request.name!r} already queued")
        self._requests[request.name] = request
        if request.state is JobState.PENDING:
            self._pending[request.name] = request

    def pending(self) -> List[JobRequest]:
        """Pending requests in submission order."""
        return list(self._pending.values())

    def pending_count(self) -> int:
        """Number of pending requests, O(1)."""
        return len(self._pending)

    def peek_pending(self) -> Optional[JobRequest]:
        """The head-of-queue pending request, O(1) (None when empty)."""
        if not self._pending:
            return None
        return next(iter(self._pending.values()))

    def get(self, name: str) -> JobRequest:
        """Look up a request by name."""
        try:
            return self._requests[name]
        except KeyError:
            raise KeyError(f"no job named {name!r}") from None

    def mark(self, name: str, state: JobState) -> None:
        """Transition a job's state (validated against the lifecycle)."""
        request = self.get(name)
        if state not in _VALID_TRANSITIONS[request.state]:
            raise ValueError(
                f"illegal transition {request.state.value} -> {state.value} "
                f"for job {name!r}"
            )
        if request.state is JobState.PENDING:
            self._pending.pop(name, None)
        request.state = state

    def forget(self, name: str) -> None:
        """Release a terminal (completed/failed) request's record.

        Long-lived streaming queues call this after accounting for a
        job so memory stays bounded by the *active* population rather
        than the total ever submitted.  Forgetting a live job would
        corrupt admission; that is rejected.
        """
        request = self.get(name)
        if request.state not in (JobState.COMPLETED, JobState.FAILED):
            raise ValueError(
                f"cannot forget job {name!r} in state {request.state.value}"
            )
        del self._requests[name]

    def __len__(self) -> int:
        return len(self._requests)
