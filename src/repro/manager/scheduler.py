"""Node allocation: placing a workload mix onto cluster nodes.

The paper runs each mix on the 918-node medium-frequency partition,
allocating 100 similar nodes per job.  The scheduler here reproduces that:
it owns a partition (a :class:`~repro.hardware.cluster.Cluster`, typically
the medium cluster from the Fig. 6 survey) and assigns each job a
contiguous block of nodes, optionally shuffled so job-to-node assignment
does not correlate with node id.

The result, :class:`ScheduledMix`, binds the mix's host index space to
physical node ids and their efficiency multipliers — the arrays both the
characterization and the execution engine need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hardware.cluster import Cluster
from repro.workload.job import WorkloadMix

__all__ = ["ScheduledMix", "Scheduler"]


@dataclass(frozen=True)
class ScheduledMix:
    """A mix bound to physical nodes.

    ``node_ids[h]`` is the cluster node running mix host ``h``;
    ``efficiencies[h]`` its variation multiplier.
    """

    mix: WorkloadMix
    node_ids: np.ndarray
    efficiencies: np.ndarray

    def __post_init__(self) -> None:
        n = self.mix.total_nodes
        if self.node_ids.shape != (n,) or self.efficiencies.shape != (n,):
            raise ValueError("node_ids and efficiencies must match the mix size")
        if np.unique(self.node_ids).size != n:
            raise ValueError("a node cannot be allocated to two hosts")

    @classmethod
    def trusted(
        cls,
        mix: WorkloadMix,
        node_ids: np.ndarray,
        efficiencies: np.ndarray,
    ) -> "ScheduledMix":
        """Construct without the duplicate-allocation scan.

        For callers that build the allocation as a permutation of
        ``arange(n)`` themselves (the streaming engine's batch planner,
        which schedules thousands of small batches per simulated shift)
        the ``np.unique`` uniqueness proof in ``__post_init__`` is pure
        overhead — a permutation cannot double-book a node.  Shapes are
        the caller's responsibility too; misuse surfaces as an engine
        shape error rather than a scheduler error.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "mix", mix)
        object.__setattr__(self, "node_ids", node_ids)
        object.__setattr__(self, "efficiencies", efficiencies)
        return self

    def job_node_ids(self, job_index: int) -> np.ndarray:
        """Node ids allocated to one job."""
        offsets = self.mix.job_offsets()
        return self.node_ids[offsets[job_index]:offsets[job_index + 1]]


class Scheduler:
    """Allocate mix hosts onto a cluster partition.

    Parameters
    ----------
    cluster:
        The partition to allocate from (e.g. the medium-frequency subset).
    shuffle_seed:
        When given, node order is shuffled before block assignment, so
        consecutive jobs do not land on consecutively-manufactured parts.
        ``None`` assigns nodes in id order (deterministic layout for
        tests).
    """

    def __init__(self, cluster: Cluster, shuffle_seed: Optional[int] = 11) -> None:
        self.cluster = cluster
        self.shuffle_seed = shuffle_seed

    def allocate(self, mix: WorkloadMix) -> ScheduledMix:
        """Assign every mix host a distinct cluster node.

        Raises ``ValueError`` when the partition is too small — the
        resource manager must never over-subscribe nodes.
        """
        total = mix.total_nodes
        if total > len(self.cluster):
            raise ValueError(
                f"mix {mix.name!r} needs {total} nodes but the partition has "
                f"{len(self.cluster)}"
            )
        order = np.arange(len(self.cluster))
        if self.shuffle_seed is not None:
            rng = np.random.default_rng(self.shuffle_seed)
            rng.shuffle(order)
        node_ids = order[:total]
        return ScheduledMix(
            mix=mix,
            node_ids=node_ids,
            efficiencies=self.cluster.efficiencies[node_ids].copy(),
        )
