"""The power manager: where policy meets platform.

This is the integration seam the paper argues for: the resource manager
holds the system-wide budget, consumes job-runtime characterization
reports, asks a policy for per-host caps, validates them against the
budget, and programs them before launch.  The paper's warning — "if power
limits are controlled through the same hardware interface by both a
resource manager and a job runtime environment, one layer may
unintentionally overwrite limits set by the other layer" — is enforced
here as an ownership rule: once the power manager programs caps for a run,
it is the only writer (the runtime's wishes arrive via characterization
data, not via competing RAPL writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.characterization.mix_characterization import (
    MixCharacterization,
    characterize_mix,
)
from repro.core.allocation import PowerAllocation
from repro.core.policy import Policy
from repro.manager.scheduler import ScheduledMix
from repro.sim.engine import ExecutionModel
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.sim.results import MixRunResult
from repro.telemetry import ScopedTimer, emit, enabled, get_registry, span
from repro.units import ensure_positive

__all__ = ["ManagedRun", "PowerManager", "apply_job_runtime"]


def apply_job_runtime(
    char: MixCharacterization, caps_w: np.ndarray
) -> np.ndarray:
    """Effective caps after the in-job GEOPM balancer redistributes.

    A job launched under the power balancer does not sit at the caps the
    resource manager programmed: the runtime treats the *sum* of its
    allocation as the job budget and re-distributes it internally toward
    the balancer steady state — each host at its needed power, with
    proportional scale-down when the job budget cannot cover the needs
    (and any surplus left unused, since caps above needed power are inert).
    This execution-time behaviour is why the paper's JobAdaptive and
    MixedAdaptive "tend to perform similarly in the min ... power levels":
    whatever the cross-job split, each job's interior is balancer-shaped.
    """
    from repro.core.allocation import fit_to_budget

    caps = np.asarray(caps_w, dtype=float)
    effective = np.empty_like(caps)
    floor = char.min_cap_w
    for j in range(char.job_count):
        block = char.job_slice(j)
        job_budget = float(np.sum(caps[block]))
        targets = np.maximum(char.needed_cap_w[block], floor)
        if float(np.sum(targets)) > job_budget:
            effective[block] = fit_to_budget(targets, job_budget, floor)
        else:
            effective[block] = targets
    return effective


@dataclass(frozen=True)
class ManagedRun:
    """Everything produced by one managed execution."""

    scheduled: ScheduledMix
    characterization: MixCharacterization
    allocation: PowerAllocation
    result: MixRunResult


class PowerManager:
    """Budget-holding orchestrator for policy-managed executions.

    Parameters
    ----------
    model:
        Physics bundle shared by characterization and execution.
    enforce_budget:
        When True (default), allocations exceeding the budget are rejected
        with ``RuntimeError`` — except for policies that are not
        system-power-aware (``Precharacterized``), whose over-subscription
        is the phenomenon under study (Fig. 7's >100 % bars); their
        overshoot is recorded rather than rejected.
    """

    def __init__(self, model: Optional[ExecutionModel] = None,
                 enforce_budget: bool = True) -> None:
        self.model = model if model is not None else ExecutionModel()
        self.enforce_budget = enforce_budget

    # ------------------------------------------------------------------
    def characterize(self, scheduled: ScheduledMix) -> MixCharacterization:
        """Run the pre-characterization pipeline on the allocated nodes."""
        return characterize_mix(scheduled.mix, scheduled.efficiencies, self.model)

    def plan(
        self,
        scheduled: ScheduledMix,
        policy: Policy,
        budget_w: float,
        characterization: Optional[MixCharacterization] = None,
    ) -> PowerAllocation:
        """Ask the policy for caps and validate them against the budget."""
        ensure_positive(budget_w, "budget_w")
        char = characterization if characterization is not None \
            else self.characterize(scheduled)
        allocation = policy.allocate(char, budget_w)
        if (
            self.enforce_budget
            and policy.system_power_aware
            and not allocation.within_budget()
        ):
            raise RuntimeError(
                f"policy {policy.name} allocated "
                f"{allocation.total_allocated_w:.1f} W against a budget of "
                f"{budget_w:.1f} W"
            )
        return allocation

    def launch(
        self,
        scheduled: ScheduledMix,
        policy: Policy,
        budget_w: float,
        characterization: Optional[MixCharacterization] = None,
        options: Optional[SimulationOptions] = None,
    ) -> ManagedRun:
        """Characterize, plan, program caps, and execute the mix."""
        if options is None:
            options = SimulationOptions()
        with span("manager.launch", mix=scheduled.mix.name,
                  policy=policy.name, budget_w=float(budget_w)) as trace_sp, \
                ScopedTimer("manager.power_manager.launch_s") as timer:
            char = characterization if characterization is not None \
                else self.characterize(scheduled)
            allocation = self.plan(scheduled, policy, budget_w, char)
            # Application-aware policies launch their jobs under the GEOPM
            # power balancer, which redistributes each job's total allocation
            # internally toward the balancer steady state during execution.
            # Application-agnostic policies launch under the monitor/governor
            # agents, so hosts draw up to their programmed caps.
            effective_caps = allocation.caps_w
            if policy.application_aware:
                effective_caps = apply_job_runtime(char, effective_caps)
            result = simulate_mix(
                scheduled.mix,
                effective_caps,
                scheduled.efficiencies,
                self.model,
                options,
                policy_name=policy.name,
                budget_w=budget_w,
            )
            if trace_sp is not None:
                trace_sp.set_attribute(
                    "allocated_w", float(allocation.total_allocated_w)
                )
        if enabled():
            get_registry().counter("manager.power_manager.launches").inc()
            emit(
                "manager.power_manager", "launch_complete",
                mix=scheduled.mix.name, policy=policy.name,
                budget_w=float(budget_w),
                allocated_w=float(allocation.total_allocated_w),
                unallocated_w=float(allocation.unallocated_w),
                mean_power_w=float(result.mean_system_power_w),
                wall_s=timer.elapsed_s,
            )
        return ManagedRun(
            scheduled=scheduled,
            characterization=char,
            allocation=allocation,
            result=result,
        )

    def launch_batch(
        self,
        scheduled: ScheduledMix,
        specs: Sequence[Tuple[Policy, float]],
        characterization: Optional[MixCharacterization] = None,
        options: Optional[SimulationOptions] = None,
    ) -> List[ManagedRun]:
        """Plan and execute many ``(policy, budget)`` scenarios in one pass.

        Every spec is planned exactly as :meth:`launch` would (budget
        validation and the job-runtime redistribution included), then all
        effective cap vectors run through one
        :func:`~repro.sim.batch.simulate_cap_batch` engine call.  Result
        ``i`` is bit-identical to ``launch(scheduled, *specs[i], ...)``
        with the same options — this is the sweep primitive behind
        :func:`~repro.experiments.sensitivity.budget_sweep` and the
        policy tournament.
        """
        from repro.sim.batch import simulate_cap_batch

        if not specs:
            raise ValueError("launch_batch needs at least one (policy, budget)")
        with span("manager.launch_batch", mix=scheduled.mix.name,
                  scenarios=len(specs)), \
                ScopedTimer("manager.power_manager.launch_batch_s") as timer:
            char = characterization if characterization is not None \
                else self.characterize(scheduled)
            allocations: List[PowerAllocation] = []
            caps_rows: List[np.ndarray] = []
            for policy, budget_w in specs:
                allocation = self.plan(scheduled, policy, budget_w, char)
                effective_caps = allocation.caps_w
                if policy.application_aware:
                    effective_caps = apply_job_runtime(char, effective_caps)
                allocations.append(allocation)
                caps_rows.append(effective_caps)
            results = simulate_cap_batch(
                scheduled.mix,
                np.stack(caps_rows),
                scheduled.efficiencies,
                self.model,
                options,
                policy_names=[policy.name for policy, _ in specs],
                budgets_w=[float(budget_w) for _, budget_w in specs],
            )
        if enabled():
            get_registry().counter("manager.power_manager.launches").inc(len(specs))
            emit(
                "manager.power_manager", "launch_batch_complete",
                mix=scheduled.mix.name, scenarios=len(specs),
                policies=sorted({policy.name for policy, _ in specs}),
                wall_s=timer.elapsed_s,
            )
        return [
            ManagedRun(
                scheduled=scheduled,
                characterization=char,
                allocation=allocation,
                result=result,
            )
            for allocation, result in zip(allocations, results)
        ]
