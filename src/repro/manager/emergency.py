"""Emergency power capping: responding to a sudden budget reduction.

The paper's opening problem statement: "Power limiting is needed in order
to respond to greater-than-expected power demand", and its conclusion
asks for a policy that "minimizes the loss of quality of service in
exceptional cases."  This module implements the two-stage emergency
response a production resource manager performs when the facility sheds
load (a feeder trips, a cooling unit fails, a demand-response event):

1. **Clamp** — immediately scale every running host's cap so the cluster
   is guaranteed under the new budget within one RAPL window.  The clamp
   is proportional above the floor (every job hurts, none dies) — the
   fastest safe actuation, needing no characterization at all.
2. **Re-plan** — re-run the site's allocation policy against the new
   budget using the existing characterization, recovering whatever
   performance the clamp left on the table.

:func:`respond_to_budget_drop` executes both stages against the simulator
and reports the QoS impact of each, quantifying the value of stage 2 —
i.e. of having an application-aware policy on call during emergencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.allocation import fit_to_budget
from repro.core.policy import Policy
from repro.manager.power_manager import apply_job_runtime
from repro.manager.scheduler import ScheduledMix
from repro.sim.engine import ExecutionModel
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.sim.results import MixRunResult
from repro.units import ensure_positive

__all__ = ["EmergencyResponse", "emergency_clamp", "respond_to_budget_drop"]


def emergency_clamp(
    current_caps_w: np.ndarray,
    new_budget_w: float,
    min_cap_w: float = 136.0,
) -> np.ndarray:
    """Stage 1: proportional clamp of running caps onto a reduced budget.

    Scales the above-floor portion of every cap by a common factor so the
    sum meets ``new_budget_w`` — no characterization, no job knowledge,
    safe to fire from an interrupt handler.  If even the all-floor state
    exceeds the budget the all-floor state is returned (RAPL can do no
    more; the operator must kill jobs).
    """
    ensure_positive(new_budget_w, "new_budget_w")
    caps = np.asarray(current_caps_w, dtype=float)
    return fit_to_budget(np.maximum(caps, min_cap_w), new_budget_w, min_cap_w)


@dataclass(frozen=True)
class EmergencyResponse:
    """Outcome of the two-stage response to a budget drop."""

    old_budget_w: float
    new_budget_w: float
    baseline: MixRunResult
    clamped: MixRunResult
    replanned: MixRunResult

    def qos_impact(self) -> Dict[str, float]:
        """Slowdowns relative to the pre-emergency execution.

        ``clamp_slowdown`` is what the blunt stage-1 response costs;
        ``replanned_slowdown`` what remains after stage 2; ``recovered``
        the fraction of the clamp's penalty that re-planning recovers.
        """
        base = self.baseline.mean_elapsed_s
        clamp = self.clamped.mean_elapsed_s / base - 1.0
        replan = self.replanned.mean_elapsed_s / base - 1.0
        recovered = 0.0 if clamp <= 0 else max(0.0, (clamp - replan) / clamp)
        return {
            "clamp_slowdown": clamp,
            "replanned_slowdown": replan,
            "recovered": recovered,
        }

    def within_new_budget(self) -> bool:
        """Both response stages hold the cluster under the new budget."""
        return (
            self.clamped.mean_system_power_w <= self.new_budget_w * 1.001
            and self.replanned.mean_system_power_w <= self.new_budget_w * 1.001
        )


def respond_to_budget_drop(
    scheduled: ScheduledMix,
    char: MixCharacterization,
    policy: Policy,
    old_budget_w: float,
    new_budget_w: float,
    model: Optional[ExecutionModel] = None,
    options: Optional[SimulationOptions] = None,
) -> EmergencyResponse:
    """Simulate the emergency: baseline, stage-1 clamp, stage-2 re-plan.

    ``policy`` allocates both the pre-emergency caps (at ``old_budget_w``)
    and the stage-2 re-plan (at ``new_budget_w``); stage 1 clamps the
    pre-emergency caps directly.
    """
    ensure_positive(old_budget_w, "old_budget_w")
    ensure_positive(new_budget_w, "new_budget_w")
    if new_budget_w >= old_budget_w:
        raise ValueError("an emergency is a budget *drop*")
    model = model if model is not None else ExecutionModel()
    options = options if options is not None else SimulationOptions()

    def run(caps: np.ndarray, budget: float) -> MixRunResult:
        return simulate_mix(
            scheduled.mix, caps, scheduled.efficiencies, model, options,
            policy_name=policy.name, budget_w=budget,
        )

    before = policy.allocate(char, old_budget_w).caps_w
    if policy.application_aware:
        before = apply_job_runtime(char, before)
    baseline = run(before, old_budget_w)

    clamped_caps = emergency_clamp(before, new_budget_w, char.min_cap_w)
    clamped = run(clamped_caps, new_budget_w)

    replan_caps = policy.allocate(char, new_budget_w).caps_w
    if policy.application_aware:
        replan_caps = apply_job_runtime(char, replan_caps)
    replanned = run(replan_caps, new_budget_w)

    return EmergencyResponse(
        old_budget_w=float(old_budget_w),
        new_budget_w=float(new_budget_w),
        baseline=baseline,
        clamped=clamped,
        replanned=replanned,
    )
