"""Emergency power capping: responding to a sudden budget change.

The paper's opening problem statement: "Power limiting is needed in order
to respond to greater-than-expected power demand", and its conclusion
asks for a policy that "minimizes the loss of quality of service in
exceptional cases."  This module implements the two-stage emergency
response a production resource manager performs when the facility sheds
load (a feeder trips, a cooling unit fails, a demand-response event):

1. **Clamp** — immediately scale every running host's cap so the cluster
   is guaranteed under the new budget within one RAPL window.  The clamp
   is proportional above the floor (every job hurts, none dies) — the
   fastest safe actuation, needing no characterization at all.
2. **Re-plan** — re-run the site's allocation policy against the new
   budget using the existing characterization, recovering whatever
   performance the clamp left on the table.

:func:`respond_to_budget_change` executes both stages against the
simulator for *any* budget change — drops clamp-then-re-plan; restores
and ramp-ups (the fault schedule's recovery events) skip the clamp and
re-plan straight at the new budget.  :func:`respond_to_budget_drop`
keeps the historical drop-only entry point.

Honesty contracts (each was a real bug):

* an infeasible budget (below ``hosts x floor``) is *reported* —
  :func:`emergency_clamp` can raise :class:`InfeasibleBudgetError` and
  :class:`EmergencyResponse` carries ``clamp_feasible`` /
  ``floor_power_w`` — instead of silently returning an all-floor state
  that still exceeds the budget;
* budget compliance is judged on the *power trace peak* (plus recorded
  overshoot watt-seconds), not the run mean, so transient overshoot
  within a run can no longer pass silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.characterization.mix_characterization import MixCharacterization
from repro.core.allocation import fit_to_budget
from repro.core.policy import Policy
from repro.manager.power_manager import apply_job_runtime
from repro.manager.scheduler import ScheduledMix
from repro.sim.engine import ExecutionModel
from repro.sim.execution import SimulationOptions, simulate_mix
from repro.sim.results import MixRunResult
from repro.telemetry import emit, enabled, get_registry
from repro.units import ensure_positive

__all__ = [
    "InfeasibleBudgetError",
    "EmergencyResponse",
    "emergency_clamp",
    "respond_to_budget_change",
    "respond_to_budget_drop",
]


class InfeasibleBudgetError(ValueError):
    """A budget below the cluster's RAPL floor: no cap vector can meet it.

    Carries the numbers the operator needs to decide what to kill:
    ``budget_w`` (what was asked) and ``floor_power_w`` (the best RAPL
    can do — every host pinned at the floor).
    """

    def __init__(self, budget_w: float, floor_power_w: float,
                 host_count: int) -> None:
        self.budget_w = float(budget_w)
        self.floor_power_w = float(floor_power_w)
        self.host_count = int(host_count)
        super().__init__(
            f"budget {self.budget_w:.1f} W is infeasible: {host_count} "
            f"hosts at the RAPL floor still draw {self.floor_power_w:.1f} W"
        )


def emergency_clamp(
    current_caps_w: np.ndarray,
    new_budget_w: float,
    min_cap_w: float = 136.0,
    strict: bool = False,
) -> np.ndarray:
    """Stage 1: proportional clamp of running caps onto a reduced budget.

    Scales the above-floor portion of every cap by a common factor so the
    sum meets ``new_budget_w`` — no characterization, no job knowledge,
    safe to fire from an interrupt handler.

    If even the all-floor state exceeds the budget the clamp *cannot*
    succeed: with ``strict=True`` it raises :class:`InfeasibleBudgetError`
    (carrying the floor power); with the default ``strict=False`` it
    returns the all-floor state — RAPL can do no more, the operator must
    kill jobs — and callers are expected to check feasibility (see
    :meth:`EmergencyResponse.clamp_feasible`) rather than trust the sum.
    """
    ensure_positive(new_budget_w, "new_budget_w")
    caps = np.asarray(current_caps_w, dtype=float)
    floor_power = caps.size * float(min_cap_w)
    if strict and floor_power > float(new_budget_w):
        raise InfeasibleBudgetError(new_budget_w, floor_power, caps.size)
    return fit_to_budget(np.maximum(caps, min_cap_w), new_budget_w, min_cap_w)


@dataclass(frozen=True)
class EmergencyResponse:
    """Outcome of the two-stage response to a budget change."""

    old_budget_w: float
    new_budget_w: float
    baseline: MixRunResult
    clamped: MixRunResult
    replanned: MixRunResult
    #: Whether the stage-1 clamp could meet the new budget at all
    #: (``False`` exactly when the budget sits below ``hosts x floor``).
    clamp_feasible: bool = True
    #: The all-floor cluster power — the clamp's hard lower limit.
    floor_power_w: float = 0.0

    def qos_impact(self) -> Dict[str, float]:
        """Slowdowns relative to the pre-emergency execution.

        ``clamp_slowdown`` is what the blunt stage-1 response costs;
        ``replanned_slowdown`` what remains after stage 2; ``recovered``
        the fraction of the clamp's penalty that re-planning recovers.
        On a budget restore (no clamp stage) both slowdowns are typically
        negative — the re-plan *speeds the mix up*.
        """
        base = self.baseline.mean_elapsed_s
        clamp = self.clamped.mean_elapsed_s / base - 1.0
        replan = self.replanned.mean_elapsed_s / base - 1.0
        recovered = 0.0 if clamp <= 0 else max(0.0, (clamp - replan) / clamp)
        return {
            "clamp_slowdown": clamp,
            "replanned_slowdown": replan,
            "recovered": recovered,
        }

    def overshoot_watt_seconds(self) -> Dict[str, float]:
        """Watt-seconds each stage spends above the new budget.

        Judged on the per-iteration power trace, so transient excursions
        count even when the run mean sits under the budget.
        """
        return {
            "clamp": self.clamped.budget_overshoot_watt_seconds(
                self.new_budget_w
            ),
            "replanned": self.replanned.budget_overshoot_watt_seconds(
                self.new_budget_w
            ),
        }

    def within_new_budget(self) -> bool:
        """Both response stages hold the cluster under the new budget.

        Checks the *peak* of the per-iteration power trace (the old mean
        check let transient overshoot pass) and reports ``False`` outright
        when the clamp was infeasible — an all-floor state above the
        budget is not a response that "meets" anything.
        """
        if not self.clamp_feasible:
            return False
        tolerance = self.new_budget_w * 1.001
        return (
            self.clamped.peak_system_power_w <= tolerance
            and self.replanned.peak_system_power_w <= tolerance
        )


def respond_to_budget_change(
    scheduled: ScheduledMix,
    char: MixCharacterization,
    policy: Policy,
    old_budget_w: float,
    new_budget_w: float,
    model: Optional[ExecutionModel] = None,
    options: Optional[SimulationOptions] = None,
) -> EmergencyResponse:
    """Simulate the response to any budget change: baseline, clamp, re-plan.

    ``policy`` allocates both the pre-change caps (at ``old_budget_w``)
    and the stage-2 re-plan (at ``new_budget_w``).  On a *drop*, stage 1
    clamps the pre-change caps proportionally (the interrupt-handler
    response).  On a *restore or increase* — the fault schedule's
    recovery events — there is nothing to clamp: stage 1 simply keeps the
    old caps in force (already under the larger budget) and stage 2
    re-plans to reclaim the headroom.  Equal budgets degenerate to a
    re-plan-only no-op, so callers replaying fault timelines need no
    special-casing at the boundary.
    """
    ensure_positive(old_budget_w, "old_budget_w")
    ensure_positive(new_budget_w, "new_budget_w")
    model = model if model is not None else ExecutionModel()
    options = options if options is not None else SimulationOptions()
    is_drop = new_budget_w < old_budget_w
    floor_power_w = char.host_count * char.min_cap_w
    clamp_feasible = float(new_budget_w) >= floor_power_w

    def run(caps: np.ndarray, budget: float) -> MixRunResult:
        return simulate_mix(
            scheduled.mix, caps, scheduled.efficiencies, model, options,
            policy_name=policy.name, budget_w=budget,
        )

    before = policy.allocate(char, old_budget_w).caps_w
    if policy.application_aware:
        before = apply_job_runtime(char, before)
    baseline = run(before, old_budget_w)

    if is_drop:
        clamped_caps = emergency_clamp(before, new_budget_w, char.min_cap_w)
    else:
        # Rising (or flat) budget: the old caps already comply; the only
        # "immediate" action is to keep them while stage 2 re-plans.
        clamped_caps = before
    clamped = run(clamped_caps, new_budget_w)

    replan_caps = policy.allocate(char, new_budget_w).caps_w
    if policy.application_aware:
        replan_caps = apply_job_runtime(char, replan_caps)
    replanned = run(replan_caps, new_budget_w)

    response = EmergencyResponse(
        old_budget_w=float(old_budget_w),
        new_budget_w=float(new_budget_w),
        baseline=baseline,
        clamped=clamped,
        replanned=replanned,
        clamp_feasible=clamp_feasible,
        floor_power_w=floor_power_w,
    )
    if enabled():
        registry = get_registry()
        registry.counter("manager.emergency.responses").inc()
        if not clamp_feasible:
            registry.counter("manager.emergency.infeasible").inc()
        overshoot = response.overshoot_watt_seconds()
        emit(
            "manager.emergency", "budget_change_response",
            policy=policy.name, direction="drop" if is_drop else "rise",
            old_budget_w=float(old_budget_w),
            new_budget_w=float(new_budget_w),
            clamp_feasible=clamp_feasible,
            clamp_overshoot_ws=overshoot["clamp"],
            replanned_overshoot_ws=overshoot["replanned"],
        )
    return response


def respond_to_budget_drop(
    scheduled: ScheduledMix,
    char: MixCharacterization,
    policy: Policy,
    old_budget_w: float,
    new_budget_w: float,
    model: Optional[ExecutionModel] = None,
    options: Optional[SimulationOptions] = None,
) -> EmergencyResponse:
    """The drop-only entry point (see :func:`respond_to_budget_change`).

    Kept for callers modelling a strict emergency: passing a flat or
    rising budget here is a programming error and raises ``ValueError``.
    """
    ensure_positive(old_budget_w, "old_budget_w")
    ensure_positive(new_budget_w, "new_budget_w")
    if new_budget_w >= old_budget_w:
        raise ValueError("an emergency is a budget *drop*")
    return respond_to_budget_change(
        scheduled, char, policy, old_budget_w, new_budget_w, model, options
    )
