"""Resource-manager substrate: job queue, node allocation, power manager.

This is the system-level layer of the paper's stack (the role SLURM plays
on Quartz): it owns the cluster, admits job submissions, allocates nodes,
derives the system power budget, asks a :class:`~repro.core.policy.Policy`
for per-host caps, programs them, and launches the mix.

* :mod:`repro.manager.queue` — job submission records and a FIFO queue.
* :mod:`repro.manager.scheduler` — node allocation over the cluster
  partition (the paper's 918 medium-frequency nodes).
* :mod:`repro.manager.power_manager` — the budget-enforcement and policy
  application point; the integration seam the paper argues resource
  managers and job runtimes must share.
"""

from repro.manager.queue import JobRequest, JobQueue, JobState
from repro.manager.scheduler import Scheduler, ScheduledMix
from repro.manager.power_manager import PowerManager, ManagedRun, apply_job_runtime
from repro.manager.online import OnlinePowerManager, OnlineRun, OnlineEpoch
from repro.manager.admission import PowerAwareAdmission, AdmissionDecision
from repro.manager.emergency import (
    EmergencyResponse,
    InfeasibleBudgetError,
    emergency_clamp,
    respond_to_budget_change,
    respond_to_budget_drop,
)
from repro.manager.site_simulation import (
    Arrival,
    BatchExecution,
    BatchRecord,
    SiteSimulationResult,
    execute_admitted_batch,
    run_site_simulation,
)

__all__ = [
    "JobRequest",
    "JobQueue",
    "JobState",
    "Scheduler",
    "ScheduledMix",
    "PowerManager",
    "ManagedRun",
    "apply_job_runtime",
    "OnlinePowerManager",
    "OnlineRun",
    "OnlineEpoch",
    "PowerAwareAdmission",
    "AdmissionDecision",
    "EmergencyResponse",
    "InfeasibleBudgetError",
    "emergency_clamp",
    "respond_to_budget_change",
    "respond_to_budget_drop",
    "Arrival",
    "BatchExecution",
    "BatchRecord",
    "SiteSimulationResult",
    "execute_admitted_batch",
    "run_site_simulation",
]
