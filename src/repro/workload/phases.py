"""Multi-phase workloads — the paper's §VIII future-work extension.

"Future work will also include extending this study to account for
applications with multiple phases that have varying design
characteristics."  This module provides that extension: a
:class:`PhasedWorkload` is a sequence of kernel phases (each its own
configuration and iteration count), and :func:`simulate_phased_job` runs
one phase after another with optional re-planning between phases — the
policy re-reads the phase's characterization and re-allocates, which is
what an execution-time RM/runtime protocol would do at phase boundaries.

The phase boundary is the natural re-planning point: within a phase the
kernel is stationary (one configuration), so per-phase characterization
is exact, and the phased result concatenates per-phase results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.policy import Policy
    from repro.sim.engine import ExecutionModel
    from repro.sim.execution import SimulationOptions
    from repro.sim.results import MixRunResult

__all__ = ["WorkloadPhase", "PhasedWorkload", "PhasedRunResult", "simulate_phased_job"]


@dataclass(frozen=True)
class WorkloadPhase:
    """One stationary phase of a multi-phase application."""

    name: str
    config: KernelConfig
    iterations: int = 50

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be positive")


@dataclass(frozen=True)
class PhasedWorkload:
    """An application whose kernel configuration changes between phases.

    The canonical example from the paper's motivation: a solver
    alternating between a memory-bound assembly phase and a compute-bound
    kernel phase.
    """

    name: str
    phases: Tuple[WorkloadPhase, ...]
    node_count: int

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a phased workload needs at least one phase")
        if self.node_count < 1:
            raise ValueError("node_count must be positive")
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate phase names: {names}")

    def total_iterations(self) -> int:
        """Sum of per-phase iteration counts."""
        return sum(p.iterations for p in self.phases)


@dataclass(frozen=True)
class PhasedRunResult:
    """Concatenated per-phase results of one phased execution."""

    workload_name: str
    policy_name: str
    phase_results: Tuple["MixRunResult", ...]
    phase_budgets_w: Tuple[float, ...]

    @property
    def total_elapsed_s(self) -> float:
        """End-to-end wall time (phases are sequential)."""
        return float(sum(r.mean_elapsed_s for r in self.phase_results))

    @property
    def total_energy_j(self) -> float:
        """End-to-end CPU energy."""
        return float(sum(r.total_energy_j for r in self.phase_results))

    def phase_summary(self) -> List[Dict[str, float]]:
        """One row per phase (elapsed, energy, mean power)."""
        return [
            {
                "phase": i,
                "elapsed_s": r.mean_elapsed_s,
                "energy_j": r.total_energy_j,
                "mean_power_w": r.mean_system_power_w,
                "budget_w": b,
            }
            for i, (r, b) in enumerate(zip(self.phase_results, self.phase_budgets_w))
        ]


def simulate_phased_job(
    workload: PhasedWorkload,
    efficiencies: np.ndarray,
    policy: "Policy",
    budget_w: float,
    model: Optional["ExecutionModel"] = None,
    replan_each_phase: bool = True,
    options: Optional["SimulationOptions"] = None,
) -> PhasedRunResult:
    """Run a phased workload under a policy, re-planning at boundaries.

    With ``replan_each_phase`` the policy re-allocates from each phase's
    own characterization (the execution-time protocol the paper calls
    for); without it, the allocation from phase 0's characterization is
    frozen for the whole run — the status-quo a pre-characterizing site
    lives with, and the baseline the extension should beat.
    """
    # Imported here to keep the workload package import-cycle-free (the
    # characterization layer builds on workload).
    from repro.characterization.mix_characterization import characterize_mix
    from repro.sim.engine import ExecutionModel
    from repro.sim.execution import SimulationOptions, simulate_mix

    model = model if model is not None else ExecutionModel()
    options = options if options is not None else SimulationOptions()
    eff = np.asarray(efficiencies, dtype=float)
    if eff.shape != (workload.node_count,):
        raise ValueError(
            f"efficiencies must have shape ({workload.node_count},), got {eff.shape}"
        )

    results: List["MixRunResult"] = []
    budgets: List[float] = []
    frozen_caps: Optional[np.ndarray] = None
    for index, phase in enumerate(workload.phases):
        job = Job(
            name=f"{workload.name}-{phase.name}",
            config=phase.config,
            node_count=workload.node_count,
            iterations=phase.iterations,
        )
        mix = WorkloadMix(name=job.name, jobs=(job,))
        if replan_each_phase or frozen_caps is None:
            char = characterize_mix(mix, eff, model)
            allocation = policy.allocate(char, budget_w)
            caps = allocation.caps_w
            if policy.application_aware:
                # Application-aware policies launch under the in-job
                # balancer, which redistributes the job's allocation
                # toward each host's needed power (same execution-time
                # behaviour the resource manager applies).
                from repro.manager.power_manager import apply_job_runtime

                caps = apply_job_runtime(char, caps)
            if frozen_caps is None:
                frozen_caps = caps
        else:
            caps = frozen_caps
        phase_options = SimulationOptions(
            noise_std=options.noise_std,
            barrier_overhead_s=options.barrier_overhead_s,
            seed=options.seed + index,
        )
        results.append(
            simulate_mix(
                mix, caps, eff, model, phase_options,
                policy_name=policy.name, budget_w=budget_w,
            )
        )
        budgets.append(budget_w)
    return PhasedRunResult(
        workload_name=workload.name,
        policy_name=policy.name,
        phase_results=tuple(results),
        phase_budgets_w=tuple(budgets),
    )
