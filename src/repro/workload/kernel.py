"""Analytic model of the synthetic arithmetic-intensity kernel.

The kernel (paper §IV-A, Fig. 2) is a bulk-synchronous loop.  Each
iteration, every rank performs a *compute phase* — streaming loads plus
fused-multiply-add arithmetic at a configurable FLOPs/byte ratio — and then
enters an ``MPI_Barrier``.  Ranks on the critical path perform ``imbalance``
times the common work; the remaining *waiting ranks* finish early and
busy-poll at the barrier ("consuming energy without making any application
progress").

Granularity note
----------------
GEOPM's power balancer and every policy in the paper act at *node*
granularity (RAPL is a package-level knob).  Work imbalance therefore only
creates power-shifting opportunity when critical and non-critical ranks
live on different nodes, which is how the benchmark is laid out here: a
``waiting_fraction`` of a job's **nodes** carry only common work and the
rest carry the ``imbalance``-scaled critical-path work.  Within a node all
ranks behave identically.

Activity factor
---------------
The socket power model needs an activity factor ``kappa`` per
configuration.  ``kappa`` is calibrated directly against the paper's Fig. 4
heat map (uncapped node power for the ymm kernel): power dips slightly for
purely memory-bound settings, peaks at 8 FLOPs/byte — the roofline ridge,
where both the vector FMA ports and the memory pipeline saturate — and
eases off for very high intensities where loads starve.  128-bit (xmm)
variants drive the vector units half as wide and draw proportionally less
core power.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.units import ensure_fraction, ensure_non_negative, ensure_positive

__all__ = [
    "VectorWidth",
    "Precision",
    "KernelConfig",
    "activity_factor",
    "POLL_ACTIVITY_FACTOR",
    "INTENSITY_GRID",
    "WAITING_IMBALANCE_GRID",
]


class VectorWidth(enum.Enum):
    """SIMD register width of the kernel's FMA instructions."""

    XMM = "xmm"  # 128-bit
    YMM = "ymm"  # 256-bit

    @property
    def bits(self) -> int:
        """Register width in bits."""
        return 128 if self is VectorWidth.XMM else 256


class Precision(enum.Enum):
    """Floating-point precision of the kernel's arithmetic."""

    SINGLE = "sp"
    DOUBLE = "dp"


#: Intensity values of the paper's Fig. 4/5 heat-map rows (FLOPs/byte),
#: plus the pure-streaming 0 FLOPs/byte configuration used in Table II.
INTENSITY_GRID: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: (waiting_fraction, imbalance) pairs of the Fig. 4/5 heat-map columns.
WAITING_IMBALANCE_GRID: Tuple[Tuple[float, int], ...] = (
    (0.0, 1),
    (0.25, 2),
    (0.25, 3),
    (0.50, 2),
    (0.50, 3),
    (0.75, 2),
    (0.75, 3),
)

# kappa calibration anchors: log2(intensity) -> activity factor, inverted
# from the 0 %-waiting column of the paper's Fig. 4 via
# P_node = 2 * (uncore + kappa * core_poly(f_turbo)).
_KAPPA_LOG2_INTENSITY = np.array([-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
_KAPPA_VALUES = np.array([0.900, 0.915, 0.906, 0.892, 0.910, 0.958, 1.000, 0.953, 0.925])

# Intensities below 0.125 FLOPs/byte (including 0) share the pure-streaming
# activity level; the load pipeline is saturated either way.
_KAPPA_MIN_INTENSITY = 0.125

#: Narrow-vector kernels drive half-width FMA ports.
_XMM_ACTIVITY_SCALE = 0.88

#: Single-precision halves the per-element data traffic pressure slightly.
_SP_ACTIVITY_SCALE = 0.97

#: Busy-polling at MPI_Barrier: a tight scalar spin loop.  High enough that
#: uncapped power is nearly insensitive to the waiting-rank percentage
#: (paper Fig. 4), low enough that every Fig. 4 row declines mildly toward
#: the 75 %-waiting column, as in the paper (calibrated to ~207 W/node
#: uncapped, just below the cheapest compute configuration).
POLL_ACTIVITY_FACTOR = 0.885


def activity_factor(intensity, vector: VectorWidth = VectorWidth.YMM,
                    precision: Precision = Precision.DOUBLE):
    """Activity factor ``kappa`` for a kernel configuration (vectorised).

    Piecewise-linear in log2(intensity) through the Fig. 4 calibration
    anchors, scaled for vector width and precision.  Result is clipped to
    (0, 1].
    """
    i = np.asarray(intensity, dtype=float)
    ensure_non_negative(i, "intensity")
    x = np.log2(np.maximum(i, _KAPPA_MIN_INTENSITY))
    kappa = np.interp(x, _KAPPA_LOG2_INTENSITY, _KAPPA_VALUES)
    if vector is VectorWidth.XMM:
        kappa = kappa * _XMM_ACTIVITY_SCALE
    if precision is Precision.SINGLE:
        kappa = kappa * _SP_ACTIVITY_SCALE
    return np.clip(kappa, 1e-3, 1.0)


@dataclass(frozen=True)
class KernelConfig:
    """One configuration of the synthetic kernel.

    Parameters
    ----------
    intensity:
        Arithmetic intensity in FLOPs/byte (0 = pure memory streaming).
    vector:
        SIMD width of the FMA instructions.
    precision:
        Arithmetic precision.
    waiting_fraction:
        Fraction of the job's nodes on the non-critical path.  Must be 0
        when ``imbalance`` is 1 (a balanced kernel has no waiting ranks).
    imbalance:
        Critical-path work multiplier (1 = balanced, paper uses 2 and 3).
    common_traffic_gb:
        Memory traffic of the common work per node per iteration, GB.
        Sets the iteration timescale; the default gives iterations of a
        few tens of milliseconds, matching a fine-grained BSP kernel.
    """

    intensity: float
    vector: VectorWidth = VectorWidth.YMM
    precision: Precision = Precision.DOUBLE
    waiting_fraction: float = 0.0
    imbalance: int = 1
    common_traffic_gb: float = 2.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.intensity, "intensity")
        ensure_fraction(self.waiting_fraction, "waiting_fraction")
        ensure_positive(self.common_traffic_gb, "common_traffic_gb")
        if self.imbalance < 1:
            raise ValueError("imbalance must be >= 1")
        if self.imbalance == 1 and self.waiting_fraction > 0:
            raise ValueError(
                "a balanced kernel (imbalance=1) cannot have waiting ranks; "
                "waiting_fraction must be 0"
            )
        if self.imbalance > 1 and self.waiting_fraction == 0:
            raise ValueError(
                "imbalance > 1 requires waiting_fraction > 0 (someone must wait)"
            )
        # The activity factor is a pure function of the (frozen) config;
        # computing it here keeps the interpolation and its input
        # validation off the per-epoch hot paths.
        object.__setattr__(
            self,
            "_kappa",
            float(activity_factor(self.intensity, self.vector, self.precision)),
        )

    # ------------------------------------------------------------------
    @property
    def kappa(self) -> float:
        """Compute-phase activity factor for the socket power model."""
        return self._kappa

    @property
    def compute_ceiling(self) -> str:
        """Name of the roofline compute ceiling this kernel is bound by."""
        prec = "dp" if self.precision is Precision.DOUBLE else "sp"
        return f"{prec}_fma_{self.vector.value}"

    @property
    def common_flops_gflop(self) -> float:
        """FLOPs of the common work per node per iteration (GFLOP)."""
        return self.intensity * self.common_traffic_gb

    def node_work(self, critical: bool) -> Tuple[float, float]:
        """(traffic_gb, gflop) for one node-iteration.

        Critical-path nodes carry ``imbalance`` times the common work.
        """
        scale = float(self.imbalance) if critical else 1.0
        return scale * self.common_traffic_gb, scale * self.common_flops_gflop

    def critical_node_fraction(self) -> float:
        """Fraction of the job's nodes on the critical path."""
        return 1.0 - self.waiting_fraction

    def label(self) -> str:
        """Compact human-readable identifier used in reports and figures."""
        parts = [f"{self.intensity:g}f/b", self.vector.value]
        if self.precision is Precision.SINGLE:
            parts.append("sp")
        if self.imbalance > 1:
            parts.append(f"{int(self.waiting_fraction * 100)}%w@{self.imbalance}x")
        else:
            parts.append("balanced")
        return "-".join(parts)

    @staticmethod
    def grid_column_label(waiting_fraction: float, imbalance: int) -> str:
        """Column label matching the paper's Fig. 4/5 heat maps."""
        if imbalance == 1:
            return "0%"
        return f"{int(waiting_fraction * 100)}% at {imbalance}x"
