"""Workload substrate: the synthetic arithmetic-intensity kernel and mixes.

The paper evaluates with a synthetic kernel (its §IV, Fig. 2; released by
the authors as the "arithmetic-intensity" benchmark) whose knobs are:

* **computational intensity** — FLOPs per byte of memory traffic,
* **vector length** — 128-bit (xmm) or 256-bit (ymm) FMA instructions,
* **percent of waiting ranks** — fraction of the job's processes on the
  non-critical path, polling at the bulk-synchronous barrier,
* **imbalance factor** — how much more work the critical path performs
  (2x / 3x in the paper's grid).

This subpackage models that kernel analytically (:mod:`.kernel`), lays out
jobs over nodes (:mod:`.job`), builds the configuration catalog spanning
the paper's Fig. 4/5 heat-map grid (:mod:`.catalog`), constructs the six
workload mixes of Table II (:mod:`.mixes`), and generates the Fig. 1
facility power trace (:mod:`.facility`).
"""

from repro.workload.kernel import (
    KernelConfig,
    VectorWidth,
    Precision,
    activity_factor,
    WAITING_IMBALANCE_GRID,
    INTENSITY_GRID,
)
from repro.workload.job import Job, WorkloadMix
from repro.workload.catalog import ConfigCatalog, build_catalog
from repro.workload.mixes import MixBuilder, MIX_NAMES
from repro.workload.facility import FacilityTraceConfig, generate_facility_trace
from repro.workload.phases import (
    WorkloadPhase,
    PhasedWorkload,
    PhasedRunResult,
    simulate_phased_job,
)

__all__ = [
    "KernelConfig",
    "VectorWidth",
    "Precision",
    "activity_factor",
    "WAITING_IMBALANCE_GRID",
    "INTENSITY_GRID",
    "Job",
    "WorkloadMix",
    "ConfigCatalog",
    "build_catalog",
    "MixBuilder",
    "MIX_NAMES",
    "FacilityTraceConfig",
    "generate_facility_trace",
    "WorkloadPhase",
    "PhasedWorkload",
    "PhasedRunResult",
    "simulate_phased_job",
]
