"""Jobs and workload mixes: the scheduling units of the evaluation.

A :class:`Job` is one submission of the synthetic kernel over a set of
nodes; a :class:`WorkloadMix` is the co-scheduled set of jobs the paper
calls a "workload mix" (Table II).  The mix also provides the flattened
per-host view (node roles, activity factors, work arrays) the vectorised
execution engine consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.workload.kernel import KernelConfig, POLL_ACTIVITY_FACTOR

__all__ = ["Job", "WorkloadMix", "HostLayout"]


@dataclass(frozen=True)
class Job:
    """One job: a kernel configuration over ``node_count`` nodes.

    ``iterations`` matches the paper's 100 measured iterations per
    benchmark configuration (Fig. 8 caption).
    """

    name: str
    config: KernelConfig
    node_count: int
    iterations: int = 100

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError("node_count must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be positive")

    def critical_node_count(self) -> int:
        """Nodes on the critical path (at least one, by construction).

        The benchmark rounds the waiting fraction onto whole nodes and
        always keeps a non-empty critical set — a job where every node
        waits would make no progress.
        """
        waiting = int(round(self.node_count * self.config.waiting_fraction))
        waiting = min(waiting, self.node_count - 1)
        return self.node_count - waiting


@dataclass(frozen=True)
class HostLayout:
    """Flattened per-host arrays for a mix (execution-engine input).

    Attributes
    ----------
    job_index:
        For each host, the index of its job within the mix.
    job_boundaries:
        Start offset of each job's host block plus a final sentinel, for
        ``np.maximum.reduceat``-style segmented reductions.
    critical:
        Boolean mask — host carries critical-path (imbalance-scaled) work.
    kappa:
        Compute-phase activity factor per host.
    poll_kappa:
        Barrier-poll activity factor per host.
    traffic_gb / gflop:
        Per-iteration work of each host.
    compute_ceiling_index:
        Index into :attr:`ceiling_names` selecting each host's roofline
        compute ceiling.
    ceiling_names:
        The distinct roofline ceiling names appearing in the mix.
    """

    job_index: np.ndarray
    job_boundaries: np.ndarray
    critical: np.ndarray
    kappa: np.ndarray
    poll_kappa: np.ndarray
    traffic_gb: np.ndarray
    gflop: np.ndarray
    compute_ceiling_index: np.ndarray
    ceiling_names: Tuple[str, ...]

    @property
    def host_count(self) -> int:
        """Total hosts across all jobs."""
        return int(self.job_index.size)


@dataclass(frozen=True)
class WorkloadMix:
    """A co-scheduled set of jobs (paper Table II row).

    Hosts are assigned to jobs in declaration order: job ``j`` occupies the
    contiguous block ``[offsets[j], offsets[j+1])`` of the mix's host index
    space.  Within each job, the *first* ``critical_node_count`` hosts are
    the critical path; which physical nodes those indices map to is decided
    by the resource manager's allocator.
    """

    name: str
    jobs: Tuple[Job, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("a mix needs at least one job")
        names = [j.name for j in self.jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate job names in mix: {names!r}")

    # ------------------------------------------------------------------
    @property
    def total_nodes(self) -> int:
        """Sum of node counts over jobs."""
        return sum(j.node_count for j in self.jobs)

    @property
    def job_names(self) -> Tuple[str, ...]:
        """Job names in declaration order."""
        return tuple(j.name for j in self.jobs)

    def job_offsets(self) -> np.ndarray:
        """Host-index start offsets per job, with a final sentinel."""
        counts = np.array([j.node_count for j in self.jobs], dtype=int)
        return np.concatenate([[0], np.cumsum(counts)])

    def layout(self) -> HostLayout:
        """The flattened per-host arrays for the execution engine.

        The mix is frozen, so the layout is built once and memoized; every
        subsequent call returns the same :class:`HostLayout` instance.  Its
        arrays are marked read-only — sweep code that evaluated thousands
        of scenarios used to spend ~20 % of its wall time rebuilding this
        structure per call, and a shared cached object must not be
        mutable.
        """
        cached = self.__dict__.get("_layout")
        if cached is None:
            cached = self._build_layout()
            object.__setattr__(self, "_layout", cached)
        return cached

    def _build_layout(self) -> HostLayout:
        """Construct the per-host arrays (uncached; see :meth:`layout`)."""
        offsets = self.job_offsets()
        total = int(offsets[-1])
        job_index = np.empty(total, dtype=int)
        critical = np.zeros(total, dtype=bool)
        kappa = np.empty(total, dtype=float)
        traffic = np.empty(total, dtype=float)
        gflop = np.empty(total, dtype=float)
        ceiling_names: List[str] = []
        ceiling_lookup: Dict[str, int] = {}
        ceiling_index = np.empty(total, dtype=int)

        for j, job in enumerate(self.jobs):
            lo, hi = int(offsets[j]), int(offsets[j + 1])
            job_index[lo:hi] = j
            n_crit = job.critical_node_count()
            critical[lo:lo + n_crit] = True
            cfg = job.config
            kappa[lo:hi] = cfg.kappa
            crit_traffic, crit_gflop = cfg.node_work(critical=True)
            wait_traffic, wait_gflop = cfg.node_work(critical=False)
            traffic[lo:lo + n_crit] = crit_traffic
            gflop[lo:lo + n_crit] = crit_gflop
            traffic[lo + n_crit:hi] = wait_traffic
            gflop[lo + n_crit:hi] = wait_gflop
            name = cfg.compute_ceiling
            if name not in ceiling_lookup:
                ceiling_lookup[name] = len(ceiling_names)
                ceiling_names.append(name)
            ceiling_index[lo:hi] = ceiling_lookup[name]

        layout = HostLayout(
            job_index=job_index,
            job_boundaries=offsets,
            critical=critical,
            kappa=kappa,
            poll_kappa=np.full(total, POLL_ACTIVITY_FACTOR),
            traffic_gb=traffic,
            gflop=gflop,
            compute_ceiling_index=ceiling_index,
            ceiling_names=tuple(ceiling_names),
        )
        for array in (layout.job_index, layout.job_boundaries, layout.critical,
                      layout.kappa, layout.poll_kappa, layout.traffic_gb,
                      layout.gflop, layout.compute_ceiling_index):
            array.setflags(write=False)
        return layout

    def iterations_array(self) -> np.ndarray:
        """Per-job iteration counts (memoized; the array is read-only)."""
        cached = self.__dict__.get("_iterations_array")
        if cached is None:
            cached = np.array([j.iterations for j in self.jobs], dtype=int)
            cached.setflags(write=False)
            object.__setattr__(self, "_iterations_array", cached)
        return cached

    def common_iterations(self) -> int:
        """The iteration count shared by every job in the mix.

        The bulk-synchronous engine requires a single iteration count per
        mix; this validates it once per mix object (memoized) instead of
        once per simulated execution.
        """
        cached = self.__dict__.get("_common_iterations")
        if cached is None:
            iters = self.iterations_array()
            if np.any(iters != iters[0]):
                raise ValueError(
                    "all jobs in a mix must run the same iteration count "
                    f"(got {dict(zip(self.job_names, iters.tolist()))})"
                )
            cached = int(iters[0])
            object.__setattr__(self, "_common_iterations", cached)
        return cached
