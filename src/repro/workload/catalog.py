"""Configuration catalog spanning the paper's characterization grid.

The paper characterizes the kernel over a grid of intensities and
waiting/imbalance combinations (the rows and columns of Figs. 4 and 5) in
both 128-bit and 256-bit vector variants, then composes its Table II mixes
from that universe.  :func:`build_catalog` enumerates the same universe and
:class:`ConfigCatalog` provides the ranking and selection primitives the
mix builder uses (e.g. "the nine lowest-power workload configurations" for
the LowPower mix).

Power rankings use the *nominal* hardware model (variation multiplier 1):
the paper likewise ranks configurations by their characterization-run
averages over similarly-performing nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.node import NodePowerModel
from repro.workload.kernel import (
    INTENSITY_GRID,
    WAITING_IMBALANCE_GRID,
    KernelConfig,
    Precision,
    VectorWidth,
)

__all__ = ["ConfigCatalog", "build_catalog"]


@dataclass(frozen=True)
class ConfigCatalog:
    """An ordered universe of kernel configurations with power rankings."""

    configs: Tuple[KernelConfig, ...]
    power_model: NodePowerModel = field(default_factory=NodePowerModel)

    def __post_init__(self) -> None:
        if not self.configs:
            raise ValueError("catalog must not be empty")

    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)

    # ------------------------------------------------------------------
    def uncapped_power_w(self, config: KernelConfig) -> float:
        """Nominal uncapped node power of a configuration's *compute* phase.

        This is the monitor-agent steady-state power on a critical-path
        node.
        """
        return float(self.power_model.uncapped_power(config.kappa))

    def uncapped_poll_power_w(self) -> float:
        """Nominal uncapped node power while busy-polling at the barrier."""
        from repro.workload.kernel import POLL_ACTIVITY_FACTOR

        return float(self.power_model.uncapped_power(POLL_ACTIVITY_FACTOR))

    def mean_monitor_power_w(self, config: KernelConfig) -> float:
        """Job-average uncapped node power — the paper's Fig. 4 cell value.

        Critical-path nodes compute for the whole iteration; waiting nodes
        compute for ``1/imbalance`` of it and busy-poll the rest.  The
        job average weights the two node classes by the waiting fraction.
        This is the quantity the monitor-agent characterization reports
        and the quantity workload rankings (LowPower / HighPower mixes)
        sort by.
        """
        p_compute = self.uncapped_power_w(config)
        if config.imbalance == 1:
            return p_compute
        p_poll = self.uncapped_poll_power_w()
        compute_share = 1.0 / config.imbalance
        p_waiting = compute_share * p_compute + (1.0 - compute_share) * p_poll
        w = config.waiting_fraction
        return (1.0 - w) * p_compute + w * p_waiting

    def ranked_by_power(self, descending: bool = False) -> List[KernelConfig]:
        """All configurations sorted by job-average uncapped power.

        Ties (identical activity factors) break by catalog order, keeping
        the ranking deterministic.
        """
        powers = np.array([self.mean_monitor_power_w(c) for c in self.configs])
        order = np.argsort(powers, kind="stable")
        if descending:
            order = order[::-1]
        return [self.configs[i] for i in order]

    def lowest_power(self, count: int) -> List[KernelConfig]:
        """The ``count`` lowest-power configurations (LowPower mix rule)."""
        return self.ranked_by_power()[:count]

    def highest_power(self, count: int) -> List[KernelConfig]:
        """The ``count`` highest-power configurations (HighPower mix rule)."""
        return self.ranked_by_power(descending=True)[:count]

    def random_selection(self, count: int, seed: int) -> List[KernelConfig]:
        """A seeded random shuffle pick (RandomLarge mix rule)."""
        rng = np.random.default_rng(seed)
        indices = rng.permutation(len(self.configs))[:count]
        return [self.configs[i] for i in sorted(indices)]

    def select(self, predicate: Callable[[KernelConfig], bool]) -> List[KernelConfig]:
        """All configurations satisfying ``predicate``, in catalog order."""
        return [c for c in self.configs if predicate(c)]

    def find(
        self,
        intensity: float,
        vector: VectorWidth = VectorWidth.YMM,
        waiting_fraction: float = 0.0,
        imbalance: int = 1,
    ) -> KernelConfig:
        """Exact lookup of one grid configuration; raises ``KeyError`` if absent."""
        for c in self.configs:
            if (
                c.intensity == intensity
                and c.vector is vector
                and c.waiting_fraction == waiting_fraction
                and c.imbalance == imbalance
            ):
                return c
        raise KeyError(
            f"no config intensity={intensity} vector={vector.value} "
            f"waiting={waiting_fraction} imbalance={imbalance}"
        )


def build_catalog(
    intensities: Sequence[float] = INTENSITY_GRID,
    vectors: Sequence[VectorWidth] = (VectorWidth.YMM, VectorWidth.XMM),
    grid: Sequence[Tuple[float, int]] = WAITING_IMBALANCE_GRID,
    precision: Precision = Precision.DOUBLE,
    power_model: Optional[NodePowerModel] = None,
) -> ConfigCatalog:
    """Enumerate the full characterization universe.

    Default arguments produce 9 intensities x 2 vector widths x 7
    waiting/imbalance columns = 126 configurations — the grid behind the
    paper's Figs. 4/5 in both vector variants.
    """
    configs: List[KernelConfig] = []
    for vector in vectors:
        for waiting, imbalance in grid:
            for intensity in intensities:
                configs.append(
                    KernelConfig(
                        intensity=intensity,
                        vector=vector,
                        precision=precision,
                        waiting_fraction=waiting,
                        imbalance=imbalance,
                    )
                )
    return ConfigCatalog(
        configs=tuple(configs),
        power_model=power_model if power_model is not None else NodePowerModel(),
    )
