"""The six workload mixes of the paper's Table II.

Each mix targets a policy's best (or worst) case:

``NeedUsedPower``
    Balanced jobs spanning a range of power levels where all consumed power
    is needed for performance — the best case for ``MinimizeWaste`` and the
    case where performance awareness buys nothing extra.
``HighImbalance``
    A single heavily imbalanced job across every node — the best case for
    ``JobAdaptive`` (intra-job shifting is all that is possible).
``WastefulPower``
    Jobs whose unconstrained power draw far exceeds the power they need
    when balanced for performance (lots of barrier polling) plus hungry
    balanced jobs to receive the freed budget — the best case for
    ``MixedAdaptive``.
``LowPower`` / ``HighPower``
    The nine lowest- / highest-power configurations, 100 nodes per job.
``RandomLarge``
    Nine configurations from a seeded random shuffle, 100 nodes per job.

The paper's Table II lists the exact kernel settings per mix; the published
text of that table is not machine-readable, so mixes are constructed
programmatically from the paper's stated selection rules over the
characterization catalog.  The resulting mixes match the paper's structure
(9 jobs x 100 nodes, except HighImbalance's single 900-node job) and
reproduce the qualitative power spreads each mix was designed to exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.workload.catalog import ConfigCatalog, build_catalog
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig, VectorWidth

__all__ = ["MIX_NAMES", "MixBuilder"]

#: Mix names in the paper's presentation order (Table II / Figs. 7-8 columns).
MIX_NAMES: Tuple[str, ...] = (
    "NeedUsedPower",
    "HighImbalance",
    "WastefulPower",
    "LowPower",
    "HighPower",
    "RandomLarge",
)


@dataclass
class MixBuilder:
    """Builds the Table II mixes from a configuration catalog.

    Parameters
    ----------
    catalog:
        The configuration universe (defaults to the full Fig. 4/5 grid).
    nodes_per_job:
        Nodes allocated to each job (paper: 100).
    jobs_per_mix:
        Jobs per mix (paper: 9, filling the 900-node medium partition).
    iterations:
        Iterations per job (paper: 100).
    random_seed:
        Seed for the RandomLarge shuffle.
    """

    catalog: ConfigCatalog = field(default_factory=build_catalog)
    nodes_per_job: int = 100
    jobs_per_mix: int = 9
    iterations: int = 100
    random_seed: int = 77

    # ------------------------------------------------------------------
    def build(self, name: str) -> WorkloadMix:
        """Build one mix by name (see :data:`MIX_NAMES`)."""
        builders = {
            "NeedUsedPower": self.need_used_power,
            "HighImbalance": self.high_imbalance,
            "WastefulPower": self.wasteful_power,
            "LowPower": self.low_power,
            "HighPower": self.high_power,
            "RandomLarge": self.random_large,
        }
        try:
            return builders[name]()
        except KeyError:
            raise KeyError(f"unknown mix {name!r}; expected one of {MIX_NAMES}") from None

    def build_all(self) -> Dict[str, WorkloadMix]:
        """All six mixes keyed by name."""
        return {name: self.build(name) for name in MIX_NAMES}

    # ------------------------------------------------------------------
    def _jobs_from_configs(self, prefix: str, configs: Sequence[KernelConfig]) -> WorkloadMix:
        jobs = tuple(
            Job(
                name=f"{prefix}-{i:02d}-{cfg.label()}",
                config=cfg,
                node_count=self.nodes_per_job,
                iterations=self.iterations,
            )
            for i, cfg in enumerate(configs)
        )
        return WorkloadMix(name=prefix, jobs=jobs)

    def need_used_power(self) -> WorkloadMix:
        """Balanced jobs, a range of power levels, needed == used power.

        Eight balanced low/medium-power jobs (xmm across the intensity
        range) plus one high-compute-intensity power-hungry job (ymm at
        the roofline ridge, where Fig. 4 peaks).
        """
        low = [
            self.catalog.find(i, VectorWidth.XMM)
            for i in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 16.0, 32.0)
        ]
        hungry = [self.catalog.find(8.0, VectorWidth.YMM)]
        return self._jobs_from_configs("NeedUsedPower", low + hungry)

    def high_imbalance(self) -> WorkloadMix:
        """A single, heavily imbalanced job across all nodes."""
        cfg = self.catalog.find(16.0, VectorWidth.YMM, waiting_fraction=0.75, imbalance=3)
        total = self.nodes_per_job * self.jobs_per_mix
        job = Job(
            name=f"HighImbalance-00-{cfg.label()}",
            config=cfg,
            node_count=total,
            iterations=self.iterations,
        )
        return WorkloadMix(name="HighImbalance", jobs=(job,))

    def wasteful_power(self) -> WorkloadMix:
        """Wasteful pollers plus hungry balanced receivers.

        Six jobs with heavy barrier polling (their unconstrained draw far
        exceeds their performance-balanced need) and three balanced
        power-hungry jobs that can absorb the freed budget.
        """
        wasteful = [
            self.catalog.find(4.0, VectorWidth.YMM, 0.50, 2),
            self.catalog.find(8.0, VectorWidth.YMM, 0.50, 3),
            self.catalog.find(16.0, VectorWidth.YMM, 0.75, 2),
            self.catalog.find(8.0, VectorWidth.YMM, 0.75, 3),
            self.catalog.find(32.0, VectorWidth.XMM, 0.75, 2),
            self.catalog.find(16.0, VectorWidth.XMM, 0.50, 2),
        ]
        hungry = [
            self.catalog.find(4.0, VectorWidth.YMM),
            self.catalog.find(8.0, VectorWidth.YMM),
            self.catalog.find(16.0, VectorWidth.YMM),
        ]
        return self._jobs_from_configs("WastefulPower", wasteful + hungry)

    def low_power(self) -> WorkloadMix:
        """The nine lowest-power configurations."""
        return self._jobs_from_configs(
            "LowPower", self.catalog.lowest_power(self.jobs_per_mix)
        )

    def high_power(self) -> WorkloadMix:
        """The nine highest-power configurations."""
        return self._jobs_from_configs(
            "HighPower", self.catalog.highest_power(self.jobs_per_mix)
        )

    def random_large(self) -> WorkloadMix:
        """Nine configurations from a seeded random shuffle."""
        return self._jobs_from_configs(
            "RandomLarge",
            self.catalog.random_selection(self.jobs_per_mix, self.random_seed),
        )
