"""Synthetic facility power trace — the paper's motivating Fig. 1.

Fig. 1 shows a year of total power draw for the Quartz system: a 1.35 MW
peak rating, instantaneous draw fluctuating with the job mix, and a one-day
moving average hovering near 0.83 MW — i.e. the procured power delivery is
chronically under-utilised, which motivates over-provisioning plus dynamic
power management.

No public sample-level dataset of that telemetry exists, so this module
generates a statistically similar trace: a base load, slow seasonal drift,
weekly and diurnal utilisation cycles, job-mix noise with realistic
autocorrelation, and occasional maintenance dips.  The analysis helpers
(moving average, utilisation statistics) are exactly what the figure
reports and are reused by the Fig. 1 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.units import ensure_positive

__all__ = ["FacilityTraceConfig", "FacilityTrace", "generate_facility_trace", "moving_average"]


@dataclass(frozen=True)
class FacilityTraceConfig:
    """Shape parameters for the synthetic facility trace.

    Defaults reproduce the Fig. 1 statistics: 1.35 MW rating, ~0.83 MW
    one-day-average draw, visible diurnal/weekly structure, and transient
    peaks that approach but do not exceed the rating.
    """

    rating_mw: float = 1.35
    mean_draw_mw: float = 0.83
    days: int = 280
    samples_per_day: int = 288  # 5-minute telemetry
    seasonal_amplitude_mw: float = 0.05
    weekly_amplitude_mw: float = 0.04
    diurnal_amplitude_mw: float = 0.09
    noise_std_mw: float = 0.08
    noise_correlation: float = 0.97
    maintenance_dips: int = 3
    dip_depth_mw: float = 0.45
    dip_duration_days: float = 1.5
    seed: int = 2017

    def __post_init__(self) -> None:
        ensure_positive(self.rating_mw, "rating_mw")
        ensure_positive(self.mean_draw_mw, "mean_draw_mw")
        ensure_positive(self.days, "days")
        ensure_positive(self.samples_per_day, "samples_per_day")
        if self.mean_draw_mw >= self.rating_mw:
            raise ValueError("mean draw must be below the rating")
        if not 0.0 <= self.noise_correlation < 1.0:
            raise ValueError("noise_correlation must be in [0, 1)")


@dataclass(frozen=True)
class FacilityTrace:
    """A generated trace plus its analysis (Fig. 1 contents)."""

    config: FacilityTraceConfig
    time_days: np.ndarray
    power_mw: np.ndarray
    daily_average_mw: np.ndarray

    def statistics(self) -> Dict[str, float]:
        """Summary statistics matching what Fig. 1 lets a reader estimate."""
        return {
            "rating_mw": self.config.rating_mw,
            "mean_mw": float(np.mean(self.power_mw)),
            "peak_mw": float(np.max(self.power_mw)),
            "min_mw": float(np.min(self.power_mw)),
            "mean_daily_average_mw": float(np.mean(self.daily_average_mw)),
            "mean_utilization": float(np.mean(self.power_mw) / self.config.rating_mw),
            "peak_utilization": float(np.max(self.power_mw) / self.config.rating_mw),
            "stranded_power_mw": float(self.config.rating_mw - np.mean(self.power_mw)),
        }


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centred-start moving average with a warm-up ramp.

    The first ``window - 1`` samples average over the data available so
    far (cumulative mean), after which a full sliding window applies —
    the same treatment a monitoring dashboard gives a day-long window.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    values = np.asarray(values, dtype=float)
    if window == 1 or values.size <= 1:
        return values.copy()
    cumsum = np.cumsum(values)
    out = np.empty_like(values)
    head = min(window, values.size)
    out[:head] = cumsum[:head] / np.arange(1, head + 1)
    if values.size > window:
        out[window:] = (cumsum[window:] - cumsum[:-window]) / window
    return out


def generate_facility_trace(
    config: "FacilityTraceConfig | None" = None,
) -> FacilityTrace:
    """Generate the synthetic year-long facility power trace.

    The construction sums deterministic cycles (seasonal, weekly, diurnal)
    with an AR(1) job-mix noise process, injects maintenance dips, re-centres
    the mean onto ``mean_draw_mw``, and clips at 97 % of the rating — the
    real system's draw approaches but never reaches its rating (Fig. 1).
    """
    config = config if config is not None else FacilityTraceConfig()
    rng = np.random.default_rng(config.seed)
    n = config.days * config.samples_per_day
    t_days = np.arange(n) / config.samples_per_day

    seasonal = config.seasonal_amplitude_mw * np.sin(2 * np.pi * t_days / 365.0 + 0.7)
    weekly = config.weekly_amplitude_mw * np.sin(2 * np.pi * t_days / 7.0)
    diurnal = config.diurnal_amplitude_mw * np.sin(2 * np.pi * t_days - np.pi / 2)

    # AR(1) noise: rho-correlated at the sample level, matching how the job
    # mix changes on hour-ish timescales rather than white 5-minute noise.
    rho = config.noise_correlation
    innovations = rng.normal(0.0, config.noise_std_mw * np.sqrt(1 - rho**2), size=n)
    noise = np.empty(n)
    noise[0] = rng.normal(0.0, config.noise_std_mw)
    for i in range(1, n):
        noise[i] = rho * noise[i - 1] + innovations[i]

    power = config.mean_draw_mw + seasonal + weekly + diurnal + noise

    # Maintenance dips: the real trace shows occasional deep multi-day drops.
    for _ in range(config.maintenance_dips):
        start = rng.integers(0, max(1, n - 1))
        length = int(config.dip_duration_days * config.samples_per_day)
        end = min(n, start + length)
        ramp = np.linspace(0, np.pi, max(end - start, 1))
        power[start:end] -= config.dip_depth_mw * np.sin(ramp)

    # Re-centre onto the configured mean *through* the clip: clipping a
    # re-centred trace pushes the realized mean back off target (deep or
    # overlapping maintenance dips used to leave it visibly low), so
    # iterate shift-then-clip until the clipped mean converges.  The
    # shift only moves the whole trace, so the cycle/noise/dip shape is
    # preserved; convergence is monotone because clipping is a
    # contraction in the mean.
    lo, hi = 0.05, 0.97 * config.rating_mw
    power = np.clip(power + (config.mean_draw_mw - np.mean(power)), lo, hi)
    for _ in range(64):
        error = config.mean_draw_mw - float(np.mean(power))
        if abs(error) <= 1e-9:
            break
        power = np.clip(power + error, lo, hi)

    daily = moving_average(power, config.samples_per_day)
    return FacilityTrace(
        config=config,
        time_days=t_days,
        power_mw=power,
        daily_average_mw=daily,
    )
