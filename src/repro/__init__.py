"""repro — a unified HPC power-management stack, reproduced in simulation.

This package reproduces *"Introducing Application Awareness Into a Unified
Power Management Stack"* (Wilson et al., IPDPS Workshops 2021): a resource
manager and a GEOPM-style job runtime integrated through shared power
characterization, evaluated over five power-management policies, six
workload mixes, and three over-provisioning levels on a simulated
LLNL-Quartz-like cluster.

Quick start::

    from repro import ExperimentConfig, ExperimentGrid, check_takeaways

    grid = ExperimentGrid(ExperimentConfig.small())
    results = grid.run_all()
    report = check_takeaways(results)
    assert report.all_hold()

Layers (bottom-up):

* :mod:`repro.hardware` — CPU power/frequency model, RAPL/MSR emulation,
  roofline ceilings, manufacturing variation, cluster.
* :mod:`repro.workload` — the synthetic arithmetic-intensity kernel, jobs,
  the six Table II mixes, the Fig. 1 facility trace.
* :mod:`repro.sim` — vectorised bulk-synchronous execution engine.
* :mod:`repro.runtime` — GEOPM-style agents (monitor, governor, power
  balancer) and the per-job controller.
* :mod:`repro.characterization` — monitor/balancer characterization
  (Figs. 4-5), variation survey (Fig. 6), budget derivation (Table III).
* :mod:`repro.core` — the five policies (the paper's contribution).
* :mod:`repro.manager` — resource manager: queue, scheduler, power
  manager.
* :mod:`repro.experiments` — the full evaluation grid, metrics, figure
  and table builders, takeaway checks, ablations.
* :mod:`repro.analysis` — statistics, ASCII rendering, CSV export.
"""

from repro.core import (
    JobAdaptivePolicy,
    MinimizeWastePolicy,
    MixedAdaptivePolicy,
    POLICY_NAMES,
    Policy,
    PrecharacterizedPolicy,
    StaticCapsPolicy,
    create_policy,
    default_policies,
)
from repro.experiments import (
    ExperimentConfig,
    ExperimentGrid,
    GridResults,
    check_takeaways,
    savings_vs_baseline,
)
from repro.workload import KernelConfig, MixBuilder, VectorWidth, MIX_NAMES

__version__ = "1.0.0"

__all__ = [
    "Policy",
    "PrecharacterizedPolicy",
    "StaticCapsPolicy",
    "MinimizeWastePolicy",
    "JobAdaptivePolicy",
    "MixedAdaptivePolicy",
    "POLICY_NAMES",
    "create_policy",
    "default_policies",
    "ExperimentConfig",
    "ExperimentGrid",
    "GridResults",
    "check_takeaways",
    "savings_vs_baseline",
    "KernelConfig",
    "VectorWidth",
    "MixBuilder",
    "MIX_NAMES",
    "__version__",
]
