"""Physical-unit conventions and validation helpers.

Every quantity in this library is a plain ``float`` or :class:`numpy.ndarray`
in a fixed SI-derived unit.  The conventions are:

===============  ==========================  =======================
Quantity         Unit                        Typical symbol
===============  ==========================  =======================
power            watt (W)                    ``power_w``
energy           joule (J)                   ``energy_j``
time             second (s)                  ``time_s``
frequency        gigahertz (GHz)             ``freq_ghz``
bandwidth        gigabytes per second        ``bw_gbps``
throughput       gigaFLOPS (GFLOP/s)         ``gflops``
work (compute)   gigaFLOPs                   ``gflop``
work (memory)    gigabytes                   ``gbyte``
intensity        FLOPs per byte              ``intensity``
===============  ==========================  =======================

Frequencies are kept in GHz (not Hz) because the power model's polynomial
coefficients are calibrated against GHz, and GFLOPS = GHz x FLOPs/cycle
then works without scale factors.

The helpers here raise :class:`ValueError` early with a descriptive message
instead of letting a bad unit propagate into the vectorised simulation where
it would surface as a cryptic broadcast error.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "KILO",
    "MEGA",
    "GIGA",
    "JOULES_PER_KWH",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "watts_to_kilowatts",
    "kilowatts_to_watts",
    "joules_to_kwh",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_fraction",
    "ensure_in_range",
    "ensure_monotonic_increasing",
]

KILO = 1.0e3
MEGA = 1.0e6
GIGA = 1.0e9

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
JOULES_PER_KWH = 3.6e6


def watts_to_kilowatts(power_w: float) -> float:
    """Convert watts to kilowatts."""
    return power_w / KILO


def kilowatts_to_watts(power_kw: float) -> float:
    """Convert kilowatts to watts."""
    return power_kw * KILO


def joules_to_kwh(energy_j: float) -> float:
    """Convert joules to kilowatt-hours."""
    return energy_j / JOULES_PER_KWH


def _is_scalar(value) -> bool:
    return np.ndim(value) == 0


def ensure_positive(value, name: str):
    """Validate that ``value`` (scalar or array) is strictly positive.

    Returns the value unchanged so the helper can be used inline::

        self.tdp_w = ensure_positive(tdp_w, "tdp_w")
    """
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if not np.all(arr > 0):
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return value


def ensure_non_negative(value, name: str):
    """Validate that ``value`` (scalar or array) is >= 0; return it."""
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if not np.all(arr >= 0):
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def ensure_fraction(value, name: str):
    """Validate that ``value`` lies in the closed interval [0, 1]; return it."""
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if not (np.all(arr >= 0.0) and np.all(arr <= 1.0)):
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def ensure_in_range(value, low: float, high: float, name: str):
    """Validate ``low <= value <= high`` element-wise; return ``value``."""
    if math.isnan(low) or math.isnan(high) or low > high:
        raise ValueError(f"invalid range [{low}, {high}] for {name}")
    arr = np.asarray(value, dtype=float)
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if not (np.all(arr >= low) and np.all(arr <= high)):
        raise ValueError(f"{name} must be within [{low}, {high}], got {value!r}")
    return value


def ensure_monotonic_increasing(values: Iterable[float], name: str):
    """Validate that a sequence is strictly increasing; return it as a list."""
    seq = list(values)
    for a, b in zip(seq, seq[1:]):
        if not b > a:
            raise ValueError(f"{name} must be strictly increasing, got {seq!r}")
    return seq
