"""Compute-node model: dual-socket package with RAPL control.

A :class:`Node` bundles the per-socket power model, the node's variation
multiplier, and a RAPL package, and exposes the node-level quantities the
rest of the stack works in (the paper's policies all reason about
*node-level* power: per-node caps, per-node observed power).

:class:`NodePowerModel` is the vectorised, stateless companion used by the
execution engine: it evaluates frequency/power maps for arrays of nodes at
once, which is how 900-node mixes stay fast in pure NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.cpu import CpuSpec, SocketPowerModel, QUARTZ_CPU
from repro.hardware.rapl import RaplPackage
from repro.units import ensure_positive

__all__ = ["Node", "NodePowerModel"]


@dataclass
class Node:
    """One compute node (identity + variation + RAPL state).

    Attributes
    ----------
    node_id:
        Stable integer identity within the cluster.
    efficiency:
        Variation multiplier from :mod:`repro.hardware.variation`.
    spec:
        Socket specification (both sockets identical).
    sockets:
        Socket count (Quartz nodes are dual-socket).
    """

    node_id: int
    efficiency: float = 1.0
    spec: CpuSpec = field(default_factory=lambda: QUARTZ_CPU)
    sockets: int = 2

    def __post_init__(self) -> None:
        ensure_positive(self.efficiency, "efficiency")
        if self.sockets < 1:
            raise ValueError("sockets must be >= 1")
        self.rapl = RaplPackage(self.spec, self.sockets)

    # ------------------------------------------------------------------
    @property
    def tdp_w(self) -> float:
        """Node TDP (sum of socket TDPs) — 240 W on Quartz."""
        return self.spec.tdp_w * self.sockets

    @property
    def min_cap_w(self) -> float:
        """Lowest settable node cap (sum of socket floors) — 136 W."""
        return self.spec.min_rapl_w * self.sockets

    def set_power_cap(self, node_power_w: float) -> float:
        """Program the node cap via RAPL; returns the cap actually set."""
        return self.rapl.set_node_power_limit(node_power_w)

    def power_cap(self) -> float:
        """Currently programmed node cap."""
        return self.rapl.node_power_limit()


@dataclass(frozen=True)
class NodePowerModel:
    """Vectorised node-level frequency/power map.

    Wraps :class:`SocketPowerModel` with the socket-count scaling: node
    power is ``sockets x`` socket power, and a node cap splits evenly
    across sockets (matching :meth:`RaplPackage.set_node_power_limit`).
    """

    spec: CpuSpec = field(default_factory=lambda: QUARTZ_CPU)
    sockets: int = 2

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise ValueError("sockets must be >= 1")
        object.__setattr__(self, "_socket_model", SocketPowerModel(self.spec))

    @property
    def socket_model(self) -> SocketPowerModel:
        """The underlying per-socket model."""
        return self._socket_model

    @property
    def tdp_w(self) -> float:
        """Node TDP in watts."""
        return self.spec.tdp_w * self.sockets

    @property
    def min_cap_w(self) -> float:
        """Lowest settable node-level cap in watts."""
        return self.spec.min_rapl_w * self.sockets

    def clamp_cap(self, cap_w):
        """Clamp node caps into the settable range ``[min_cap, tdp]``."""
        return np.clip(np.asarray(cap_w, dtype=float), self.min_cap_w, self.tdp_w)

    def freq_at_cap(self, cap_w, kappa, efficiency=1.0):
        """Achieved frequency (GHz) under node caps (vectorised)."""
        per_socket = np.asarray(cap_w, dtype=float) / self.sockets
        return self._socket_model.freq_at_power(per_socket, kappa, efficiency)

    def power_at_freq(self, freq_ghz, kappa, efficiency=1.0):
        """Node power (W) at a frequency and activity (vectorised)."""
        return self.sockets * self._socket_model.power_at(freq_ghz, kappa, efficiency)

    def consumed_power(self, cap_w, kappa, efficiency=1.0):
        """Steady-state node power under a cap.

        The node clocks as high as the cap allows (bounded by turbo) and
        draws the corresponding power; when the cap exceeds what the
        workload can use at turbo, consumption is activity-limited and
        falls below the cap — the effect behind the paper's Fig. 7
        under-utilisation bars.
        """
        f = self.freq_at_cap(cap_w, kappa, efficiency)
        return self.power_at_freq(f, kappa, efficiency)

    def uncapped_power(self, kappa, efficiency=1.0):
        """Node power with RAPL at TDP (the monitor-agent operating point)."""
        return self.consumed_power(self.tdp_w, kappa, efficiency)

    def cap_for_power(self, target_power_w, kappa, efficiency=1.0):
        """Smallest cap that permits drawing ``target_power_w``.

        Because consumption under a generous cap is activity-limited, the
        cap that *achieves* a target consumption equals the target itself
        whenever the target is attainable; this helper additionally clamps
        into the settable range, which is what policies must program.
        """
        return self.clamp_cap(target_power_w)
