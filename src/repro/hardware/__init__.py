"""Hardware substrate: CPU, RAPL/MSR emulation, nodes, cluster, roofline.

This subpackage simulates the pieces of the LLNL Quartz platform the paper's
power-management stack interacts with (Table I of the paper):

* :mod:`repro.hardware.cpu` — per-socket frequency/power model for the
  dual-socket Intel Xeon E5-2695 nodes (120 W TDP, 68 W RAPL floor,
  2.1 GHz base frequency).
* :mod:`repro.hardware.roofline` — roofline throughput model (Williams et
  al.) with the ceilings reported in the paper's Fig. 3 plus node-level
  ceilings used by the simulator.
* :mod:`repro.hardware.msr` / :mod:`repro.hardware.rapl` — a model-specific
  register file and the RAPL power-limit/energy-counter interface layered on
  it, mirroring how GEOPM drives msr-safe on the real machine.
* :mod:`repro.hardware.variation` — manufacturing variation model producing
  the low/medium/high frequency clusters of the paper's Fig. 6.
* :mod:`repro.hardware.node` / :mod:`repro.hardware.cluster` — node and
  cluster containers used by the resource manager.
"""

from repro.hardware.cpu import CpuSpec, SocketPowerModel, QUARTZ_CPU
from repro.hardware.roofline import (
    RooflineModel,
    ADVISOR_SINGLE_CORE_ROOFLINE,
    NODE_LEVEL_ROOFLINE,
)
from repro.hardware.msr import MsrFile, MsrAccessError
from repro.hardware.rapl import RaplDomain, RaplPackage
from repro.hardware.variation import VariationModel, QUARTZ_VARIATION
from repro.hardware.node import Node, NodePowerModel
from repro.hardware.cluster import Cluster

__all__ = [
    "CpuSpec",
    "SocketPowerModel",
    "QUARTZ_CPU",
    "RooflineModel",
    "ADVISOR_SINGLE_CORE_ROOFLINE",
    "NODE_LEVEL_ROOFLINE",
    "MsrFile",
    "MsrAccessError",
    "RaplDomain",
    "RaplPackage",
    "VariationModel",
    "QUARTZ_VARIATION",
    "Node",
    "NodePowerModel",
    "Cluster",
]
