"""Per-socket CPU specification and frequency/power model.

The paper's experiments run on LLNL Quartz: dual-socket Intel Xeon E5-2695
nodes with a 120 W thermal design power (TDP) per socket, a 68 W minimum
RAPL limit, and a 2.1 GHz base frequency (paper Table I).  Policies interact
with the CPU exclusively through RAPL power caps, so the only hardware
behaviour that matters to the reproduction is the mapping between a power
cap, the activity of the running workload, and the achieved frequency.

Model
-----
Socket power is an uncore constant plus an activity-scaled polynomial in
frequency::

    P(f) = P_uncore + kappa * eff * (c3 * f**3 + c1 * f)

* ``f`` — achieved all-core frequency in GHz.
* ``kappa`` — workload *activity factor* in (0, 1]; how hard the core
  pipelines, vector units, and caches are being driven.  Derived from the
  kernel configuration by :mod:`repro.workload.kernel`.
* ``eff`` — per-socket manufacturing variation multiplier (> 1 means the
  part burns more power for the same frequency; see
  :mod:`repro.hardware.variation`).

The cubic term models dynamic power (voltage scales roughly with frequency
in the DVFS band, so ``P_dyn ~ C * V^2 * f ~ f^3``) and the linear term
models leakage plus non-scaling core power.  The inverse map — achieved
frequency under a RAPL cap — is the single real root of the depressed cubic
``c3*f^3 + c1*f = budget``, computed in closed form (Cardano) so the
simulator can invert millions of host-iterations without iteration.

Calibration
-----------
Coefficients are calibrated so that, for the most power-hungry kernel
configuration (``kappa = 1``):

* uncapped, the socket reaches its 2.2 GHz all-core turbo at ~116 W,
  i.e. ~232 W per node — the hottest cell of the paper's Fig. 4 heatmap;
* under a 70 W socket cap the achieved frequency lands in the
  1.6–1.9 GHz band of the paper's Fig. 6 node survey, with the exact value
  set by the node's variation multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units import ensure_positive

__all__ = ["CpuSpec", "SocketPowerModel", "QUARTZ_CPU"]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of one CPU socket (paper Table I).

    Attributes
    ----------
    model:
        Marketing name, for reports.
    cores:
        Physical cores per socket.
    base_freq_ghz:
        Guaranteed all-core base frequency.
    turbo_freq_ghz:
        All-core turbo ceiling; the socket never clocks above this even
        with surplus power budget.
    min_freq_ghz:
        Lowest DVFS operating point; a cap below the power drawn at this
        frequency cannot slow the socket further (it would throttle via
        duty cycling on real hardware, which the paper's policies avoid by
        clamping caps to the RAPL minimum).
    tdp_w:
        Thermal design power; the default RAPL PL1 value.
    min_rapl_w:
        Lowest settable RAPL package limit (68 W on Quartz).
    uncore_power_w:
        Frequency-independent package power (memory controller, LLC, IO).
    dynamic_coeff:
        ``c3`` in the power polynomial (W / GHz^3).
    static_coeff:
        ``c1`` in the power polynomial (W / GHz).
    fma_width_flops:
        Peak double-precision FLOPs per cycle per core with 256-bit FMA
        (2 FMA ports x 4 doubles x 2 ops on Broadwell).
    """

    model: str = "Intel Xeon E5-2695 v4"
    cores: int = 18
    base_freq_ghz: float = 2.1
    turbo_freq_ghz: float = 2.2
    min_freq_ghz: float = 1.0
    tdp_w: float = 120.0
    min_rapl_w: float = 68.0
    uncore_power_w: float = 10.0
    dynamic_coeff: float = 7.816
    static_coeff: float = 10.35
    fma_width_flops: int = 16

    def __post_init__(self) -> None:
        ensure_positive(self.cores, "cores")
        ensure_positive(self.base_freq_ghz, "base_freq_ghz")
        ensure_positive(self.turbo_freq_ghz, "turbo_freq_ghz")
        ensure_positive(self.min_freq_ghz, "min_freq_ghz")
        ensure_positive(self.tdp_w, "tdp_w")
        ensure_positive(self.min_rapl_w, "min_rapl_w")
        ensure_positive(self.dynamic_coeff, "dynamic_coeff")
        ensure_positive(self.static_coeff, "static_coeff")
        if self.min_freq_ghz >= self.turbo_freq_ghz:
            raise ValueError("min_freq_ghz must be below turbo_freq_ghz")
        if self.min_rapl_w >= self.tdp_w:
            raise ValueError("min_rapl_w must be below tdp_w")
        if self.uncore_power_w >= self.min_rapl_w:
            raise ValueError("uncore power must fit under the RAPL floor")


#: The socket used throughout the paper's evaluation (Quartz, Table I).
QUARTZ_CPU = CpuSpec()


@dataclass(frozen=True)
class SocketPowerModel:
    """Bidirectional frequency <-> power map for one socket model.

    All methods are vectorised: scalars broadcast with arrays, so the
    simulator can evaluate a whole cluster in one call.

    Parameters
    ----------
    spec:
        The socket being modelled.
    """

    spec: CpuSpec = field(default_factory=CpuSpec)

    # ------------------------------------------------------------------
    # forward map: frequency -> power
    # ------------------------------------------------------------------
    def power_at(self, freq_ghz, kappa, efficiency=1.0):
        """Package power (W) at ``freq_ghz`` for activity ``kappa``.

        ``efficiency`` is the variation multiplier applied to the core
        (frequency-dependent) term only; uncore power does not vary
        meaningfully between parts.
        """
        f = np.asarray(freq_ghz, dtype=float)
        k = np.asarray(kappa, dtype=float)
        e = np.asarray(efficiency, dtype=float)
        core = self.spec.dynamic_coeff * f**3 + self.spec.static_coeff * f
        return self.spec.uncore_power_w + k * e * core

    # ------------------------------------------------------------------
    # inverse map: power budget -> frequency
    # ------------------------------------------------------------------
    def freq_at_power(self, power_w, kappa, efficiency=1.0):
        """Achieved frequency (GHz) under a package power cap.

        Solves ``c3 f^3 + c1 f = B`` for the core budget
        ``B = (cap - uncore) / (kappa * efficiency)`` via Cardano's formula
        for the depressed cubic (single real root since both coefficients
        are positive), then clamps to the DVFS band
        ``[min_freq_ghz, turbo_freq_ghz]``.

        A cap at or below uncore power yields the minimum frequency — the
        socket cannot trade uncore power for core frequency.
        """
        p = np.asarray(power_w, dtype=float)
        k = np.asarray(kappa, dtype=float)
        e = np.asarray(efficiency, dtype=float)
        budget = (p - self.spec.uncore_power_w) / (k * e)
        budget = np.maximum(budget, 0.0)
        f = self._solve_core_cubic(budget)
        return np.clip(f, self.spec.min_freq_ghz, self.spec.turbo_freq_ghz)

    def _solve_core_cubic(self, budget):
        """Real root of ``c3 f^3 + c1 f - budget = 0`` (vectorised Cardano).

        With ``p = c1/c3 > 0`` and ``q = -budget/c3`` the discriminant
        ``q^2/4 + p^3/27`` is always positive, so there is exactly one real
        root and ``np.cbrt`` handles the negative radicand branch exactly.
        """
        c3 = self.spec.dynamic_coeff
        c1 = self.spec.static_coeff
        p = c1 / c3
        q = -np.asarray(budget, dtype=float) / c3
        disc = np.sqrt(q**2 / 4.0 + p**3 / 27.0)
        return np.cbrt(-q / 2.0 + disc) + np.cbrt(-q / 2.0 - disc)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def uncapped_power(self, kappa, efficiency=1.0):
        """Steady-state power with no RAPL cap (runs at turbo under TDP).

        The socket clocks to the lower of its turbo ceiling and the
        frequency the TDP allows, then draws the corresponding power.
        """
        f = self.freq_at_power(self.spec.tdp_w, kappa, efficiency)
        return self.power_at(f, kappa, efficiency)

    def effective_cap(self, cap_w):
        """Clamp a requested cap into the settable RAPL range."""
        return np.clip(np.asarray(cap_w, dtype=float), self.spec.min_rapl_w, self.spec.tdp_w)

    def floor_power(self, kappa, efficiency=1.0):
        """Power drawn at the RAPL floor for the given activity.

        This is the lowest steady-state power a policy can force for a
        socket running this workload: either the floor cap itself (if the
        workload can use it all) or the power at minimum frequency.
        """
        f = self.freq_at_power(self.spec.min_rapl_w, kappa, efficiency)
        return np.minimum(
            self.power_at(f, kappa, efficiency),
            np.asarray(self.spec.min_rapl_w, dtype=float),
        )
