"""Model-specific register (MSR) file emulation.

On the real Quartz system, GEOPM reads and writes power-management MSRs
through the msr-safe kernel module (paper §V-A1, ref. [13]), which exposes
an allowlist-filtered register file per CPU.  This module emulates that
interface: a 64-bit register file with an allowlist, so the RAPL layer in
:mod:`repro.hardware.rapl` performs the same encode/mask/shift work GEOPM
performs on hardware, and tests can assert that policies never touch
registers outside the allowlist.

Register addresses follow the Intel SDM for server parts:

=========================  ==========  =====================================
Register                   Address     Role
=========================  ==========  =====================================
MSR_RAPL_POWER_UNIT        ``0x606``   power/energy/time unit exponents
MSR_PKG_POWER_LIMIT        ``0x610``   PL1/PL2 package power limits
MSR_PKG_ENERGY_STATUS      ``0x611``   32-bit wrapping energy accumulator
MSR_PKG_POWER_INFO         ``0x614``   TDP / min / max package power
IA32_PERF_STATUS           ``0x198``   current operating frequency ratio
=========================  ==========  =====================================
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

__all__ = [
    "MSR_RAPL_POWER_UNIT",
    "MSR_PKG_POWER_LIMIT",
    "MSR_PKG_ENERGY_STATUS",
    "MSR_PKG_POWER_INFO",
    "IA32_PERF_STATUS",
    "DEFAULT_ALLOWLIST",
    "MsrAccessError",
    "MsrFile",
]

MSR_RAPL_POWER_UNIT = 0x606
MSR_PKG_POWER_LIMIT = 0x610
MSR_PKG_ENERGY_STATUS = 0x611
MSR_PKG_POWER_INFO = 0x614
IA32_PERF_STATUS = 0x198

#: Registers msr-safe exposes to the power stack in this reproduction.
DEFAULT_ALLOWLIST: FrozenSet[int] = frozenset(
    {
        MSR_RAPL_POWER_UNIT,
        MSR_PKG_POWER_LIMIT,
        MSR_PKG_ENERGY_STATUS,
        MSR_PKG_POWER_INFO,
        IA32_PERF_STATUS,
    }
)

_U64_MASK = (1 << 64) - 1


class MsrAccessError(PermissionError):
    """Raised on access to a register outside the msr-safe allowlist."""


class MsrFile:
    """A 64-bit register file guarded by an allowlist.

    Mirrors the semantics of ``/dev/cpu/*/msr_safe``: reads of unknown but
    allowed registers return 0 (hardware reset value in this emulation),
    writes are masked to 64 bits, and any access outside the allowlist
    raises :class:`MsrAccessError`.
    """

    def __init__(self, allowlist: Iterable[int] = DEFAULT_ALLOWLIST) -> None:
        self._allowlist: FrozenSet[int] = frozenset(allowlist)
        self._registers: Dict[int, int] = {}

    @property
    def allowlist(self) -> FrozenSet[int]:
        """Registers this file permits access to."""
        return self._allowlist

    def _check(self, address: int) -> None:
        if address not in self._allowlist:
            raise MsrAccessError(f"MSR 0x{address:x} is not in the msr-safe allowlist")

    def read(self, address: int) -> int:
        """Read a 64-bit register; unwritten registers read as zero."""
        self._check(address)
        return self._registers.get(address, 0)

    def write(self, address: int, value: int) -> None:
        """Write a 64-bit register (value is masked to 64 bits)."""
        self._check(address)
        if value < 0:
            raise ValueError(f"MSR value must be non-negative, got {value}")
        self._registers[address] = value & _U64_MASK

    def write_field(self, address: int, shift: int, width: int, value: int) -> None:
        """Read-modify-write a bit field ``[shift, shift + width)``."""
        if not 0 <= shift < 64 or not 0 < width <= 64 - shift:
            raise ValueError(f"invalid MSR field shift={shift} width={width}")
        mask = ((1 << width) - 1) << shift
        if value < 0 or value > (1 << width) - 1:
            raise ValueError(f"field value {value} does not fit in {width} bits")
        current = self.read(address)
        self.write(address, (current & ~mask) | (value << shift))

    def read_field(self, address: int, shift: int, width: int) -> int:
        """Read a bit field ``[shift, shift + width)``."""
        if not 0 <= shift < 64 or not 0 < width <= 64 - shift:
            raise ValueError(f"invalid MSR field shift={shift} width={width}")
        return (self.read(address) >> shift) & ((1 << width) - 1)
