"""Manufacturing variation model for node power efficiency.

The paper (§V-A2, Fig. 6) surveys 2 000 Quartz nodes under a 70 W per-socket
cap with a power-hungry workload, k-means-clusters the achieved frequencies
into three groups (low n=522, medium n=918, high n=560 at roughly 1.6 /
1.75 / 1.9 GHz), and uses the medium cluster for all experiments so results
reflect central-tendency hardware.

Variation is modelled as a per-node *efficiency multiplier* ``eff`` applied
to the frequency-dependent term of the socket power polynomial: a node with
``eff > 1`` burns more power at the same frequency, so under a fixed cap it
achieves a lower frequency.  Multipliers are drawn from a three-component
Gaussian mixture whose weights reproduce the paper's cluster sizes in
expectation; within-component spread produces the whisker widths of Fig. 6.

The same multiplier is used for both sockets of a node — the paper selects
*nodes*, and per-socket differences would be invisible at that granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.units import ensure_positive

__all__ = ["VariationComponent", "VariationModel", "QUARTZ_VARIATION"]


@dataclass(frozen=True)
class VariationComponent:
    """One bin of the part-quality distribution.

    ``mean`` is the efficiency multiplier's centre (1.0 = nominal part,
    > 1 = power-inefficient part that clocks lower under a cap).
    """

    label: str
    weight: float
    mean: float
    std: float

    def __post_init__(self) -> None:
        ensure_positive(self.weight, f"{self.label} weight")
        ensure_positive(self.mean, f"{self.label} mean")
        ensure_positive(self.std, f"{self.label} std")


@dataclass(frozen=True)
class VariationModel:
    """Gaussian-mixture generator of per-node efficiency multipliers."""

    components: Tuple[VariationComponent, ...]

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("variation model needs at least one component")
        total = sum(c.weight for c in self.components)
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"component weights must sum to 1, got {total}")

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` efficiency multipliers (>= 0.8 enforced).

        Component membership is multinomial; the hard floor guards against
        pathological tail draws that would imply a physically implausible
        part (20 % better than nominal).
        """
        if count < 1:
            raise ValueError("count must be positive")
        weights = np.array([c.weight for c in self.components])
        means = np.array([c.mean for c in self.components])
        stds = np.array([c.std for c in self.components])
        which = rng.choice(len(self.components), size=count, p=weights)
        draws = rng.normal(means[which], stds[which])
        return np.maximum(draws, 0.8)

    def component_labels(self) -> Tuple[str, ...]:
        """Labels ordered as the components were declared."""
        return tuple(c.label for c in self.components)


#: Calibrated so a 2 000-node survey (seed 2021) k-means-partitions into
#: clusters of 529 / 915 / 556 nodes — the paper's Fig. 6 reports
#: 522 / 918 / 560.  "high" frequency nodes are the power-*efficient*
#: parts (low multiplier).
QUARTZ_VARIATION = VariationModel(
    components=(
        VariationComponent(label="high", weight=0.270, mean=0.900, std=0.018),
        VariationComponent(label="medium", weight=0.470, mean=1.000, std=0.022),
        VariationComponent(label="low", weight=0.260, mean=1.105, std=0.018),
    )
)
