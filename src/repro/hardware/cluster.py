"""Cluster container: a population of nodes with variation applied.

The paper's evaluation uses 918 "medium-frequency" Quartz nodes selected by
the Fig. 6 survey.  :class:`Cluster` owns the node population and the
sampling of variation multipliers, and provides the selection primitives
the characterization pipeline needs (survey arrays, subsetting).

Node state that matters to the simulator (efficiency multipliers) is held
in a flat NumPy array so the execution engine never has to iterate over
:class:`~repro.hardware.node.Node` objects; the object layer exists for the
RAPL/MSR plumbing and for user-facing inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.cpu import CpuSpec, QUARTZ_CPU
from repro.hardware.node import Node, NodePowerModel
from repro.hardware.variation import VariationModel, QUARTZ_VARIATION

__all__ = ["Cluster"]


@dataclass
class Cluster:
    """A homogeneous-SKU cluster with per-node manufacturing variation.

    Parameters
    ----------
    node_count:
        Number of nodes to instantiate.
    spec:
        Socket specification shared by all nodes.
    variation:
        Distribution the per-node efficiency multipliers are drawn from;
        pass ``None`` for an idealised zero-variation cluster.
    seed:
        Seed for the variation draw (reproducible surveys).
    sockets_per_node:
        Socket count per node.
    """

    node_count: int
    spec: CpuSpec = field(default_factory=lambda: QUARTZ_CPU)
    variation: Optional[VariationModel] = field(default_factory=lambda: QUARTZ_VARIATION)
    seed: int = 2021
    sockets_per_node: int = 2

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError("node_count must be positive")
        rng = np.random.default_rng(self.seed)
        if self.variation is None:
            self.efficiencies = np.ones(self.node_count)
        else:
            self.efficiencies = self.variation.sample(self.node_count, rng)
        self.power_model = NodePowerModel(self.spec, self.sockets_per_node)
        self._nodes: Optional[List[Node]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.node_count

    @property
    def nodes(self) -> List[Node]:
        """Materialised node objects (built lazily; arrays are primary)."""
        if self._nodes is None:
            self._nodes = [
                Node(node_id=i, efficiency=float(self.efficiencies[i]),
                     spec=self.spec, sockets=self.sockets_per_node)
                for i in range(self.node_count)
            ]
        return self._nodes

    @property
    def total_tdp_w(self) -> float:
        """Sum of node TDPs — the paper's Table III footnote (216 kW at 900 nodes)."""
        return self.node_count * self.power_model.tdp_w

    # ------------------------------------------------------------------
    def survey_frequencies(self, cap_w: float, kappa: float) -> np.ndarray:
        """Achieved frequency of every node under a uniform cap.

        This is the paper's Fig. 6 survey: run the most power-hungry
        configuration (high ``kappa``) under a low cap (70 W/socket ->
        140 W/node) and record per-node achieved frequency.
        """
        caps = np.full(self.node_count, float(cap_w))
        return self.power_model.freq_at_cap(caps, kappa, self.efficiencies)

    def subset(self, node_ids: Sequence[int]) -> "Cluster":
        """A new cluster restricted to ``node_ids`` (efficiencies preserved).

        Used to carve the medium-frequency partition out of the survey
        population, as the paper does before running its experiments.
        """
        ids = np.asarray(node_ids, dtype=int)
        if ids.size == 0:
            raise ValueError("subset must contain at least one node")
        if np.any(ids < 0) or np.any(ids >= self.node_count):
            raise ValueError("subset node ids out of range")
        sub = Cluster(
            node_count=int(ids.size),
            spec=self.spec,
            variation=None,
            seed=self.seed,
            sockets_per_node=self.sockets_per_node,
        )
        sub.efficiencies = self.efficiencies[ids].copy()
        return sub
