"""RAPL (Running Average Power Limit) emulation over the MSR file.

RAPL is the only actuation mechanism the paper's policies use ("Since CPU
activity is a major contributor to total system power, and can be controlled
with low-latency interfaces, this paper studies the impact of controlling
CPU power" — §II).  This module provides the package-domain power limit and
energy counter with the real encoding quirks that matter for a faithful
stack:

* limits and energies are stored in hardware units derived from
  ``MSR_RAPL_POWER_UNIT`` (1/8 W power units and ~15.3 uJ energy units by
  default), so requested caps are quantised exactly as on hardware;
* the energy counter is a 32-bit accumulator that wraps, and the reader
  must handle wraparound (GEOPM does; so does :class:`RaplDomain`);
* caps are clamped to the settable range ``[min_rapl_w, tdp_w]`` from
  ``MSR_PKG_POWER_INFO`` — the paper's policies all depend on the 68 W
  floor being enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.cpu import CpuSpec, QUARTZ_CPU
from repro.hardware.msr import (
    MsrFile,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_INFO,
    MSR_PKG_POWER_LIMIT,
    MSR_RAPL_POWER_UNIT,
)
from repro.units import ensure_non_negative, ensure_positive

__all__ = ["RaplDomain", "RaplPackage"]

# MSR_RAPL_POWER_UNIT default exponents (Intel SDM): power = 1/2^3 W,
# energy = 1/2^16 J (Broadwell server parts use 2^-16 J units).
_POWER_UNIT_EXP = 3
_ENERGY_UNIT_EXP = 16
_ENERGY_COUNTER_BITS = 32
# MSR_PKG_POWER_LIMIT field layout (PL1 only; the stack does not use PL2).
_PL1_LIMIT_SHIFT = 0
_PL1_LIMIT_WIDTH = 15
_PL1_ENABLE_SHIFT = 15


@dataclass
class RaplDomain:
    """One RAPL package domain bound to an MSR file.

    Parameters
    ----------
    msr:
        Backing register file (one per socket).
    spec:
        Socket specification supplying the settable cap range.
    """

    msr: MsrFile
    spec: CpuSpec = field(default_factory=lambda: QUARTZ_CPU)

    def __post_init__(self) -> None:
        self._power_units_per_watt = float(1 << _POWER_UNIT_EXP)
        self._energy_units_per_joule = float(1 << _ENERGY_UNIT_EXP)
        self._energy_accumulator_units = 0
        self._last_counter = 0
        self._unwrapped_energy_units = 0
        self.msr.write(
            MSR_RAPL_POWER_UNIT,
            _POWER_UNIT_EXP | (_ENERGY_UNIT_EXP << 8),
        )
        # Advertise the settable range through MSR_PKG_POWER_INFO:
        # TDP in bits [14:0], minimum power in bits [30:16].
        tdp_units = int(round(self.spec.tdp_w * self._power_units_per_watt))
        min_units = int(round(self.spec.min_rapl_w * self._power_units_per_watt))
        self.msr.write(MSR_PKG_POWER_INFO, tdp_units | (min_units << 16))
        self.set_power_limit(self.spec.tdp_w)

    # ------------------------------------------------------------------
    # power limit
    # ------------------------------------------------------------------
    @property
    def min_power_w(self) -> float:
        """Lowest settable package limit (decoded from MSR_PKG_POWER_INFO)."""
        units = self.msr.read_field(MSR_PKG_POWER_INFO, 16, 15)
        return units / self._power_units_per_watt

    @property
    def max_power_w(self) -> float:
        """TDP (decoded from MSR_PKG_POWER_INFO)."""
        units = self.msr.read_field(MSR_PKG_POWER_INFO, 0, 15)
        return units / self._power_units_per_watt

    def set_power_limit(self, power_w: float) -> float:
        """Program PL1; returns the quantised, clamped limit actually set.

        Requests outside ``[min_power_w, max_power_w]`` are clamped — this
        mirrors msr-safe behaviour and is what lets the paper state that
        "power caps less than min result in all policies producing the same
        configuration".
        """
        ensure_positive(power_w, "power_w")
        clamped = min(max(float(power_w), self.min_power_w), self.max_power_w)
        units = int(round(clamped * self._power_units_per_watt))
        self.msr.write_field(MSR_PKG_POWER_LIMIT, _PL1_LIMIT_SHIFT, _PL1_LIMIT_WIDTH, units)
        self.msr.write_field(MSR_PKG_POWER_LIMIT, _PL1_ENABLE_SHIFT, 1, 1)
        return units / self._power_units_per_watt

    def power_limit(self) -> float:
        """Currently programmed PL1 in watts."""
        units = self.msr.read_field(MSR_PKG_POWER_LIMIT, _PL1_LIMIT_SHIFT, _PL1_LIMIT_WIDTH)
        return units / self._power_units_per_watt

    # ------------------------------------------------------------------
    # energy counter
    # ------------------------------------------------------------------
    def accumulate_energy(self, energy_j: float) -> None:
        """Advance the hardware energy accumulator (simulator-side hook).

        Called by the execution engine as simulated time advances; the
        32-bit counter in ``MSR_PKG_ENERGY_STATUS`` wraps exactly as on
        hardware (every ~65.5 kJ at 2^-16 J units).
        """
        ensure_non_negative(energy_j, "energy_j")
        self._energy_accumulator_units += int(round(energy_j * self._energy_units_per_joule))
        counter = self._energy_accumulator_units & ((1 << _ENERGY_COUNTER_BITS) - 1)
        self.msr.write(MSR_PKG_ENERGY_STATUS, counter)

    def read_energy_j(self) -> float:
        """Wrap-corrected cumulative energy in joules since construction.

        Performs the same unwrap a production reader performs: if the
        32-bit counter moved backwards since the previous read, one full
        wrap is added.  Reads must therefore happen at least once per wrap
        period, which every agent in :mod:`repro.runtime` does.
        """
        counter = self.msr.read(MSR_PKG_ENERGY_STATUS)
        if counter < self._last_counter:
            self._unwrapped_energy_units += 1 << _ENERGY_COUNTER_BITS
        self._last_counter = counter
        total_units = self._unwrapped_energy_units + counter
        return total_units / self._energy_units_per_joule


class RaplPackage:
    """Convenience pair of RAPL domains for a dual-socket node."""

    def __init__(self, spec: CpuSpec = QUARTZ_CPU, sockets: int = 2) -> None:
        if sockets < 1:
            raise ValueError("a node needs at least one socket")
        self.spec = spec
        self.domains = [RaplDomain(MsrFile(), spec) for _ in range(sockets)]

    def set_node_power_limit(self, node_power_w: float) -> float:
        """Split a node-level cap evenly across sockets; returns the sum set."""
        per_socket = node_power_w / len(self.domains)
        return sum(domain.set_power_limit(per_socket) for domain in self.domains)

    def node_power_limit(self) -> float:
        """Sum of programmed per-socket PL1 limits."""
        return sum(domain.power_limit() for domain in self.domains)

    def read_node_energy_j(self) -> float:
        """Sum of wrap-corrected per-socket energies."""
        return sum(domain.read_energy_j() for domain in self.domains)

    def accumulate_node_energy(self, energy_j: float) -> None:
        """Distribute simulated energy evenly across socket accumulators."""
        per_socket = energy_j / len(self.domains)
        for domain in self.domains:
            domain.accumulate_energy(per_socket)
