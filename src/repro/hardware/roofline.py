"""Roofline throughput model (Williams, Waterman, Patterson, CACM 2009).

The paper verifies its synthetic kernel against an Intel Advisor roofline
plot (Fig. 3): achieved GFLOPS at each arithmetic intensity should hug the
lower envelope of the platform's bandwidth and compute ceilings.  This
module provides that envelope, parameterised so the same code serves two
roles:

* :data:`ADVISOR_SINGLE_CORE_ROOFLINE` — the single-core ceilings printed
  on the paper's Fig. 3 (L1 314.65 GB/s ... DRAM 12.44 GB/s; DP vector FMA
  38.49 GFLOPS, SP vector FMA 61.98 GFLOPS, ...), used to regenerate that
  figure.
* :data:`NODE_LEVEL_ROOFLINE` — node-level ceilings (34 active cores, two
  sockets) used by the execution simulator to turn a kernel configuration
  and an achieved frequency into an iteration time.

Compute ceilings scale linearly with frequency relative to the base
frequency; bandwidth ceilings are mostly frequency-insensitive for DRAM but
scale with core frequency for cache levels (a stalled core cannot issue
loads), which the model captures with a per-level frequency sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.units import ensure_positive, ensure_fraction

__all__ = [
    "BandwidthCeiling",
    "ComputeCeiling",
    "RooflineModel",
    "ADVISOR_SINGLE_CORE_ROOFLINE",
    "NODE_LEVEL_ROOFLINE",
]


@dataclass(frozen=True)
class BandwidthCeiling:
    """One memory-level bandwidth ceiling.

    Attributes
    ----------
    name:
        Memory level label ("L1", "DRAM", ...).
    bw_gbps:
        Bandwidth at base frequency, GB/s.
    freq_sensitivity:
        Fraction of the bandwidth that scales with core frequency.  0 means
        fully frequency-independent (ideal DRAM); 1 means proportional to
        core frequency (L1).  Effective bandwidth at relative frequency
        ``r = f / f_base`` is ``bw * ((1 - s) + s * r)``.
    """

    name: str
    bw_gbps: float
    freq_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        ensure_positive(self.bw_gbps, f"{self.name} bandwidth")
        ensure_fraction(self.freq_sensitivity, f"{self.name} freq_sensitivity")

    def effective(self, freq_ratio):
        """Bandwidth at relative core frequency ``freq_ratio`` (GB/s)."""
        r = np.asarray(freq_ratio, dtype=float)
        return self.bw_gbps * ((1.0 - self.freq_sensitivity) + self.freq_sensitivity * r)


@dataclass(frozen=True)
class ComputeCeiling:
    """One compute ceiling (instruction mix x precision), GFLOPS at base freq."""

    name: str
    gflops: float

    def __post_init__(self) -> None:
        ensure_positive(self.gflops, f"{self.name} gflops")

    def effective(self, freq_ratio):
        """Throughput at relative core frequency ``freq_ratio`` (GFLOPS)."""
        return self.gflops * np.asarray(freq_ratio, dtype=float)


@dataclass(frozen=True)
class RooflineModel:
    """A set of bandwidth and compute ceilings with roofline evaluation.

    ``working_set_level`` selects which bandwidth ceiling bounds a streaming
    kernel whose working set exceeds every cache (the paper's kernel streams
    from DRAM; cache ceilings appear on the plot but do not bound it).
    """

    name: str
    bandwidths: Tuple[BandwidthCeiling, ...]
    computes: Tuple[ComputeCeiling, ...]
    base_freq_ghz: float = 2.1
    working_set_level: str = "DRAM"

    def __post_init__(self) -> None:
        ensure_positive(self.base_freq_ghz, "base_freq_ghz")
        if not self.bandwidths or not self.computes:
            raise ValueError("roofline needs at least one bandwidth and one compute ceiling")
        names = [b.name for b in self.bandwidths]
        if self.working_set_level not in names:
            raise ValueError(
                f"working_set_level {self.working_set_level!r} not among bandwidth "
                f"ceilings {names!r}"
            )

    # ------------------------------------------------------------------
    def bandwidth(self, level: str) -> BandwidthCeiling:
        """Look up a bandwidth ceiling by name."""
        for ceiling in self.bandwidths:
            if ceiling.name == level:
                return ceiling
        raise KeyError(f"no bandwidth ceiling named {level!r}")

    def compute(self, name: str) -> ComputeCeiling:
        """Look up a compute ceiling by name."""
        for ceiling in self.computes:
            if ceiling.name == name:
                return ceiling
        raise KeyError(f"no compute ceiling named {name!r}")

    @property
    def peak_compute(self) -> ComputeCeiling:
        """The highest compute ceiling."""
        return max(self.computes, key=lambda c: c.gflops)

    # ------------------------------------------------------------------
    def attainable_gflops(self, intensity, compute_ceiling: str, freq_ghz=None):
        """Roofline-attainable GFLOPS at the given arithmetic intensity.

        ``min(intensity * BW, compute_peak)`` with both ceilings evaluated
        at the relative frequency ``freq_ghz / base_freq_ghz`` (defaults to
        base frequency).  Intensity 0 (pure memory traffic) attains 0
        GFLOPS by definition; time for such kernels comes from
        :meth:`time_for_work`.
        """
        intensity = np.asarray(intensity, dtype=float)
        ratio = 1.0 if freq_ghz is None else np.asarray(freq_ghz, dtype=float) / self.base_freq_ghz
        bw = self.bandwidth(self.working_set_level).effective(ratio)
        peak = self.compute(compute_ceiling).effective(ratio)
        return np.minimum(intensity * bw, peak)

    def ridge_intensity(self, compute_ceiling: str) -> float:
        """Intensity (FLOPs/byte) where the kernel becomes compute-bound."""
        bw = self.bandwidth(self.working_set_level).bw_gbps
        return self.compute(compute_ceiling).gflops / bw

    def time_for_work(self, gbytes, gflop, compute_ceiling: str, freq_ghz=None):
        """Execution time (s) for a work quantum under the roofline.

        The kernel must both stream ``gbytes`` of memory traffic and retire
        ``gflop`` of arithmetic; the phase time is the larger of the two
        requirements (they overlap on real hardware).  Handles intensity 0
        (``gflop == 0``) without special cases.
        """
        gbytes = np.asarray(gbytes, dtype=float)
        gflop = np.asarray(gflop, dtype=float)
        ratio = 1.0 if freq_ghz is None else np.asarray(freq_ghz, dtype=float) / self.base_freq_ghz
        bw = self.bandwidth(self.working_set_level).effective(ratio)
        peak = self.compute(compute_ceiling).effective(ratio)
        return np.maximum(gbytes / bw, gflop / peak)

    def as_plot_series(self, compute_ceiling: str, intensities) -> Dict[str, np.ndarray]:
        """Data series for regenerating the paper's Fig. 3.

        Returns the attainable-GFLOPS envelope plus every individual
        ceiling evaluated over ``intensities``, keyed by ceiling name.
        """
        intensities = np.asarray(intensities, dtype=float)
        series: Dict[str, np.ndarray] = {
            "attainable": self.attainable_gflops(intensities, compute_ceiling)
        }
        for bwc in self.bandwidths:
            series[f"bw:{bwc.name}"] = intensities * bwc.bw_gbps
        for cc in self.computes:
            series[f"compute:{cc.name}"] = np.full_like(intensities, cc.gflops)
        return series


def _advisor_roofline() -> RooflineModel:
    """Single-core ceilings as printed on the paper's Fig. 3."""
    return RooflineModel(
        name="advisor-single-core",
        bandwidths=(
            BandwidthCeiling("L1", 314.65, freq_sensitivity=1.0),
            BandwidthCeiling("L2", 84.5, freq_sensitivity=1.0),
            BandwidthCeiling("L3", 35.18, freq_sensitivity=0.8),
            BandwidthCeiling("DRAM", 12.44, freq_sensitivity=0.2),
        ),
        computes=(
            ComputeCeiling("sp_vector_fma", 61.98),
            ComputeCeiling("sp_vector_add", 55.24),
            ComputeCeiling("dp_vector_fma", 38.49),
            ComputeCeiling("dp_vector_add", 19.25),
            ComputeCeiling("scalar_add", 7.3),
        ),
        base_freq_ghz=2.1,
        working_set_level="DRAM",
    )


def _node_roofline() -> RooflineModel:
    """Node-level ceilings used by the execution simulator.

    34 active benchmark cores per node (paper §V-A1: two cores reserved
    for monitoring) and a two-socket streaming DRAM bandwidth of
    ~110 GB/s.  The theoretical Broadwell peak is 16 DP FLOPs/cycle/core
    with 256-bit FMA, but the synthetic kernel interleaves streaming loads
    with its FMAs and sustains ~35 % of that issue rate (consistent with
    the paper's single-core Advisor roofline, whose measured DP vector FMA
    ceiling of 38.49 GFLOPS likewise sits far below the 2-port theoretical
    peak).  The effective DP ymm peak is therefore
    34 * 16 * 2.1 * 0.35 ~= 400 GFLOPS, putting the node ridge near
    3.6 FLOPs/byte — intensities of 4 and above are compute-bound and
    respond to frequency (and hence to power), while 2 and below are
    DRAM-bound.
    """
    cores = 34
    base = 2.1
    issue_efficiency = 0.35
    dp_fma_ymm = cores * 16 * base * issue_efficiency  # ~400 GFLOPS
    return RooflineModel(
        name="quartz-node",
        bandwidths=(BandwidthCeiling("DRAM", 110.0, freq_sensitivity=0.25),),
        computes=(
            ComputeCeiling("dp_fma_ymm", dp_fma_ymm),
            ComputeCeiling("dp_fma_xmm", dp_fma_ymm / 2.0),
            ComputeCeiling("sp_fma_ymm", dp_fma_ymm * 2.0),
            ComputeCeiling("sp_fma_xmm", dp_fma_ymm),
        ),
        base_freq_ghz=base,
        working_set_level="DRAM",
    )


#: Ceilings from the paper's Fig. 3 (Intel Advisor, single core).
ADVISOR_SINGLE_CORE_ROOFLINE: RooflineModel = _advisor_roofline()

#: Node-level ceilings driving the execution simulator.
NODE_LEVEL_ROOFLINE: RooflineModel = _node_roofline()
