"""Facility-scale campaign: 50k–100k nodes in one command.

The campaign wrapper around :mod:`repro.hierarchy`: it synthesises a
whole facility — 8–64 clusters with mixed procurement weights,
priorities, and a few local feeder-limit fault schedules — drives the
top-level budget from the Fig. 1 synthetic trace, and runs every
cluster's site simulation sharded across workers.  The shape echoes
:mod:`repro.experiments.facility_integration`: where that module builds
the Fig. 1-style dashboard for one cluster session, this one builds it
for the facility tree.

Everything is deterministic given the config (the hierarchy's
determinism contract), so campaign results are comparable across hosts
and worker counts; the ``facility-sim`` CLI subcommand and the
``BENCH_facility_campaign`` benchmark are both thin callers of
:func:`run_facility_campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.faults.schedule import FaultSchedule
from repro.hardware.cluster import QUARTZ_CPU
from repro.hardware.node import NodePowerModel
from repro.hierarchy import (
    ClusterSpec,
    FacilityConfig,
    FacilitySimulationResult,
    run_facility_simulation,
)
from repro.units import ensure_positive
from repro.workload.facility import FacilityTraceConfig

__all__ = [
    "FacilityCampaignConfig",
    "build_facility_config",
    "campaign_rows",
    "run_facility_campaign",
]


@dataclass(frozen=True)
class FacilityCampaignConfig:
    """Knobs of the standard facility campaign.

    The defaults simulate 51 200 nodes (16 clusters x 3 200) over one
    hour of facility time with five-minute rebalance windows — the
    50k-node floor of ROADMAP item 2 — in a single command.
    """

    clusters: int = 16
    nodes_per_cluster: int = 3_200
    jobs_per_cluster: int = 48
    nodes_per_job: int = 4
    iterations: int = 12
    spacing_s: float = 30.0
    racks: int = 8
    window_s: float = 300.0
    horizon_s: float = 3_600.0
    broker_policy: str = "demand"
    policy: str = "MixedAdaptive"
    #: Fraction of aggregate capacity for a *constant* top budget;
    #: ``None`` samples the Fig. 1 trace instead (the interesting case).
    budget_fraction: Optional[float] = None
    #: Every fourth cluster gets a local feeder-limit dip mid-horizon,
    #: so the broker provably rebalances the freed watts to siblings.
    feeder_dips: bool = True
    trace_days: int = 2
    seed: int = 23

    def __post_init__(self) -> None:
        ensure_positive(self.clusters, "clusters")
        ensure_positive(self.nodes_per_cluster, "nodes_per_cluster")
        ensure_positive(self.jobs_per_cluster, "jobs_per_cluster")
        if self.budget_fraction is not None and not (
            0.0 < self.budget_fraction <= 1.0
        ):
            raise ValueError("budget_fraction must be in (0, 1]")

    @property
    def total_nodes(self) -> int:
        """Nodes across the whole campaign."""
        return self.clusters * self.nodes_per_cluster


def build_facility_config(
    config: Optional[FacilityCampaignConfig] = None,
) -> FacilityConfig:
    """The :class:`FacilityConfig` the standard campaign runs.

    Clusters cycle through procurement weights 1–4 and priorities 0–2,
    so every broker policy produces a distinct (still deterministic)
    split; with ``feeder_dips`` every fourth cluster's own fault
    schedule caps its allocation to 60 % of capacity for the middle
    third of the horizon.
    """
    config = config if config is not None else FacilityCampaignConfig()
    node_capacity_w = NodePowerModel(QUARTZ_CPU, 2).tdp_w
    cluster_capacity_w = config.nodes_per_cluster * node_capacity_w
    specs: List[ClusterSpec] = []
    for i in range(config.clusters):
        schedule = None
        if config.feeder_dips and i % 4 == 2:
            schedule = (
                FaultSchedule(name=f"feeder-dip-{i}")
                .budget_drop(config.horizon_s / 3.0,
                             0.6 * cluster_capacity_w)
                .budget_restore(2.0 * config.horizon_s / 3.0,
                                cluster_capacity_w)
            )
        specs.append(ClusterSpec(
            name=f"cluster-{i:02d}",
            node_count=config.nodes_per_cluster,
            racks=min(config.racks, config.nodes_per_cluster),
            nodes_per_job=config.nodes_per_job,
            jobs=config.jobs_per_cluster,
            iterations=config.iterations,
            spacing_s=config.spacing_s,
            weight=float(1 + i % 4),
            priority=i % 3,
            fault_schedule=schedule,
        ))
    budget_w = None
    trace = None
    if config.budget_fraction is not None:
        budget_w = config.budget_fraction * config.clusters \
            * cluster_capacity_w
    else:
        trace = FacilityTraceConfig(days=config.trace_days)
    return FacilityConfig(
        clusters=tuple(specs),
        name="facility-campaign",
        policy=config.policy,
        broker_policy=config.broker_policy,
        window_s=config.window_s,
        horizon_s=config.horizon_s,
        budget_w=budget_w,
        trace=trace,
        seed=config.seed,
    )


def run_facility_campaign(
    config: Optional[FacilityCampaignConfig] = None,
    workers: Optional[int] = None,
    engine: str = "sharded",
) -> FacilitySimulationResult:
    """Run the standard campaign; one call, the whole facility.

    ``engine`` selects the leaf execution strategy (``"sharded"`` /
    ``"fused"``, see :func:`run_facility_simulation`); the result is
    bit-identical either way.
    """
    return run_facility_simulation(
        build_facility_config(config), workers, engine=engine
    )


def campaign_rows(result: FacilitySimulationResult) -> List[Dict[str, object]]:
    """Per-cluster dashboard rows (the CLI table / CSV payload)."""
    rows: List[Dict[str, object]] = []
    for outcome in result.clusters:
        site = outcome.result
        allocations = outcome.allocations_w
        rows.append({
            "cluster": outcome.name,
            "nodes": float(outcome.node_count),
            "mean_allocation_w": float(sum(allocations) / len(allocations)),
            "min_allocation_w": float(min(allocations)),
            "max_allocation_w": float(max(allocations)),
            "jobs_completed": float(len(site.completed)),
            "never_admitted": float(len(site.never_admitted)),
            "truncated": float(len(site.truncated)),
            "energy_j": site.total_energy_j,
            "mean_turnaround_s": site.mean_turnaround_s(),
            "peak_power_w": site.peak_power_w(),
            "rebalances": float(outcome.rebalances),
            "char_hit_ratio": outcome.char_cache_hit_ratio,
        })
    return rows
