"""Budget-sweep and variation-sensitivity studies.

Two analyses that extend the paper's three-point budget grid:

* :func:`budget_sweep` — a continuous version of Figs. 7-8: run a mix at
  many budgets between the settable floor and TDP and record utilisation
  and savings at each.  The paper asserts that "power caps less than min
  result in all policies producing the same configuration as StaticCaps"
  and that savings taper above max; the sweep shows the whole curve,
  including the crossover region the three-point grid samples.
* :func:`variation_sensitivity` — the paper controls for hardware
  variation by selecting the medium-frequency cluster; this study runs
  the same mix on the low / medium / high partitions (and an idealised
  variation-free one) to quantify what that control is worth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.characterization.mix_characterization import characterize_mix
from repro.core.registry import create_policy
from repro.experiments.grid import ExperimentGrid
from repro.experiments.metrics import savings_vs_baseline
from repro.hardware.cluster import Cluster
from repro.manager.power_manager import PowerManager
from repro.manager.scheduler import Scheduler
from repro.sim.execution import SimulationOptions
from repro.workload.mixes import MixBuilder

__all__ = ["BudgetSweepPoint", "budget_sweep", "variation_sensitivity"]


@dataclass(frozen=True)
class BudgetSweepPoint:
    """One budget level's outcomes for one policy."""

    budget_w: float
    budget_per_node_w: float
    policy_name: str
    utilization: float
    mean_elapsed_s: float
    time_savings_pct: float
    energy_savings_pct: float


def budget_sweep(
    grid: ExperimentGrid,
    mix_name: str = "WastefulPower",
    policies: Sequence[str] = ("StaticCaps", "MinimizeWaste", "JobAdaptive",
                               "MixedAdaptive"),
    points: int = 9,
) -> List[BudgetSweepPoint]:
    """Sweep budgets from just above the floor to TDP for one mix.

    Budgets are evenly spaced between ``1.05 x floor`` and TDP per node.
    Savings at each point are against StaticCaps *at the same budget*
    (the paper's normalisation).

    The whole sweep — every (budget level, policy) cell plus the
    StaticCaps baseline at each level — executes as one batched engine
    pass via :meth:`~repro.manager.power_manager.PowerManager.launch_batch`,
    with results bit-identical to per-cell serial launches.
    """
    if points < 2:
        raise ValueError("a sweep needs at least two points")
    prepared = grid.prepare_mix(mix_name)
    char = prepared.characterization
    hosts = char.host_count
    manager = PowerManager(grid.model)
    per_node_levels = np.linspace(1.05 * char.min_cap_w, char.tdp_w, points)
    options = SimulationOptions(noise_std=grid.config.noise_std, seed=23)

    # One scenario per (level, policy), the baseline first at each level.
    names_per_level = ("StaticCaps",) + tuple(
        name for name in policies if name != "StaticCaps"
    )
    specs = [
        (create_policy(name), float(per_node) * hosts)
        for per_node in per_node_levels
        for name in names_per_level
    ]
    runs = manager.launch_batch(
        prepared.scheduled, specs, characterization=char, options=options
    )

    out: List[BudgetSweepPoint] = []
    stride = len(names_per_level)
    for level, per_node in enumerate(per_node_levels):
        budget = float(per_node) * hosts
        by_name = {
            name: runs[level * stride + offset].result
            for offset, name in enumerate(names_per_level)
        }
        base = by_name["StaticCaps"]
        for name in policies:
            result = by_name[name]
            if name == "StaticCaps":
                time_pct = energy_pct = 0.0
            else:
                s = savings_vs_baseline(result, base)
                time_pct = 100.0 * s.time_savings.mean
                energy_pct = 100.0 * s.energy_savings.mean
            out.append(
                BudgetSweepPoint(
                    budget_w=budget,
                    budget_per_node_w=float(per_node),
                    policy_name=name,
                    utilization=result.budget_utilization(),
                    mean_elapsed_s=result.mean_elapsed_s,
                    time_savings_pct=time_pct,
                    energy_savings_pct=energy_pct,
                )
            )
    return out


def variation_sensitivity(
    mix_name: str = "RandomLarge",
    nodes_per_job: int = 10,
    survey_nodes: int = 1200,
    budget_per_node_w: float = 180.0,
    seed: int = 2021,
) -> Dict[str, Dict[str, float]]:
    """Run one mix on each variation partition and compare outcomes.

    Returns ``{partition: {metric: value}}`` for the low / medium / high
    k-means partitions plus an idealised variation-free cluster, all under
    the same per-node budget and the MixedAdaptive policy.  Quantifies the
    effect the paper's §V-A2 node-selection step controls away — and the
    spread a site that skipped it would fold into its results.
    """
    from repro.characterization.clustering import survey_and_cluster

    population = Cluster(node_count=survey_nodes, seed=seed)
    survey = survey_and_cluster(population, cap_w=140.0, kappa=1.0)
    builder = MixBuilder(nodes_per_job=nodes_per_job, iterations=30)
    mix = builder.build(mix_name)
    needed = mix.total_nodes

    partitions: Dict[str, Cluster] = {}
    for name in ("low", "medium", "high"):
        ids = survey.cluster_node_ids(name)
        if ids.size < needed:
            raise ValueError(
                f"partition {name!r} has {ids.size} nodes; {needed} required "
                f"(increase survey_nodes)"
            )
        partitions[name] = population.subset(ids)
    partitions["novariation"] = Cluster(
        node_count=needed, variation=None, seed=seed
    )

    policy = create_policy("MixedAdaptive")
    manager = PowerManager()
    out: Dict[str, Dict[str, float]] = {}
    for name, partition in partitions.items():
        scheduled = Scheduler(partition).allocate(mix)
        char = characterize_mix(mix, scheduled.efficiencies, manager.model)
        budget = budget_per_node_w * needed
        run = manager.launch(
            scheduled, policy, budget, characterization=char,
            options=SimulationOptions(noise_std=0.0),
        )
        out[name] = {
            "mean_elapsed_s": run.result.mean_elapsed_s,
            "total_energy_j": run.result.total_energy_j,
            "mean_power_w": run.result.mean_system_power_w,
            "mean_efficiency": float(np.mean(scheduled.efficiencies)),
        }
    return out
