"""One-call reproduction report: every artefact in a single document.

:func:`build_report` runs the whole pipeline — survey, characterizations,
budgets, the full policy grid, savings, takeaway checks — and renders a
self-contained Markdown report.  It is what ``python -m repro report``
emits and what a reviewer reads to audit the reproduction without running
anything else.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union


from repro.analysis.render import render_table
from repro.experiments.grid import ExperimentGrid, GridResults
from repro.experiments.metrics import savings_grid
from repro.experiments.tables import (
    table1_system_properties,
    table2_mixes,
    table3_budgets,
)
from repro.experiments.takeaways import check_takeaways
from repro.telemetry import TelemetrySummary
from repro.workload.mixes import MIX_NAMES

__all__ = ["build_report", "write_report"]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def build_report(grid: ExperimentGrid,
                 results: Optional[GridResults] = None) -> str:
    """Render the full reproduction report as Markdown.

    Passing pre-computed ``results`` avoids re-running the grid; otherwise
    the full grid is executed.
    """
    if results is None:
        results = grid.run_all()
    parts: List[str] = []
    config = grid.config
    parts.append(
        "# Reproduction report — Wilson et al., IPDPS-W 2021\n\n"
        f"Scale: {config.survey_nodes}-node survey, "
        f"{config.nodes_per_job * config.jobs_per_mix}-node mixes "
        f"({config.jobs_per_mix} jobs x {config.nodes_per_job} nodes), "
        f"{config.iterations} iterations per job.\n"
    )

    # Table I.
    t1 = table1_system_properties()
    parts.append(_section(
        "Table I — system properties",
        render_table(["property", "value"], [[k, v] for k, v in t1.items()]),
    ))

    # Fig. 6 survey.
    survey = results.survey
    rows = []
    for name in ("low", "medium", "high"):
        freqs = survey.frequencies_ghz[survey.cluster_node_ids(name)]
        rows.append([name, freqs.size, f"{freqs.mean():.2f}",
                     f"{freqs.min():.2f}-{freqs.max():.2f}"])
    parts.append(_section(
        "Fig. 6 — variation survey",
        render_table(["cluster", "nodes", "mean GHz", "range GHz"], rows),
    ))

    # Table II.
    mix_rows = [
        [r["mix"], f"{r['intensity_flop_per_byte']:g}", r["vector"],
         f"{r['waiting_pct']}%", f"{r['imbalance']}x", r["nodes"]]
        for r in table2_mixes(grid)
    ]
    parts.append(_section(
        "Table II — workload mixes",
        render_table(["mix", "FLOPs/byte", "vector", "waiting", "imbalance",
                      "nodes"], mix_rows),
    ))

    # Table III.
    budget_rows = [
        [r["mix"], r["min_kw"], r["ideal_kw"], r["max_kw"], r["total_tdp_kw"]]
        for r in table3_budgets(grid)
    ]
    parts.append(_section(
        "Table III — power budgets (kW)",
        render_table(["mix", "min", "ideal", "max", "TDP"], budget_rows),
    ))

    # Fig. 7.
    util_rows = []
    for (mix, level, policy) in sorted(results.cells):
        cell = results.cells[(mix, level, policy)]
        util_rows.append([
            mix, level, policy,
            f"{cell.run.result.budget_utilization():.0%}",
        ])
    parts.append(_section(
        "Fig. 7 — budget utilisation",
        render_table(["mix", "budget", "policy", "used"], util_rows),
    ))

    # Fig. 8.
    savings = savings_grid(results)
    fig8_rows = []
    for mix in MIX_NAMES:
        for level in ("min", "ideal", "max"):
            for policy in ("MinimizeWaste", "JobAdaptive", "MixedAdaptive"):
                key = (mix, level, policy)
                if key not in savings:
                    continue
                s = savings[key]
                fig8_rows.append([
                    mix, level, policy,
                    f"{100 * s.time_savings.mean:+.1f}%",
                    f"{100 * s.energy_savings.mean:+.1f}%",
                    f"{100 * s.edp_savings.mean:+.1f}%",
                ])
    parts.append(_section(
        "Fig. 8 — savings vs StaticCaps",
        render_table(["mix", "budget", "policy", "time", "energy", "EDP"],
                     fig8_rows),
    ))

    # Takeaways.
    report = check_takeaways(results)
    takeaway_rows = [
        ["PASS" if ok else "FAIL", name, report.evidence[name]]
        for name, ok in report.checks.items()
    ]
    parts.append(_section(
        "Takeaways and markers",
        render_table(["status", "check", "evidence"], takeaway_rows),
    ))

    best_time = max(s.time_savings.mean for s in savings.values())
    best_energy = max(s.energy_savings.mean for s in savings.values())
    parts.append(
        "## Headlines\n\n"
        f"* Best time savings vs StaticCaps: **{100 * best_time:.1f} %** "
        "(paper: up to 7 %)\n"
        f"* Best energy savings vs StaticCaps: **{100 * best_energy:.1f} %** "
        "(paper: up to 11 %)\n"
        f"* All takeaway checks hold: **{report.all_hold()}**\n"
    )

    # Telemetry of the run that produced this report.
    summary = TelemetrySummary.capture()
    parts.append(_section("Telemetry", summary.render()))
    return "\n".join(parts)


def write_report(grid: ExperimentGrid, path: Union[str, Path],
                 results: Optional[GridResults] = None) -> Path:
    """Build the report and write it to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_report(grid, results), encoding="utf-8")
    return path
