"""Facility-level integration: from the policy grid back to Fig. 1.

The paper motivates with facility telemetry (Fig. 1) and then evaluates a
single co-scheduled mix; this module closes the loop by simulating a
*session* — a sequence of mixes run back to back under one budget — and
producing the facility-style cluster power trace that results.  It shows
what the dashboard of Fig. 1 would look like for a site running each
policy: how close to the budget the cluster tracks, and how much energy
the session takes end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.registry import create_policy
from repro.experiments.grid import ExperimentGrid
from repro.manager.power_manager import PowerManager
from repro.sim.execution import SimulationOptions

__all__ = ["SessionSegment", "SessionTrace", "simulate_session"]


@dataclass(frozen=True)
class SessionSegment:
    """One mix's contribution to the session trace."""

    mix_name: str
    start_s: float
    end_s: float
    mean_power_w: float
    energy_j: float

    @property
    def duration_s(self) -> float:
        """Wall time of the segment."""
        return self.end_s - self.start_s


@dataclass(frozen=True)
class SessionTrace:
    """A back-to-back session of mixes under one policy and budget."""

    policy_name: str
    budget_w: float
    segments: Tuple[SessionSegment, ...]
    #: Cluster power sampled on a fixed grid across the whole session.
    time_s: np.ndarray
    power_w: np.ndarray

    @property
    def total_duration_s(self) -> float:
        """End-to-end session wall time."""
        return float(self.segments[-1].end_s) if self.segments else 0.0

    @property
    def total_energy_j(self) -> float:
        """Session energy."""
        return float(sum(s.energy_j for s in self.segments))

    def utilisation_stats(self) -> Dict[str, float]:
        """Fig. 1-style statistics of the session's power trace."""
        util = self.power_w / self.budget_w
        return {
            "mean_power_w": float(np.mean(self.power_w)),
            "peak_power_w": float(np.max(self.power_w)),
            "mean_utilisation": float(np.mean(util)),
            "peak_utilisation": float(np.max(util)),
            "stranded_w": float(self.budget_w - np.mean(self.power_w)),
        }


def simulate_session(
    grid: ExperimentGrid,
    policy_name: str,
    budget_level: str = "ideal",
    mixes: Optional[Sequence[str]] = None,
    samples_per_segment: int = 50,
) -> SessionTrace:
    """Run a sequence of mixes back to back and build the power trace.

    The budget applied to every mix is its own Table III level (sites
    renegotiate budgets per scheduling window), and the trace concatenates
    each mix's mean-power segment with the per-iteration fluctuation the
    simulator observed.
    """
    mixes = list(mixes if mixes is not None else grid.config.mixes)
    if not mixes:
        raise ValueError("a session needs at least one mix")
    manager = PowerManager(grid.model)
    policy = create_policy(policy_name)

    segments: List[SessionSegment] = []
    times: List[np.ndarray] = []
    powers: List[np.ndarray] = []
    clock = 0.0
    budget_for_stats = 0.0
    for mix_name in mixes:
        prepared = grid.prepare_mix(mix_name)
        budget = prepared.budgets.by_level()[budget_level]
        budget_for_stats = max(budget_for_stats, budget)
        run = manager.launch(
            prepared.scheduled, policy, budget,
            characterization=prepared.characterization,
            options=SimulationOptions(noise_std=grid.config.noise_std, seed=31),
        )
        result = run.result
        # Jobs iterate at their own rates and finish at their own times;
        # the cluster power a facility meter sees is the sum of each
        # running job's mean power, stepping down as jobs complete.
        job_elapsed = result.job_elapsed_s
        job_power = result.job_energy_j / job_elapsed
        duration = float(np.max(job_elapsed))
        t_grid = np.linspace(0.0, duration, samples_per_segment)
        running = t_grid[:, None] < job_elapsed[None, :] - 1e-12
        p_grid = running @ job_power
        # The final sample lands exactly at the last completion; keep the
        # last running job's power there instead of a zero tail.
        p_grid[-1] = p_grid[-2] if samples_per_segment > 1 else float(job_power.max())
        times.append(clock + t_grid)
        powers.append(p_grid)
        segments.append(
            SessionSegment(
                mix_name=mix_name,
                start_s=clock,
                end_s=clock + duration,
                mean_power_w=result.mean_system_power_w,
                energy_j=result.total_energy_j,
            )
        )
        clock += duration

    return SessionTrace(
        policy_name=policy_name,
        budget_w=budget_for_stats,
        segments=tuple(segments),
        time_s=np.concatenate(times),
        power_w=np.concatenate(powers),
    )
