"""Hardware over-provisioning optimiser — the paper's opening trade-off.

§I: "Sizing a data center's power supply involves a trade-off between
peak performance of individual workloads, and the total number of hosts
available to run those workloads."  The paper's reference [7] (Patki et
al., ICS'13) showed that, for a fixed facility power budget, deploying
*more nodes than the budget can run at TDP* and capping them is often the
throughput-optimal configuration.

:func:`overprovisioning_curve` reproduces that analysis on this stack:
for a facility budget ``F`` and a representative workload, sweep the node
count ``N`` from the TDP-provisioned fleet (``F / TDP`` nodes, no caps)
to the floor-provisioned fleet (``F / floor`` nodes, maximum caps), and
compute fleet throughput at each point.

Finding (and an honest modelling note): with *throughput* workloads —
independent jobs, one per node, as in this analysis — over-provisioning
pays monotonically, because DVFS power grows super-linearly with
frequency: two capped nodes always out-produce one uncapped node of the
same total power.  The gain is far larger for memory-bound workloads
(whose performance barely depends on the cap) than compute-bound ones.
Interior optima of the kind Patki et al. report for *strong-scaled* single
applications arise from communication overheads that grow with node
count, which this fleet-parallel analysis deliberately excludes; the
takeaway for the paper's stack is unchanged — over-provisioned fleets
need exactly the budget-enforcing policies the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.sim.engine import ExecutionModel
from repro.units import ensure_positive
from repro.workload.job import Job, WorkloadMix
from repro.workload.kernel import KernelConfig

__all__ = ["ProvisioningPoint", "ProvisioningCurve", "overprovisioning_curve"]


@dataclass(frozen=True)
class ProvisioningPoint:
    """One fleet size on the over-provisioning curve."""

    nodes: int
    cap_per_node_w: float
    per_node_gflops: float
    fleet_gflops: float

    @property
    def overprovisioning_factor(self) -> float:
        """Fleet TDP over the facility budget (1.0 = TDP-provisioned)."""
        return self.nodes * 240.0 / (self.nodes * self.cap_per_node_w)


@dataclass(frozen=True)
class ProvisioningCurve:
    """The full sweep plus its optimum."""

    workload_label: str
    facility_budget_w: float
    points: Tuple[ProvisioningPoint, ...]

    def optimum(self) -> ProvisioningPoint:
        """The throughput-maximising fleet size."""
        return max(self.points, key=lambda p: p.fleet_gflops)

    def tdp_provisioned(self) -> ProvisioningPoint:
        """The smallest fleet (every node uncapped at TDP)."""
        return min(self.points, key=lambda p: p.nodes)

    def gain_over_tdp_provisioning(self) -> float:
        """Fractional throughput gain of the optimum over TDP sizing."""
        base = self.tdp_provisioned().fleet_gflops
        return self.optimum().fleet_gflops / base - 1.0


def overprovisioning_curve(
    config: KernelConfig,
    facility_budget_w: float,
    model: Optional[ExecutionModel] = None,
    points: int = 12,
) -> ProvisioningCurve:
    """Sweep fleet sizes under a fixed facility budget.

    Node counts are spaced between ``F / TDP`` (uncapped fleet) and
    ``F / floor`` (maximally capped fleet).  Per-node throughput at each
    cap comes from the calibrated execution model on a single-node job of
    the given configuration; fleet throughput is nodes x per-node rate —
    jobs are embarrassingly fleet-parallel in this analysis, as in the
    paper's reference study.
    """
    ensure_positive(facility_budget_w, "facility_budget_w")
    if points < 2:
        raise ValueError("a curve needs at least two points")
    model = model if model is not None else ExecutionModel()
    tdp = model.power_model.tdp_w
    floor = model.power_model.min_cap_w
    n_min = max(1, int(facility_budget_w // tdp))
    n_max = max(n_min + 1, int(facility_budget_w // floor))
    node_counts = np.unique(
        np.linspace(n_min, n_max, points).astype(int)
    )

    job = Job(name="prov", config=config, node_count=1, iterations=1)
    layout = WorkloadMix(name="prov", jobs=(job,)).layout()
    eff = np.ones(1)

    # The node-count sweep is one batched physics pass: every fleet size
    # is a scenario row of an (S, 1) cap matrix through the engine's
    # broadcasting maps (identical per-point values to a scalar loop).
    caps = np.minimum(facility_budget_w / node_counts.astype(float), tdp)
    freq = model.frequencies(caps[:, np.newaxis], layout, eff)
    t = model.compute_time(freq, layout)[:, 0]
    gflops = layout.gflop[0] / t if layout.gflop[0] > 0 else 1.0 / t
    curve: List[ProvisioningPoint] = [
        ProvisioningPoint(
            nodes=int(n),
            cap_per_node_w=float(cap),
            per_node_gflops=float(rate),
            fleet_gflops=float(rate) * int(n),
        )
        for n, cap, rate in zip(node_counts, caps, gflops)
    ]
    return ProvisioningCurve(
        workload_label=config.label(),
        facility_budget_w=float(facility_budget_w),
        points=tuple(curve),
    )
