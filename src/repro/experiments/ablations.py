"""Design-choice ablations beyond the paper's headline grid.

Three studies that probe the design decisions DESIGN.md calls out:

* :func:`harvest_fraction_sweep` — how much of MixedAdaptive's benefit
  depends on the balancer's aggressiveness (the paper's balancer is
  conservative; an idealised one harvests all slack).
* :func:`step4_weighting_ablation` — MixedAdaptive with step 4's weighted
  surplus distribution replaced by a uniform spread, isolating the value
  of the "distance from the minimum settable power" weighting.
* :func:`characterization_noise_sweep` — robustness of the policies to
  error in the pre-characterization data (the paper's §VIII notes the
  pre-characterization emulates an execution-time feedback loop; noisy
  characterization approximates an imperfect one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.characterization.budgets import derive_budgets
from repro.characterization.mix_characterization import (
    MixCharacterization,
    characterize_mix,
)
from repro.core.allocation import PowerAllocation, distribute_uniform
from repro.core.mixed_adaptive import MixedAdaptivePolicy
from repro.core.registry import create_policy
from repro.experiments.grid import ExperimentGrid
from repro.experiments.metrics import savings_vs_baseline
from repro.manager.power_manager import PowerManager
from repro.sim.execution import SimulationOptions

__all__ = [
    "AblationPoint",
    "harvest_fraction_sweep",
    "MixedAdaptiveUniformSurplus",
    "step4_weighting_ablation",
    "characterization_noise_sweep",
]


@dataclass(frozen=True)
class AblationPoint:
    """One ablation sample: a parameter value and the savings it yields."""

    parameter: str
    value: float
    mix_name: str
    budget_level: str
    time_savings_pct: float
    energy_savings_pct: float


def _run_policy_pair(
    grid: ExperimentGrid,
    mix_name: str,
    budget_level: str,
    char: MixCharacterization,
    policy_name: str = "MixedAdaptive",
) -> Tuple[float, float]:
    """(time, energy) savings of a policy vs StaticCaps for one cell,
    using ``char`` as the characterization both policies see."""
    prepared = grid.prepare_mix(mix_name)
    budgets = derive_budgets(char)
    budget = budgets.by_level()[budget_level]
    manager = PowerManager(grid.model)
    options = SimulationOptions(noise_std=grid.config.noise_std, seed=17)
    base = manager.launch(
        prepared.scheduled, create_policy("StaticCaps"), budget,
        characterization=char, options=options,
    )
    policy = (
        MixedAdaptiveUniformSurplus()
        if policy_name == "MixedAdaptiveUniformSurplus"
        else create_policy(policy_name)
    )
    run = manager.launch(
        prepared.scheduled, policy, budget,
        characterization=char, options=options,
    )
    s = savings_vs_baseline(run.result, base.result)
    return 100.0 * s.time_savings.mean, 100.0 * s.energy_savings.mean


def harvest_fraction_sweep(
    grid: ExperimentGrid,
    mix_name: str = "WastefulPower",
    budget_level: str = "max",
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
) -> List[AblationPoint]:
    """Sweep the balancer harvest fraction and record MixedAdaptive savings.

    A more aggressive balancer (larger fraction) exposes more recoverable
    waste, so energy savings should grow monotonically with the fraction —
    the sweep quantifies how much of the paper's 11 % headline depends on
    balancer tuning.
    """
    prepared = grid.prepare_mix(mix_name)
    points: List[AblationPoint] = []
    for fraction in fractions:
        char = characterize_mix(
            prepared.scheduled.mix,
            prepared.scheduled.efficiencies,
            grid.model,
            harvest_fraction=fraction,
        )
        t, e = _run_policy_pair(grid, mix_name, budget_level, char)
        points.append(
            AblationPoint(
                parameter="harvest_fraction",
                value=float(fraction),
                mix_name=mix_name,
                budget_level=budget_level,
                time_savings_pct=t,
                energy_savings_pct=e,
            )
        )
    return points


class MixedAdaptiveUniformSurplus(MixedAdaptivePolicy):
    """MixedAdaptive with step 4's weighting removed (uniform surplus).

    Isolates the contribution of the paper's "distance from the host's
    minimum settable power limit" weighting: with a uniform spread,
    surplus power lands equally on hosts that cannot use it and hosts that
    can.
    """

    name = "MixedAdaptiveUniformSurplus"

    def _allocate(self, char: MixCharacterization, budget_w: float) -> PowerAllocation:
        base = super()._allocate(char, budget_w)
        # Recompute steps 1-3, then spread the remaining pool uniformly.
        floor = char.min_cap_w
        needed = np.maximum(char.needed_cap_w, floor)
        uniform = self.uniform_share(char, budget_w)
        alloc = np.minimum(np.full(char.host_count, uniform), needed)
        pool = budget_w - float(np.sum(alloc))
        alloc, pool = distribute_uniform(pool, alloc, needed)
        bounds = np.full(char.host_count, char.tdp_w)
        alloc, leftover = distribute_uniform(pool, alloc, bounds)
        return PowerAllocation(
            policy_name=self.name,
            mix_name=char.mix_name,
            budget_w=budget_w,
            caps_w=alloc,
            unallocated_w=leftover,
            notes=dict(base.notes),
        )


def step4_weighting_ablation(
    grid: ExperimentGrid,
    mix_name: str = "WastefulPower",
    levels: Sequence[str] = ("min", "ideal", "max"),
) -> Dict[str, Dict[str, Tuple[float, float]]]:
    """Weighted vs uniform step-4 surplus distribution, per budget level.

    Returns ``{level: {variant: (time %, energy %)}}``.
    """
    prepared = grid.prepare_mix(mix_name)
    char = prepared.characterization
    out: Dict[str, Dict[str, Tuple[float, float]]] = {}
    for level in levels:
        out[level] = {
            "weighted": _run_policy_pair(grid, mix_name, level, char, "MixedAdaptive"),
            "uniform": _run_policy_pair(
                grid, mix_name, level, char, "MixedAdaptiveUniformSurplus"
            ),
        }
    return out


def characterization_noise_sweep(
    grid: ExperimentGrid,
    mix_name: str = "RandomLarge",
    budget_level: str = "ideal",
    noise_levels: Sequence[float] = (0.0, 0.02, 0.05, 0.10),
    seed: int = 5,
) -> List[AblationPoint]:
    """Perturb the characterization data and measure savings degradation.

    Multiplicative lognormal noise on both the monitor and needed powers
    models stale or under-sampled characterization runs.  The budgets are
    re-derived from the *noisy* data (as a real site would), so the study
    captures end-to-end sensitivity.
    """
    prepared = grid.prepare_mix(mix_name)
    clean = prepared.characterization
    rng = np.random.default_rng(seed)
    points: List[AblationPoint] = []
    for noise in noise_levels:
        if noise == 0.0:
            char = clean
        else:
            factor_m = rng.lognormal(0.0, noise, size=clean.host_count)
            factor_n = rng.lognormal(0.0, noise, size=clean.host_count)
            monitor = clean.monitor_power_w * factor_m
            needed = np.minimum(clean.needed_power_w * factor_n, monitor)
            char = MixCharacterization(
                mix_name=clean.mix_name,
                job_boundaries=clean.job_boundaries,
                monitor_power_w=monitor,
                needed_power_w=needed,
                needed_cap_w=np.clip(needed, clean.min_cap_w, clean.tdp_w),
                min_cap_w=clean.min_cap_w,
                tdp_w=clean.tdp_w,
            )
        t, e = _run_policy_pair(grid, mix_name, budget_level, char)
        points.append(
            AblationPoint(
                parameter="characterization_noise",
                value=float(noise),
                mix_name=mix_name,
                budget_level=budget_level,
                time_savings_pct=t,
                energy_savings_pct=e,
            )
        )
    return points
