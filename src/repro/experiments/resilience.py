"""Resilience experiment: the five policies under the standard fault suite.

The paper's conclusion asks for a policy that "minimizes the loss of
quality of service in exceptional cases"; this experiment makes that an
actual measurement.  Every policy (Precharacterized through
MixedAdaptive) runs one arrival-driven site shift fault-free to fix its
baseline, then replays the *same* arrival stream under each named
scenario of :data:`~repro.faults.scenarios.STANDARD_SCENARIOS`, scoring:

* **QoS loss** — the percentage growth of mean job turnaround relative
  to the policy's own fault-free shift (the "loss of quality of service"
  quantity);
* **budget-overshoot watt-seconds** — energy spent above the budget in
  force, split into the *planned* component (after the degradation
  ladder's stage-2 re-plan — the compliance quantity that must be zero
  on feasible scenarios for system-power-aware policies) and the *total*
  including the reaction window of mid-batch drops.

Scenario timelines are materialised against each policy's own fault-free
makespan, so the disturbance lands mid-shift for every policy no matter
how fast it runs the mix.

:meth:`ResilienceReport.check` encodes the CI gate: on every feasible
scenario without actuator faults, every system-power-aware policy must
show zero planned overshoot.  (Actuator faults — a RAPL domain erroring
back to TDP — physically break compliance no matter how the re-plan
allocates, so those scenarios report overshoot rather than assert on
it.)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.render import render_table
from repro.core.registry import POLICY_NAMES, create_policy
from repro.faults.schedule import FaultKind
from repro.faults.scenarios import SCENARIO_NAMES, STANDARD_SCENARIOS
from repro.hardware.cluster import Cluster
from repro.manager.queue import JobRequest
from repro.manager.site_simulation import Arrival, run_site_simulation
from repro.sim.engine import ExecutionModel
from repro.telemetry import emit, enabled
from repro.workload.kernel import KernelConfig

__all__ = [
    "ScenarioOutcome",
    "ResilienceReport",
    "standard_arrivals",
    "run_resilience_suite",
    "ControllerFaultOutcome",
    "ControllerFaultStudy",
    "controller_fault_study",
]

#: Scenarios the compliance gate asserts on: feasibility is checked per
#: site below; actuator-fault scenarios are excluded by construction.
_TOLERANCE_WS = 1e-6


@dataclass(frozen=True)
class ScenarioOutcome:
    """One (policy, scenario) cell of the resilience matrix."""

    policy: str
    scenario: str
    #: Whether the scenario's lowest budget still covers hosts x floor.
    feasible: bool
    #: Whether the scenario injects actuator (cap) faults, which make
    #: strict budget compliance physically impossible.
    actuator_faults: bool
    #: Mean-turnaround growth vs the policy's fault-free shift (percent).
    qos_loss_pct: float
    #: Watt-seconds over the in-force budget after stage-2 re-planning.
    planned_overshoot_ws: float
    #: Total watt-seconds over budget, reaction windows included.
    total_overshoot_ws: float
    #: Batches planned below the re-plan tier (clamp or floor).
    degraded_batches: int
    completed_jobs: int
    makespan_s: float

    def compliant(self) -> bool:
        """Zero planned overshoot (the post-re-plan gate quantity)."""
        return self.planned_overshoot_ws <= _TOLERANCE_WS


@dataclass(frozen=True)
class ResilienceReport:
    """The full policy x scenario resilience matrix."""

    outcomes: Tuple[ScenarioOutcome, ...]
    budget_w: float
    host_count: int

    def of_policy(self, policy: str) -> Tuple[ScenarioOutcome, ...]:
        """All scenario outcomes for one policy, suite order."""
        return tuple(o for o in self.outcomes if o.policy == policy)

    def qos_loss_by_policy(self) -> Dict[str, float]:
        """Mean QoS loss over feasible scenarios, per policy."""
        out: Dict[str, float] = {}
        for policy in dict.fromkeys(o.policy for o in self.outcomes):
            losses = [o.qos_loss_pct for o in self.of_policy(policy)
                      if o.feasible]
            out[policy] = float(np.mean(losses)) if losses else 0.0
        return out

    def check(self) -> Dict[str, bool]:
        """The CI gate: named pass/fail checks over the matrix.

        ``zero_planned_overshoot``: every system-power-aware policy holds
        zero watt-seconds over the in-force budget after re-planning, on
        every feasible scenario without actuator faults.
        ``infeasible_reported``: scenarios whose budget dips below the
        floor are flagged infeasible (none silently pass as compliant
        *and* feasible).
        """
        aware = {
            name for name in dict.fromkeys(o.policy for o in self.outcomes)
            if create_policy(name).system_power_aware
        }
        gated = [
            o for o in self.outcomes
            if o.policy in aware and o.feasible and not o.actuator_faults
        ]
        checks = {
            "zero_planned_overshoot": all(o.compliant() for o in gated),
            "infeasible_reported": all(
                not o.feasible
                for o in self.outcomes if o.scenario == "brownout"
            ) or not any(o.scenario == "brownout" for o in self.outcomes),
        }
        return checks

    def all_hold(self) -> bool:
        """Whether every check passes."""
        return all(self.check().values())

    def render(self) -> str:
        """The resilience matrix as an aligned text table."""
        rows = []
        for o in self.outcomes:
            rows.append([
                o.policy,
                o.scenario,
                "yes" if o.feasible else "NO",
                f"{o.qos_loss_pct:+.1f}%",
                f"{o.planned_overshoot_ws:.1f}",
                f"{o.total_overshoot_ws:.1f}",
                str(o.degraded_batches),
                str(o.completed_jobs),
            ])
        return render_table(
            ["policy", "scenario", "feasible", "QoS loss",
             "plan over Ws", "total over Ws", "degraded", "done"],
            rows,
            title=f"Resilience suite ({self.host_count} hosts, "
                  f"{self.budget_w / 1000:.1f} kW base budget)",
        )


def standard_arrivals(jobs: int, nodes_per_job: int,
                      iterations: int) -> List[Arrival]:
    """The deterministic arrival stream every resilience run replays.

    A staggered mix of compute- and waiting-heavy kernels (the same
    construction the ``site`` CLI command uses), so scenario outcomes are
    comparable across policies and invocations.
    """
    return [
        Arrival(
            time_s=float(i),
            request=JobRequest(
                f"resilience-job-{i}",
                KernelConfig(
                    intensity=float(2 ** (1 + i % 4)),
                    waiting_fraction=0.25 * (i % 3),
                    imbalance=1 + i % 3,
                ),
                node_count=nodes_per_job,
                iterations=iterations,
            ),
        )
        for i in range(jobs)
    ]


def _fresh_arrivals(arrivals: Sequence[Arrival]) -> List[Arrival]:
    """Copies with pristine lifecycle state (requests are stateful)."""
    return [
        dataclasses.replace(a, request=dataclasses.replace(a.request))
        for a in arrivals
    ]


def run_resilience_suite(
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    jobs: int = 6,
    nodes_per_job: int = 4,
    iterations: int = 12,
    cluster: Optional[Cluster] = None,
    model: Optional[ExecutionModel] = None,
    budget_fraction: float = 0.9,
    noise_std: float = 0.004,
    run_seed: int = 7,
) -> ResilienceReport:
    """Score policies against the named fault scenarios.

    Parameters
    ----------
    scenarios / policies:
        Names to run (defaults: the full standard suite x the paper's
        five policies).
    jobs / nodes_per_job / iterations:
        Shape of the replayed arrival stream (smoke runs shrink these).
    cluster:
        Site cluster (default: ``3 x nodes_per_job`` variation-free
        hosts, the ``site`` command's construction).
    budget_fraction:
        Base facility budget as a fraction of cluster TDP.
    run_seed:
        Noise-stream seed shared by every shift, so fault-free and
        faulted replays differ only by the schedule.
    """
    scenario_names = tuple(scenarios) if scenarios is not None \
        else SCENARIO_NAMES
    policy_names = tuple(policies) if policies is not None else POLICY_NAMES
    for name in scenario_names:
        if name not in STANDARD_SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}"
            )
    model = model if model is not None else ExecutionModel()
    if cluster is None:
        cluster = Cluster(
            node_count=3 * nodes_per_job, variation=None, seed=11
        )
    hosts = len(cluster)
    budget_w = budget_fraction * hosts * model.power_model.tdp_w
    min_cap_w = model.power_model.min_cap_w
    arrivals = standard_arrivals(jobs, nodes_per_job, iterations)

    outcomes: List[ScenarioOutcome] = []
    for policy_name in policy_names:
        policy = create_policy(policy_name)
        baseline = run_site_simulation(
            _fresh_arrivals(arrivals), cluster, policy, budget_w,
            noise_std=noise_std, run_seed=run_seed,
        )
        base_turnaround = baseline.mean_turnaround_s()
        duration_s = max(baseline.makespan_s, 1.0)
        for scenario_name in scenario_names:
            scenario = STANDARD_SCENARIOS[scenario_name]
            schedule = scenario.build(budget_w, hosts, duration_s)
            feasible = scenario.feasible(
                budget_w, hosts, duration_s, min_cap_w=min_cap_w
            )
            actuator = any(
                e.kind in (FaultKind.CAP_STUCK, FaultKind.CAP_ERROR)
                for e in schedule.events
            )
            result = run_site_simulation(
                _fresh_arrivals(arrivals), cluster, policy, budget_w,
                noise_std=noise_std, run_seed=run_seed,
                fault_schedule=schedule,
            )
            turnaround = result.mean_turnaround_s()
            qos_loss = 0.0 if base_turnaround <= 0 else \
                100.0 * (turnaround / base_turnaround - 1.0)
            outcomes.append(ScenarioOutcome(
                policy=policy_name,
                scenario=scenario_name,
                feasible=feasible,
                actuator_faults=actuator,
                qos_loss_pct=float(qos_loss),
                planned_overshoot_ws=result.planned_overshoot_ws(),
                total_overshoot_ws=result.total_overshoot_ws(),
                degraded_batches=len(result.degraded_batches()),
                completed_jobs=len(result.completed),
                makespan_s=result.makespan_s,
            ))
            if enabled():
                emit(
                    "experiments.resilience", "scenario_scored",
                    policy=policy_name, scenario=scenario_name,
                    feasible=feasible, qos_loss_pct=float(qos_loss),
                    planned_overshoot_ws=result.planned_overshoot_ws(),
                    total_overshoot_ws=result.total_overshoot_ws(),
                )
    return ResilienceReport(
        outcomes=tuple(outcomes), budget_w=float(budget_w), host_count=hosts
    )


# ----------------------------------------------------------------------
# Controller-level fault study (batched feedback loops)
# ----------------------------------------------------------------------

#: Fault kinds the runtime injector can act on inside a controller run
#: (cap writes, epoch noise, and the sample the agent observes); budget
#: and node-lifecycle kinds are resource-manager events the controller
#: never sees.
_RUNTIME_KINDS = frozenset({
    FaultKind.CAP_STUCK,
    FaultKind.CAP_ERROR,
    FaultKind.NOISE_BURST,
    FaultKind.SENSOR_DROPOUT,
})


@dataclass(frozen=True)
class ControllerFaultOutcome:
    """One scenario's effect on the balancer's closed feedback loop."""

    scenario: str
    #: Whether the scenario carries faults the runtime injector acts on
    #: (otherwise the run is vector-batched with the fault-free reference).
    runtime_faults: bool
    epochs: int
    converged: bool
    #: Mean node power at the loop's final operating point.
    steady_power_w: float
    #: Steady-power growth vs the fault-free reference run (percent).
    power_delta_pct: float
    #: Spread of the converged per-host limits (max - min, W).
    final_limit_spread_w: float


@dataclass(frozen=True)
class ControllerFaultStudy:
    """Balancer feedback-loop resilience across the standard scenarios."""

    outcomes: Tuple[ControllerFaultOutcome, ...]
    reference_power_w: float
    reference_epochs: int
    host_count: int

    def render(self) -> str:
        """The study as an aligned text table."""
        rows = [[
            "fault-free", "-", str(self.reference_epochs), "yes",
            f"{self.reference_power_w:.1f}", "+0.0%", "-",
        ]]
        for o in self.outcomes:
            rows.append([
                o.scenario,
                "yes" if o.runtime_faults else "no",
                str(o.epochs),
                "yes" if o.converged else "NO",
                f"{o.steady_power_w:.1f}",
                f"{o.power_delta_pct:+.1f}%",
                f"{o.final_limit_spread_w:.1f}",
            ])
        return render_table(
            ["scenario", "rt faults", "epochs", "converged",
             "steady W/node", "vs clean", "limit spread W"],
            rows,
            title=f"Balancer feedback loop under faults "
                  f"({self.host_count} hosts, batched controller runtime)",
        )


def controller_fault_study(
    scenarios: Optional[Sequence[str]] = None,
    nodes: int = 4,
    config: Optional[KernelConfig] = None,
    cluster: Optional[Cluster] = None,
    model: Optional[ExecutionModel] = None,
    noise_std: float = 0.004,
    max_epochs: int = 150,
    seed: int = 7,
) -> ControllerFaultStudy:
    """Drive the *authentic* balancer loop through every fault scenario.

    The site-level suite above scores policies through the analytic
    engine; this study asks the complementary runtime question — what do
    the scenarios do to the GEOPM-style feedback loop itself?  One
    balancer run per scenario plus a fault-free reference all advance in
    lockstep through a single
    :class:`~repro.runtime.batch.ControllerBatch`: scenarios with no
    runtime-applicable faults (pure budget timelines) batch onto the
    vectorised balancer path with the reference, while fault-injected
    runs share the batched physics step and fall back to per-run agent
    stepping — "batch where schedules permit".
    """
    from repro.faults.injection import RuntimeFaultInjector
    from repro.runtime.batch import ControllerRunSpec, run_controller_batch
    from repro.runtime.power_balancer import PowerBalancerAgent
    from repro.workload.job import Job, WorkloadMix

    scenario_names = tuple(scenarios) if scenarios is not None \
        else SCENARIO_NAMES
    for name in scenario_names:
        if name not in STANDARD_SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}"
            )
    model = model if model is not None else ExecutionModel()
    if cluster is None:
        cluster = Cluster(node_count=nodes, variation=None, seed=11)
    if config is None:
        config = KernelConfig(
            intensity=16.0, waiting_fraction=0.5, imbalance=2
        )
    ids = np.arange(nodes)
    eff = cluster.efficiencies[ids]
    job = Job(name="fault-study", config=config, node_count=nodes,
              iterations=max_epochs)
    budget_w = model.power_model.tdp_w * nodes

    # Materialise scenario timelines against the run's nominal length
    # (TDP-cap iteration time), the same clock the engine fault plan uses.
    layout = WorkloadMix(name=job.name, jobs=(job,)).layout()
    caps0 = np.full(nodes, model.power_model.tdp_w)
    t0 = model.compute_time(
        model.frequencies(model.power_model.clamp_cap(caps0), layout, eff),
        layout,
    )
    duration_s = max(max_epochs * (float(np.max(t0)) + 5.0e-4), 1.0)

    def spec(injector=None) -> ControllerRunSpec:
        return ControllerRunSpec(
            job=job,
            efficiencies=eff,
            agent=PowerBalancerAgent(job_budget_w=budget_w),
            noise_std=noise_std,
            seed=seed,
            fault_injector=injector,
        )

    specs = [spec()]
    runtime_faulted = []
    for name in scenario_names:
        schedule = STANDARD_SCENARIOS[name].build(budget_w, nodes, duration_s)
        applicable = any(e.kind in _RUNTIME_KINDS for e in schedule.events)
        runtime_faulted.append(applicable)
        injector = RuntimeFaultInjector(
            schedule, tdp_w=model.power_model.tdp_w, seed=seed,
        ) if applicable else None
        specs.append(spec(injector))

    result = run_controller_batch(specs, model=model, max_epochs=max_epochs)
    ref_power = float(np.mean(result.steady_state_sample(0).host_power_w))
    outcomes = []
    for idx, name in enumerate(scenario_names):
        c = idx + 1
        steady = result.steady_state_sample(c)
        power = float(np.mean(steady.host_power_w))
        limits = result.final_limits_w(c)
        outcomes.append(ControllerFaultOutcome(
            scenario=name,
            runtime_faults=runtime_faulted[idx],
            epochs=int(result.epochs[c]),
            converged=bool(result.converged[c]),
            steady_power_w=power,
            power_delta_pct=0.0 if ref_power <= 0 else
                float(100.0 * (power / ref_power - 1.0)),
            final_limit_spread_w=float(np.max(limits) - np.min(limits)),
        ))
        if enabled():
            emit(
                "experiments.resilience", "controller_scenario_scored",
                scenario=name, runtime_faults=runtime_faulted[idx],
                epochs=int(result.epochs[c]),
                converged=bool(result.converged[c]),
                steady_power_w=power,
            )
    return ControllerFaultStudy(
        outcomes=tuple(outcomes),
        reference_power_w=ref_power,
        reference_epochs=int(result.epochs[0]),
        host_count=nodes,
    )
