"""Resilience experiment: the five policies under the standard fault suite.

The paper's conclusion asks for a policy that "minimizes the loss of
quality of service in exceptional cases"; this experiment makes that an
actual measurement.  Every policy (Precharacterized through
MixedAdaptive) runs one arrival-driven site shift fault-free to fix its
baseline, then replays the *same* arrival stream under each named
scenario of :data:`~repro.faults.scenarios.STANDARD_SCENARIOS`, scoring:

* **QoS loss** — the percentage growth of mean job turnaround relative
  to the policy's own fault-free shift (the "loss of quality of service"
  quantity);
* **budget-overshoot watt-seconds** — energy spent above the budget in
  force, split into the *planned* component (after the degradation
  ladder's stage-2 re-plan — the compliance quantity that must be zero
  on feasible scenarios for system-power-aware policies) and the *total*
  including the reaction window of mid-batch drops.

Scenario timelines are materialised against each policy's own fault-free
makespan, so the disturbance lands mid-shift for every policy no matter
how fast it runs the mix.

:meth:`ResilienceReport.check` encodes the CI gate: on every feasible
scenario without actuator faults, every system-power-aware policy must
show zero planned overshoot.  (Actuator faults — a RAPL domain erroring
back to TDP — physically break compliance no matter how the re-plan
allocates, so those scenarios report overshoot rather than assert on
it.)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.render import render_table
from repro.core.registry import POLICY_NAMES, create_policy
from repro.faults.schedule import FaultKind
from repro.faults.scenarios import SCENARIO_NAMES, STANDARD_SCENARIOS
from repro.hardware.cluster import Cluster
from repro.manager.queue import JobRequest
from repro.manager.site_simulation import Arrival, run_site_simulation
from repro.sim.engine import ExecutionModel
from repro.telemetry import emit, enabled
from repro.workload.kernel import KernelConfig

__all__ = [
    "ScenarioOutcome",
    "ResilienceReport",
    "standard_arrivals",
    "run_resilience_suite",
]

#: Scenarios the compliance gate asserts on: feasibility is checked per
#: site below; actuator-fault scenarios are excluded by construction.
_TOLERANCE_WS = 1e-6


@dataclass(frozen=True)
class ScenarioOutcome:
    """One (policy, scenario) cell of the resilience matrix."""

    policy: str
    scenario: str
    #: Whether the scenario's lowest budget still covers hosts x floor.
    feasible: bool
    #: Whether the scenario injects actuator (cap) faults, which make
    #: strict budget compliance physically impossible.
    actuator_faults: bool
    #: Mean-turnaround growth vs the policy's fault-free shift (percent).
    qos_loss_pct: float
    #: Watt-seconds over the in-force budget after stage-2 re-planning.
    planned_overshoot_ws: float
    #: Total watt-seconds over budget, reaction windows included.
    total_overshoot_ws: float
    #: Batches planned below the re-plan tier (clamp or floor).
    degraded_batches: int
    completed_jobs: int
    makespan_s: float

    def compliant(self) -> bool:
        """Zero planned overshoot (the post-re-plan gate quantity)."""
        return self.planned_overshoot_ws <= _TOLERANCE_WS


@dataclass(frozen=True)
class ResilienceReport:
    """The full policy x scenario resilience matrix."""

    outcomes: Tuple[ScenarioOutcome, ...]
    budget_w: float
    host_count: int

    def of_policy(self, policy: str) -> Tuple[ScenarioOutcome, ...]:
        """All scenario outcomes for one policy, suite order."""
        return tuple(o for o in self.outcomes if o.policy == policy)

    def qos_loss_by_policy(self) -> Dict[str, float]:
        """Mean QoS loss over feasible scenarios, per policy."""
        out: Dict[str, float] = {}
        for policy in dict.fromkeys(o.policy for o in self.outcomes):
            losses = [o.qos_loss_pct for o in self.of_policy(policy)
                      if o.feasible]
            out[policy] = float(np.mean(losses)) if losses else 0.0
        return out

    def check(self) -> Dict[str, bool]:
        """The CI gate: named pass/fail checks over the matrix.

        ``zero_planned_overshoot``: every system-power-aware policy holds
        zero watt-seconds over the in-force budget after re-planning, on
        every feasible scenario without actuator faults.
        ``infeasible_reported``: scenarios whose budget dips below the
        floor are flagged infeasible (none silently pass as compliant
        *and* feasible).
        """
        aware = {
            name for name in dict.fromkeys(o.policy for o in self.outcomes)
            if create_policy(name).system_power_aware
        }
        gated = [
            o for o in self.outcomes
            if o.policy in aware and o.feasible and not o.actuator_faults
        ]
        checks = {
            "zero_planned_overshoot": all(o.compliant() for o in gated),
            "infeasible_reported": all(
                not o.feasible
                for o in self.outcomes if o.scenario == "brownout"
            ) or not any(o.scenario == "brownout" for o in self.outcomes),
        }
        return checks

    def all_hold(self) -> bool:
        """Whether every check passes."""
        return all(self.check().values())

    def render(self) -> str:
        """The resilience matrix as an aligned text table."""
        rows = []
        for o in self.outcomes:
            rows.append([
                o.policy,
                o.scenario,
                "yes" if o.feasible else "NO",
                f"{o.qos_loss_pct:+.1f}%",
                f"{o.planned_overshoot_ws:.1f}",
                f"{o.total_overshoot_ws:.1f}",
                str(o.degraded_batches),
                str(o.completed_jobs),
            ])
        return render_table(
            ["policy", "scenario", "feasible", "QoS loss",
             "plan over Ws", "total over Ws", "degraded", "done"],
            rows,
            title=f"Resilience suite ({self.host_count} hosts, "
                  f"{self.budget_w / 1000:.1f} kW base budget)",
        )


def standard_arrivals(jobs: int, nodes_per_job: int,
                      iterations: int) -> List[Arrival]:
    """The deterministic arrival stream every resilience run replays.

    A staggered mix of compute- and waiting-heavy kernels (the same
    construction the ``site`` CLI command uses), so scenario outcomes are
    comparable across policies and invocations.
    """
    return [
        Arrival(
            time_s=float(i),
            request=JobRequest(
                f"resilience-job-{i}",
                KernelConfig(
                    intensity=float(2 ** (1 + i % 4)),
                    waiting_fraction=0.25 * (i % 3),
                    imbalance=1 + i % 3,
                ),
                node_count=nodes_per_job,
                iterations=iterations,
            ),
        )
        for i in range(jobs)
    ]


def _fresh_arrivals(arrivals: Sequence[Arrival]) -> List[Arrival]:
    """Copies with pristine lifecycle state (requests are stateful)."""
    return [
        dataclasses.replace(a, request=dataclasses.replace(a.request))
        for a in arrivals
    ]


def run_resilience_suite(
    scenarios: Optional[Sequence[str]] = None,
    policies: Optional[Sequence[str]] = None,
    jobs: int = 6,
    nodes_per_job: int = 4,
    iterations: int = 12,
    cluster: Optional[Cluster] = None,
    model: Optional[ExecutionModel] = None,
    budget_fraction: float = 0.9,
    noise_std: float = 0.004,
    run_seed: int = 7,
) -> ResilienceReport:
    """Score policies against the named fault scenarios.

    Parameters
    ----------
    scenarios / policies:
        Names to run (defaults: the full standard suite x the paper's
        five policies).
    jobs / nodes_per_job / iterations:
        Shape of the replayed arrival stream (smoke runs shrink these).
    cluster:
        Site cluster (default: ``3 x nodes_per_job`` variation-free
        hosts, the ``site`` command's construction).
    budget_fraction:
        Base facility budget as a fraction of cluster TDP.
    run_seed:
        Noise-stream seed shared by every shift, so fault-free and
        faulted replays differ only by the schedule.
    """
    scenario_names = tuple(scenarios) if scenarios is not None \
        else SCENARIO_NAMES
    policy_names = tuple(policies) if policies is not None else POLICY_NAMES
    for name in scenario_names:
        if name not in STANDARD_SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}"
            )
    model = model if model is not None else ExecutionModel()
    if cluster is None:
        cluster = Cluster(
            node_count=3 * nodes_per_job, variation=None, seed=11
        )
    hosts = len(cluster)
    budget_w = budget_fraction * hosts * model.power_model.tdp_w
    min_cap_w = model.power_model.min_cap_w
    arrivals = standard_arrivals(jobs, nodes_per_job, iterations)

    outcomes: List[ScenarioOutcome] = []
    for policy_name in policy_names:
        policy = create_policy(policy_name)
        baseline = run_site_simulation(
            _fresh_arrivals(arrivals), cluster, policy, budget_w,
            noise_std=noise_std, run_seed=run_seed,
        )
        base_turnaround = baseline.mean_turnaround_s()
        duration_s = max(baseline.makespan_s, 1.0)
        for scenario_name in scenario_names:
            scenario = STANDARD_SCENARIOS[scenario_name]
            schedule = scenario.build(budget_w, hosts, duration_s)
            feasible = scenario.feasible(
                budget_w, hosts, duration_s, min_cap_w=min_cap_w
            )
            actuator = any(
                e.kind in (FaultKind.CAP_STUCK, FaultKind.CAP_ERROR)
                for e in schedule.events
            )
            result = run_site_simulation(
                _fresh_arrivals(arrivals), cluster, policy, budget_w,
                noise_std=noise_std, run_seed=run_seed,
                fault_schedule=schedule,
            )
            turnaround = result.mean_turnaround_s()
            qos_loss = 0.0 if base_turnaround <= 0 else \
                100.0 * (turnaround / base_turnaround - 1.0)
            outcomes.append(ScenarioOutcome(
                policy=policy_name,
                scenario=scenario_name,
                feasible=feasible,
                actuator_faults=actuator,
                qos_loss_pct=float(qos_loss),
                planned_overshoot_ws=result.planned_overshoot_ws(),
                total_overshoot_ws=result.total_overshoot_ws(),
                degraded_batches=len(result.degraded_batches()),
                completed_jobs=len(result.completed),
                makespan_s=result.makespan_s,
            ))
            if enabled():
                emit(
                    "experiments.resilience", "scenario_scored",
                    policy=policy_name, scenario=scenario_name,
                    feasible=feasible, qos_loss_pct=float(qos_loss),
                    planned_overshoot_ws=result.planned_overshoot_ws(),
                    total_overshoot_ws=result.total_overshoot_ws(),
                )
    return ResilienceReport(
        outcomes=tuple(outcomes), budget_w=float(budget_w), host_count=hosts
    )
