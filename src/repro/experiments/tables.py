"""Data builders for the paper's Tables I-III."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.grid import ExperimentGrid
from repro.hardware.cpu import QUARTZ_CPU, CpuSpec

__all__ = ["table1_system_properties", "table2_mixes", "table3_budgets"]


def table1_system_properties(spec: CpuSpec = QUARTZ_CPU) -> Dict[str, str]:
    """Table I: Quartz system properties."""
    return {
        "CPU": f"{spec.model}, dual-socket",
        "Cores Per Node": str(spec.cores * 2),
        "Thermal Design Power": f"{spec.tdp_w:.0f} W per CPU socket",
        "Minimum RAPL Limit": f"{spec.min_rapl_w:.0f} W per CPU socket",
        "Base Frequency": f"{spec.base_freq_ghz:.1f} GHz",
    }


def table2_mixes(grid: ExperimentGrid) -> List[Dict[str, object]]:
    """Table II: the workload composition of every mix.

    One row per job: mix, job name, kernel knobs, and node count — the
    machine-readable equivalent of the paper's check-mark table.
    """
    rows: List[Dict[str, object]] = []
    for mix_name in grid.config.mixes:
        prepared = grid.prepare_mix(mix_name)
        for job in prepared.scheduled.mix.jobs:
            cfg = job.config
            rows.append(
                {
                    "mix": mix_name,
                    "job": job.name,
                    "intensity_flop_per_byte": cfg.intensity,
                    "vector": cfg.vector.value,
                    "waiting_pct": int(cfg.waiting_fraction * 100),
                    "imbalance": cfg.imbalance,
                    "nodes": job.node_count,
                }
            )
    return rows


def table3_budgets(grid: ExperimentGrid) -> List[Dict[str, object]]:
    """Table III: min/ideal/max budgets per mix, in kW, plus the TDP note."""
    rows: List[Dict[str, object]] = []
    for mix_name in grid.config.mixes:
        prepared = grid.prepare_mix(mix_name)
        kw = prepared.budgets.as_kilowatts()
        rows.append(
            {
                "mix": mix_name,
                "min_kw": round(kw["min"], 1),
                "ideal_kw": round(kw["ideal"], 1),
                "max_kw": round(kw["max"], 1),
                "total_tdp_kw": round(kw["tdp"], 1),
            }
        )
    return rows
