"""Experiment harness: the paper's full evaluation grid and its artefacts.

* :mod:`repro.experiments.grid` — builds the test environment (survey ->
  medium partition -> scheduler), characterizes every mix, derives Table
  III budgets, and runs the policy x mix x budget grid of Figs. 7-8.
* :mod:`repro.experiments.metrics` — savings-vs-StaticCaps metrics with
  95 % CIs (the four Fig. 8 rows).
* :mod:`repro.experiments.figures` — data builders for every figure
  (Figs. 1-8).
* :mod:`repro.experiments.tables` — data builders for Tables I-III.
* :mod:`repro.experiments.takeaways` — machine-checked versions of the
  paper's four takeaways and lettered markers.
* :mod:`repro.experiments.ablations` — design-choice ablations beyond the
  paper (harvest fraction, step-4 weighting, characterization noise).
"""

from repro.experiments.grid import (
    ExperimentConfig,
    ExperimentGrid,
    GridResults,
    PreparedMix,
    CellResult,
)
from repro.experiments.metrics import PolicySavings, savings_vs_baseline, BUDGET_LEVELS
from repro.experiments.figures import (
    fig1_facility_data,
    fig2_phase_timeline,
    fig3_roofline_data,
    fig4_monitor_heatmap,
    fig5_balancer_heatmap,
    fig6_survey_data,
    fig7_power_utilization,
    fig8_savings_grid,
)
from repro.experiments.tables import table1_system_properties, table2_mixes, table3_budgets
from repro.experiments.takeaways import check_takeaways, TakeawayReport
from repro.experiments.sensitivity import (
    BudgetSweepPoint,
    budget_sweep,
    variation_sensitivity,
)
from repro.experiments.facility_integration import (
    SessionSegment,
    SessionTrace,
    simulate_session,
)
from repro.experiments.report import build_report, write_report
from repro.experiments.robustness import (
    TournamentResult,
    TournamentRound,
    policy_tournament,
)
from repro.experiments.provisioning import (
    ProvisioningCurve,
    ProvisioningPoint,
    overprovisioning_curve,
)
from repro.experiments.svg_figures import render_all_figures

__all__ = [
    "ExperimentConfig",
    "ExperimentGrid",
    "GridResults",
    "PreparedMix",
    "CellResult",
    "PolicySavings",
    "savings_vs_baseline",
    "BUDGET_LEVELS",
    "fig1_facility_data",
    "fig2_phase_timeline",
    "fig3_roofline_data",
    "fig4_monitor_heatmap",
    "fig5_balancer_heatmap",
    "fig6_survey_data",
    "fig7_power_utilization",
    "fig8_savings_grid",
    "table1_system_properties",
    "table2_mixes",
    "table3_budgets",
    "check_takeaways",
    "TakeawayReport",
    "BudgetSweepPoint",
    "budget_sweep",
    "variation_sensitivity",
    "SessionSegment",
    "SessionTrace",
    "simulate_session",
    "build_report",
    "write_report",
    "TournamentResult",
    "TournamentRound",
    "policy_tournament",
    "ProvisioningCurve",
    "ProvisioningPoint",
    "overprovisioning_curve",
    "render_all_figures",
]
