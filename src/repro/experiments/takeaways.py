"""Machine-checked versions of the paper's takeaways and lettered markers.

The paper's §VI draws four takeaways and annotates Figs. 7-8 with markers
(a)-(e).  This module turns each into a boolean predicate over the grid
results, so the reproduction's agreement with the paper is a test
assertion rather than a reader's judgement call:

* **Takeaway 1** — dynamic policies save energy, and the savings grow
  with the surplus power budget.
* **Takeaway 2** — application awareness increases energy-saving
  opportunities under a system power limit.
* **Takeaway 3** — resource awareness alone has small benefits, but
  combined with application awareness beats either alone.
* **Takeaway 4** — savings opportunity depends on the mix; NeedUsedPower
  offers no energy-saving opportunity.
* **Marker (a)** — at the max budget, job-aware policies draw less power.
* **Marker (b)** — at the ideal budget, JobAdaptive under-utilises while
  system-aware policies fill the budget.
* **Marker (e)** — the largest time savings appear at the min budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.experiments.grid import GridResults
from repro.experiments.metrics import PolicySavings, savings_grid

__all__ = ["TakeawayReport", "check_takeaways"]


@dataclass(frozen=True)
class TakeawayReport:
    """Outcome of every check plus the evidence behind it."""

    checks: Dict[str, bool]
    evidence: Dict[str, str]

    def all_hold(self) -> bool:
        """True when every checked property matches the paper."""
        return all(self.checks.values())

    def failed(self) -> Tuple[str, ...]:
        """Names of checks that did not hold."""
        return tuple(name for name, ok in self.checks.items() if not ok)


def _mean_savings(
    grid: Dict[Tuple[str, str, str], PolicySavings],
    metric: str,
    policy: str,
    level: str,
) -> float:
    values = [
        getattr(s, metric).mean
        for (mix, lvl, pol), s in grid.items()
        if pol == policy and lvl == level
    ]
    return float(np.mean(values)) if values else float("nan")


def check_takeaways(results: GridResults) -> TakeawayReport:
    """Evaluate all takeaway/marker predicates on a finished grid."""
    savings = savings_grid(results)
    checks: Dict[str, bool] = {}
    evidence: Dict[str, str] = {}
    mixes = sorted({k[0] for k in results.cells})
    levels_present = {k[1] for k in results.cells}
    if not {"min", "ideal", "max"} <= levels_present:
        raise ValueError("takeaway checks need all three budget levels")

    # Takeaway 1: MixedAdaptive energy savings grow from min to max budget.
    e_min = _mean_savings(savings, "energy_savings", "MixedAdaptive", "min")
    e_max = _mean_savings(savings, "energy_savings", "MixedAdaptive", "max")
    checks["t1_energy_savings_grow_with_budget"] = e_max > e_min
    evidence["t1_energy_savings_grow_with_budget"] = (
        f"MixedAdaptive mean energy savings: min={100 * e_min:.1f}% "
        f"max={100 * e_max:.1f}%"
    )

    # Takeaway 2: application-aware beats application-agnostic on energy
    # at the max budget.
    e_mw = _mean_savings(savings, "energy_savings", "MinimizeWaste", "max")
    checks["t2_app_awareness_increases_energy_savings"] = e_max > e_mw
    evidence["t2_app_awareness_increases_energy_savings"] = (
        f"max budget mean energy savings: MixedAdaptive={100 * e_max:.1f}% "
        f"MinimizeWaste={100 * e_mw:.1f}%"
    )

    # Takeaway 3: combined awareness >= either alone.  The sharing-rich
    # ideal budget is where the policies' visibility differences matter
    # ("Cases that favor resource awareness ... are also visible in the
    # form of time savings"), so the check is on mean time savings there.
    def ideal_time(policy: str) -> float:
        vals = [
            s.time_savings.mean
            for (m, l, p), s in savings.items()
            if p == policy and l == "ideal"
        ]
        return float(np.mean(vals))

    t_mixed = ideal_time("MixedAdaptive")
    t_job = ideal_time("JobAdaptive")
    t_waste = ideal_time("MinimizeWaste")
    checks["t3_combined_beats_either_alone"] = (
        t_mixed >= t_job - 1e-9 and t_mixed >= t_waste - 1e-9
    )
    evidence["t3_combined_beats_either_alone"] = (
        f"mean ideal-budget time savings: Mixed={100 * t_mixed:.1f}% "
        f"Job={100 * t_job:.1f}% Waste={100 * t_waste:.1f}%"
    )

    # Takeaway 4: NeedUsedPower offers ~no energy-saving opportunity.
    if "NeedUsedPower" in mixes:
        nup = [
            s.energy_savings.mean
            for (m, l, p), s in savings.items()
            if m == "NeedUsedPower" and p == "MixedAdaptive"
        ]
        best_nup = max(nup)
        checks["t4_needusedpower_no_energy_opportunity"] = best_nup < 0.02
        evidence["t4_needusedpower_no_energy_opportunity"] = (
            f"best NeedUsedPower energy savings: {100 * best_nup:.1f}%"
        )

    # Marker (a): at max budget, job-aware policies draw less power than
    # the baseline.
    util = {
        (m, l, p): cell.run.result.budget_utilization()
        for (m, l, p), cell in results.cells.items()
    }
    a_ok = all(
        util[(m, "max", "MixedAdaptive")] <= util[(m, "max", "StaticCaps")] + 1e-9
        for m in mixes
    )
    checks["marker_a_less_power_at_max"] = a_ok
    evidence["marker_a_less_power_at_max"] = "utilisation(MixedAdaptive) <= utilisation(StaticCaps) at max for all mixes"

    # Marker (b): at ideal budget, JobAdaptive under-utilises vs
    # MixedAdaptive somewhere.
    b_ok = any(
        util[(m, "ideal", "JobAdaptive")] < util[(m, "ideal", "MixedAdaptive")] - 1e-6
        for m in mixes
    )
    checks["marker_b_jobadaptive_underutilises_at_ideal"] = b_ok
    evidence["marker_b_jobadaptive_underutilises_at_ideal"] = ", ".join(
        f"{m}: JA={100 * util[(m, 'ideal', 'JobAdaptive')]:.1f}% "
        f"MA={100 * util[(m, 'ideal', 'MixedAdaptive')]:.1f}%"
        for m in mixes
    )

    # Marker (e): the time-saving opportunity concentrates at constrained
    # budgets ("the time-saving opportunity decreases as system-wide power
    # budget increases, with a maximum opportunity ... in the min power
    # case").  Two assertions: the grid's best time savings is material
    # (paper: ~7 %) and occurs below the max budget, and the mean time
    # savings at min exceed those at max.
    best_key = max(savings, key=lambda k: savings[k].time_savings.mean)
    best = savings[best_key].time_savings.mean

    def mean_time(level: str) -> float:
        vals = [
            s.time_savings.mean
            for (m, l, p), s in savings.items()
            if p == "MixedAdaptive" and l == level
        ]
        return float(np.mean(vals))

    checks["marker_e_time_savings_at_constrained_budgets"] = (
        best >= 0.04 and best_key[1] != "max" and mean_time("min") > mean_time("max")
    )
    evidence["marker_e_time_savings_at_constrained_budgets"] = (
        f"best time savings {100 * best:.1f}% at {best_key}; MixedAdaptive mean "
        f"time savings min={100 * mean_time('min'):.1f}% "
        f"max={100 * mean_time('max'):.1f}%"
    )

    return TakeawayReport(checks=checks, evidence=evidence)
