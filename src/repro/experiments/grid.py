"""The evaluation grid: policy x mix x budget, as in the paper's §V-§VI.

:class:`ExperimentGrid` reproduces the paper's experimental procedure end
to end:

1. instantiate a cluster and run the Fig. 6 variation survey;
2. carve out the medium-frequency partition (the paper's 918 nodes);
3. build the six Table II mixes and schedule them onto the partition;
4. pre-characterize each mix (monitor + balancer runs);
5. derive the three Table III budgets per mix;
6. run every (policy, budget) cell through the resource manager.

The ``scale`` parameter shrinks nodes-per-job (and the survey) for tests
and laptop runs; all derived quantities (budgets, savings) are per-node
normalised, so shapes are scale-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


from repro.characterization.budgets import PowerBudgets, derive_budgets
from repro.characterization.clustering import FrequencySurvey, survey_and_cluster
from repro.characterization.mix_characterization import (
    DEFAULT_HARVEST_FRACTION,
    MixCharacterization,
    characterize_mix,
)
from repro.core.registry import POLICY_NAMES, create_policy
from repro.hardware.cluster import Cluster
from repro.manager.power_manager import ManagedRun, PowerManager
from repro.manager.scheduler import ScheduledMix, Scheduler
from repro.sim.engine import ExecutionModel
from repro.sim.execution import SimulationOptions
from repro.telemetry import ScopedTimer, emit, enabled, get_registry, span
from repro.workload.mixes import MIX_NAMES, MixBuilder

__all__ = [
    "ExperimentConfig",
    "PreparedMix",
    "CellResult",
    "GridResults",
    "ExperimentGrid",
    "cell_seed",
    "run_grid_cell",
]

#: Budget level names in presentation order.
BUDGET_LEVELS: Tuple[str, ...] = ("min", "ideal", "max")


def cell_seed(run_seed: int, mix_name: str, budget_level: str,
              policy_name: str) -> int:
    """The deterministic noise seed for one grid cell.

    Content-addressed through ``np.random.SeedSequence`` (see
    :mod:`repro.parallel.seeding`): the seed is a pure function of the
    run seed and the cell's identity, never a draw from a parent RNG —
    so noise differs across cells, every rerun is bit-identical, and
    serial and parallel sweeps agree no matter how cells are ordered or
    chunked.  (Python's ``hash()`` is salted per process and would break
    all three properties.)
    """
    from repro.parallel.seeding import child_seed

    return child_seed(run_seed, mix_name, budget_level, policy_name)


def run_grid_cell(
    config: ExperimentConfig,
    model: ExecutionModel,
    prepared: PreparedMix,
    mix_name: str,
    budget_level: str,
    policy_name: str,
) -> "CellResult":
    """Run one (mix, budget, policy) cell from prepared inputs.

    A pure module-level function of picklable arguments — the single
    code path behind both :meth:`ExperimentGrid.run_cell` and the
    process-pool workers, which is what guarantees parallel grids are
    byte-identical to serial ones.
    """
    if budget_level not in BUDGET_LEVELS:
        raise ValueError(f"budget_level must be one of {BUDGET_LEVELS}")
    budget_w = prepared.budgets.by_level()[budget_level]
    policy = create_policy(policy_name)
    manager = PowerManager(model)
    seed = cell_seed(config.run_seed, mix_name, budget_level, policy_name)
    options = SimulationOptions(noise_std=config.noise_std, seed=seed)
    with span("experiments.grid.cell", mix=mix_name,
              budget_level=budget_level, policy=policy_name), \
            ScopedTimer("experiments.grid.cell_s") as timer:
        run = manager.launch(
            prepared.scheduled,
            policy,
            budget_w,
            characterization=prepared.characterization,
            options=options,
        )
    if enabled():
        get_registry().counter("experiments.grid.cells").inc()
        emit(
            "experiments.grid", "cell_complete",
            mix=mix_name, budget_level=budget_level, policy=policy_name,
            wall_s=timer.elapsed_s,
            mean_power_w=float(run.result.mean_system_power_w),
        )
    return CellResult(
        mix_name=mix_name,
        budget_level=budget_level,
        policy_name=policy_name,
        run=run,
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of the full evaluation (paper defaults).

    ``survey_nodes`` / ``nodes_per_job`` / ``jobs_per_mix`` / ``iterations``
    default to the paper's 2 000 / 100 / 9 / 100.  Tests pass smaller
    values; every public artefact normalises per node so the shapes match.
    """

    survey_nodes: int = 2000
    nodes_per_job: int = 100
    jobs_per_mix: int = 9
    iterations: int = 100
    survey_cap_w: float = 140.0
    cluster_seed: int = 2021
    schedule_seed: int = 11
    noise_std: float = 0.008
    run_seed: int = 7
    harvest_fraction: float = DEFAULT_HARVEST_FRACTION
    mixes: Tuple[str, ...] = MIX_NAMES
    policies: Tuple[str, ...] = POLICY_NAMES

    def __post_init__(self) -> None:
        needed = self.nodes_per_job * self.jobs_per_mix
        if self.survey_nodes < needed * 2:
            raise ValueError(
                f"survey of {self.survey_nodes} nodes cannot yield a medium "
                f"partition of {needed} nodes (rule of thumb: survey >= 2x)"
            )

    @classmethod
    def small(cls, nodes_per_job: int = 10, iterations: int = 30) -> "ExperimentConfig":
        """A laptop/test-scale configuration with the same structure."""
        # The medium cluster holds ~46 % of the survey population, so a
        # 25x survey comfortably covers the 9-job partition.
        return cls(
            survey_nodes=max(25 * nodes_per_job, 250),
            nodes_per_job=nodes_per_job,
            iterations=iterations,
        )


@dataclass(frozen=True)
class PreparedMix:
    """A mix scheduled, characterized, and budgeted — ready to run."""

    scheduled: ScheduledMix
    characterization: MixCharacterization
    budgets: PowerBudgets

    @property
    def name(self) -> str:
        """Mix name."""
        return self.scheduled.mix.name


@dataclass(frozen=True)
class CellResult:
    """One grid cell: a policy run at one budget level on one mix."""

    mix_name: str
    budget_level: str
    policy_name: str
    run: ManagedRun

    def row(self) -> Dict[str, object]:
        """Flat export row (CSV-friendly)."""
        summary = self.run.result.summary()
        return {
            "mix": self.mix_name,
            "budget_level": self.budget_level,
            "policy": self.policy_name,
            **summary,
            "allocated_w": self.run.allocation.total_allocated_w,
            "unallocated_w": self.run.allocation.unallocated_w,
        }


@dataclass
class GridResults:
    """All grid cells plus the prepared inputs that produced them."""

    config: ExperimentConfig
    survey: FrequencySurvey
    prepared: Dict[str, PreparedMix]
    cells: Dict[Tuple[str, str, str], CellResult] = field(default_factory=dict)

    def cell(self, mix: str, level: str, policy: str) -> CellResult:
        """Look up one cell by (mix, budget level, policy)."""
        try:
            return self.cells[(mix, level, policy)]
        except KeyError:
            raise KeyError(
                f"no cell ({mix!r}, {level!r}, {policy!r}); ran "
                f"{sorted(set(k[0] for k in self.cells))} x "
                f"{sorted(set(k[1] for k in self.cells))} x "
                f"{sorted(set(k[2] for k in self.cells))}"
            ) from None

    def rows(self) -> List[Dict[str, object]]:
        """All cells as flat export rows, in deterministic order."""
        ordered = sorted(self.cells)
        return [self.cells[key].row() for key in ordered]


class ExperimentGrid:
    """Builds the environment and runs the evaluation grid."""

    def __init__(self, config: Optional[ExperimentConfig] = None,
                 model: Optional[ExecutionModel] = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self.model = model if model is not None else ExecutionModel()
        self._survey: Optional[FrequencySurvey] = None
        self._partition: Optional[Cluster] = None
        self._prepared: Dict[str, PreparedMix] = {}

    # ------------------------------------------------------------------
    # environment
    # ------------------------------------------------------------------
    @property
    def survey(self) -> FrequencySurvey:
        """The Fig. 6 survey over the full cluster population (cached)."""
        if self._survey is None:
            population = Cluster(
                node_count=self.config.survey_nodes, seed=self.config.cluster_seed
            )
            self._survey = survey_and_cluster(
                population, cap_w=self.config.survey_cap_w, model=self.model
            )
            self._population = population
        return self._survey

    @property
    def partition(self) -> Cluster:
        """The medium-frequency partition used for all experiments."""
        if self._partition is None:
            survey = self.survey
            medium_ids = survey.cluster_node_ids("medium")
            needed = self.config.nodes_per_job * self.config.jobs_per_mix
            if medium_ids.size < needed:
                raise RuntimeError(
                    f"medium cluster has {medium_ids.size} nodes; "
                    f"{needed} required"
                )
            self._partition = self._population.subset(medium_ids)
        return self._partition

    # ------------------------------------------------------------------
    # preparation
    # ------------------------------------------------------------------
    def prepare_mix(self, mix_name: str) -> PreparedMix:
        """Schedule, characterize, and budget one mix (cached)."""
        if mix_name not in self._prepared:
            builder = MixBuilder(
                nodes_per_job=self.config.nodes_per_job,
                jobs_per_mix=self.config.jobs_per_mix,
                iterations=self.config.iterations,
            )
            mix = builder.build(mix_name)
            scheduler = Scheduler(self.partition, shuffle_seed=self.config.schedule_seed)
            scheduled = scheduler.allocate(mix)
            char = characterize_mix(
                mix,
                scheduled.efficiencies,
                self.model,
                harvest_fraction=self.config.harvest_fraction,
            )
            budgets = derive_budgets(char)
            self._prepared[mix_name] = PreparedMix(
                scheduled=scheduled, characterization=char, budgets=budgets
            )
        return self._prepared[mix_name]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_cell(self, mix_name: str, budget_level: str, policy_name: str) -> CellResult:
        """Run one (mix, budget, policy) cell."""
        prepared = self.prepare_mix(mix_name)
        return run_grid_cell(
            self.config, self.model, prepared, mix_name, budget_level,
            policy_name,
        )

    def run_all(
        self,
        mixes: Optional[Sequence[str]] = None,
        levels: Sequence[str] = BUDGET_LEVELS,
        policies: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
    ) -> GridResults:
        """Run the full grid (or a sub-grid) and collect results.

        ``workers`` selects the execution mode: 1 (or ``None`` without
        ``$REPRO_WORKERS`` set) runs cells serially in-process; above 1
        the independent cells fan out over a process pool via
        :class:`~repro.parallel.ParallelRunner`.  Per-cell seeds are
        content-addressed (:func:`cell_seed`), so both modes produce
        bit-identical :class:`GridResults`.  The environment (survey,
        partition, characterizations) is always prepared serially in
        this process and shipped to the workers.
        """
        from repro.parallel.runner import resolve_workers

        workers = resolve_workers(workers)
        mixes = list(mixes if mixes is not None else self.config.mixes)
        levels = list(levels)
        policies = list(policies if policies is not None else self.config.policies)
        results = GridResults(
            config=self.config,
            survey=self.survey,
            prepared={name: self.prepare_mix(name) for name in mixes},
        )
        keys = [
            (mix_name, level, policy_name)
            for mix_name in mixes
            for level in levels
            for policy_name in policies
        ]
        with span("experiments.grid.run_all", mixes=len(mixes),
                  levels=len(levels), policies=len(policies),
                  workers=workers), \
                ScopedTimer("experiments.grid.run_all_s") as timer:
            if workers == 1:
                for mix_name, level, policy_name in keys:
                    results.cells[(mix_name, level, policy_name)] = self.run_cell(
                        mix_name, level, policy_name
                    )
            else:
                from repro.parallel.runner import ParallelRunner
                from repro.parallel.tasks import grid_cell_task, init_grid_worker

                runner = ParallelRunner(
                    workers,
                    initializer=init_grid_worker,
                    initargs=(self.config, self.model, results.prepared),
                )
                for key, cell in zip(keys, runner.map(grid_cell_task, keys)):
                    results.cells[key] = cell
        if enabled():
            emit(
                "experiments.grid", "grid_complete",
                mixes=len(mixes), levels=len(levels),
                policies=len(policies), cells=len(results.cells),
                workers=workers,
                wall_s=timer.elapsed_s,
            )
        return results
