"""Savings metrics relative to the StaticCaps baseline (Fig. 8 rows).

"All metrics are reported as a percent improvement from the StaticCaps
policy" (paper §VI-B), with 95 % confidence intervals over the 100
measured iterations.  Four metrics:

* **time savings** — reduction in mean job elapsed time;
* **energy savings** — reduction in total CPU energy;
* **EDP savings** — reduction in energy-delay product;
* **FLOPS/W increase** — gain in retired FLOPs per watt.

Confidence intervals are computed on per-iteration ratios: iteration ``i``
of the policy run is matched with iteration ``i`` of the baseline run and
the savings of each pair forms the sample set.  Iteration counts always
match (same mix), so the pairing is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.analysis.stats import ConfidenceInterval, mean_ci95
from repro.experiments.grid import BUDGET_LEVELS, GridResults
from repro.sim.results import MixRunResult

__all__ = ["BUDGET_LEVELS", "PolicySavings", "savings_vs_baseline", "savings_grid"]

#: Fig. 8 metric row names in presentation order.
METRIC_NAMES: Tuple[str, ...] = (
    "time_savings",
    "energy_savings",
    "edp_savings",
    "flops_per_watt_increase",
)


@dataclass(frozen=True)
class PolicySavings:
    """One policy's Fig. 8 metrics against the baseline, with CIs."""

    mix_name: str
    budget_level: str
    policy_name: str
    time_savings: ConfidenceInterval
    energy_savings: ConfidenceInterval
    edp_savings: ConfidenceInterval
    flops_per_watt_increase: ConfidenceInterval

    def by_metric(self) -> Dict[str, ConfidenceInterval]:
        """Metrics keyed by Fig. 8 row name."""
        return {
            "time_savings": self.time_savings,
            "energy_savings": self.energy_savings,
            "edp_savings": self.edp_savings,
            "flops_per_watt_increase": self.flops_per_watt_increase,
        }

    def row(self) -> Dict[str, object]:
        """Flat export row (percent units)."""
        out: Dict[str, object] = {
            "mix": self.mix_name,
            "budget_level": self.budget_level,
            "policy": self.policy_name,
        }
        for name, ci in self.by_metric().items():
            out[f"{name}_pct"] = 100.0 * ci.mean
            out[f"{name}_ci95_pct"] = 100.0 * ci.half_width
        return out


def _iteration_mean_times(result: MixRunResult) -> np.ndarray:
    """Per-iteration mean-over-jobs elapsed time."""
    return result.iteration_times_s.mean(axis=1)


def savings_vs_baseline(policy: MixRunResult, baseline: MixRunResult) -> PolicySavings:
    """Compute the four Fig. 8 metrics of ``policy`` against ``baseline``.

    Both runs must come from the same mix (same jobs, same iteration
    count); the baseline is normally the StaticCaps run at the same
    budget.
    """
    if policy.job_names != baseline.job_names:
        raise ValueError(
            "policy and baseline runs are from different mixes: "
            f"{policy.job_names} vs {baseline.job_names}"
        )
    if policy.iteration_times_s.shape != baseline.iteration_times_s.shape:
        raise ValueError("policy and baseline iteration grids differ in shape")

    t_pol = _iteration_mean_times(policy)
    t_base = _iteration_mean_times(baseline)
    e_pol = policy.iteration_energy_j
    e_base = baseline.iteration_energy_j

    time_savings = 1.0 - t_pol / t_base
    energy_savings = 1.0 - e_pol / e_base
    edp_savings = 1.0 - (e_pol * t_pol) / (e_base * t_base)
    # FLOPs per iteration are identical across policies (work is fixed),
    # so the FLOPS/W ratio per iteration reduces to the energy ratio per
    # unit of work scaled by each run's FLOP count.
    fpw_pol = policy.gflop_per_iteration / e_pol
    fpw_base = baseline.gflop_per_iteration / e_base
    flops_per_watt = fpw_pol / fpw_base - 1.0

    return PolicySavings(
        mix_name=policy.mix_name,
        budget_level="",
        policy_name=policy.policy_name,
        time_savings=mean_ci95(time_savings),
        energy_savings=mean_ci95(energy_savings),
        edp_savings=mean_ci95(edp_savings),
        flops_per_watt_increase=mean_ci95(flops_per_watt),
    )


def savings_grid(
    results: GridResults,
    baseline_policy: str = "StaticCaps",
    policies: Tuple[str, ...] = ("MinimizeWaste", "JobAdaptive", "MixedAdaptive"),
) -> Dict[Tuple[str, str, str], PolicySavings]:
    """Fig. 8's full grid: savings per (mix, budget level, dynamic policy).

    ``Precharacterized`` is omitted by default, as in the paper ("it is
    unable to operate within the budgeted power in most cases").
    """
    out: Dict[Tuple[str, str, str], PolicySavings] = {}
    mixes = sorted({key[0] for key in results.cells})
    levels = [lvl for lvl in BUDGET_LEVELS if any(k[1] == lvl for k in results.cells)]
    for mix in mixes:
        for level in levels:
            base = results.cell(mix, level, baseline_policy).run.result
            for policy_name in policies:
                cell = results.cell(mix, level, policy_name)
                savings = savings_vs_baseline(cell.run.result, base)
                out[(mix, level, policy_name)] = PolicySavings(
                    mix_name=mix,
                    budget_level=level,
                    policy_name=policy_name,
                    time_savings=savings.time_savings,
                    energy_savings=savings.energy_savings,
                    edp_savings=savings.edp_savings,
                    flops_per_watt_increase=savings.flops_per_watt_increase,
                )
    return out
