"""Render the paper's figures as SVG files.

:func:`render_all_figures` regenerates the graphical figures — the Fig. 1
trace, the Fig. 4/5 heat maps, Fig. 6's cluster view, and the Fig. 7/8
bar grids — as self-contained SVG documents, using only the pure-Python
renderer in :mod:`repro.analysis.svg`.  Exposed on the CLI as
``python -m repro figures -o DIR``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union


from repro.analysis.svg import (
    grouped_bar_chart,
    heatmap_chart,
    line_chart,
    write_svg,
)
from repro.experiments.figures import (
    fig4_monitor_heatmap,
    fig5_balancer_heatmap,
    fig7_power_utilization,
)
from repro.experiments.grid import ExperimentGrid, GridResults
from repro.experiments.metrics import savings_grid
from repro.workload.facility import generate_facility_trace
from repro.workload.mixes import MIX_NAMES

__all__ = ["render_all_figures"]


def _fig1_svg() -> str:
    trace = generate_facility_trace()
    # Down-sample the 5-minute series for a legible line.
    stride = max(1, trace.power_mw.size // 2000)
    return line_chart(
        trace.time_days[::stride],
        {
            "instantaneous": trace.power_mw[::stride],
            "1-day average": trace.daily_average_mw[::stride],
        },
        title="Fig. 1 — facility power (synthetic Quartz trace)",
        x_label="day",
        y_label="power (MW)",
        h_lines={"rating 1.35 MW": trace.config.rating_mw},
    )


def _heatmap_svg(heatmap, figure_name: str) -> str:
    return heatmap_chart(
        [f"{i:g}" for i in heatmap.intensities],
        list(heatmap.column_labels()),
        heatmap.values,
        title=f"{figure_name} — {heatmap.title}",
        unit="W per node",
    )


def _fig7_svg(results: GridResults, level: str) -> str:
    util = fig7_power_utilization(results)
    mixes = [m for m in MIX_NAMES if m in util]
    policies = sorted({p for m in util.values() for p in m[level]})
    series = {
        policy: [100.0 * util[mix][level][policy] for mix in mixes]
        for policy in policies
    }
    return grouped_bar_chart(
        mixes, series,
        title=f"Fig. 7 — power used, {level} budget (% of budget)",
        y_label="% of system budget",
    )


def _fig8_svg(results: GridResults, metric: str, label: str) -> str:
    savings = savings_grid(results)
    mixes = sorted({k[0] for k in savings}, key=lambda m: MIX_NAMES.index(m))
    policies = ("MinimizeWaste", "JobAdaptive", "MixedAdaptive")
    series: Dict[str, List[float]] = {}
    for policy in policies:
        values = []
        for mix in mixes:
            cell = [
                getattr(savings[(mix, lvl, policy)], metric).mean
                for lvl in ("min", "ideal", "max")
                if (mix, lvl, policy) in savings
            ]
            values.append(100.0 * max(cell))
        series[policy] = values
    return grouped_bar_chart(
        mixes, series,
        title=f"Fig. 8 — best {label} vs StaticCaps, by mix",
        y_label=f"{label} (%)",
    )


def render_all_figures(
    grid: ExperimentGrid,
    output_dir: Union[str, Path],
    results: Optional[GridResults] = None,
    heatmap_nodes: int = 50,
) -> Dict[str, Path]:
    """Write every SVG figure into ``output_dir``; returns name -> path."""
    output_dir = Path(output_dir)
    if results is None:
        results = grid.run_all()
    written: Dict[str, Path] = {}

    written["fig1"] = write_svg(_fig1_svg(), output_dir / "fig1_facility.svg")
    written["fig4"] = write_svg(
        _heatmap_svg(fig4_monitor_heatmap(grid, heatmap_nodes), "Fig. 4"),
        output_dir / "fig4_monitor_power.svg",
    )
    written["fig5"] = write_svg(
        _heatmap_svg(fig5_balancer_heatmap(grid, heatmap_nodes), "Fig. 5"),
        output_dir / "fig5_balancer_power.svg",
    )
    for level in ("min", "ideal", "max"):
        written[f"fig7_{level}"] = write_svg(
            _fig7_svg(results, level),
            output_dir / f"fig7_utilization_{level}.svg",
        )
    written["fig8_time"] = write_svg(
        _fig8_svg(results, "time_savings", "time savings"),
        output_dir / "fig8_time_savings.svg",
    )
    written["fig8_energy"] = write_svg(
        _fig8_svg(results, "energy_savings", "energy savings"),
        output_dir / "fig8_energy_savings.svg",
    )
    return written
