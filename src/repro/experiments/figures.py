"""Data builders for every figure in the paper.

Each ``figN_*`` function returns plain dict/array data carrying exactly
the rows or series the corresponding figure plots; the benchmark harness
renders them with :mod:`repro.analysis.render`.  Keeping figures as *data*
(rather than plots) makes the reproduction assertable in tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.characterization.balancer_runs import balancer_heatmap
from repro.characterization.monitor_runs import HeatmapGrid, monitor_heatmap
from repro.experiments.grid import ExperimentGrid, GridResults
from repro.experiments.metrics import PolicySavings, savings_grid
from repro.hardware.roofline import ADVISOR_SINGLE_CORE_ROOFLINE, RooflineModel
from repro.sim.engine import ExecutionModel
from repro.workload.facility import (
    FacilityTraceConfig,
    generate_facility_trace,
)
from repro.workload.kernel import KernelConfig, VectorWidth

__all__ = [
    "fig1_facility_data",
    "fig2_phase_timeline",
    "fig3_roofline_data",
    "fig4_monitor_heatmap",
    "fig5_balancer_heatmap",
    "fig6_survey_data",
    "fig7_power_utilization",
    "fig8_savings_grid",
]


# ----------------------------------------------------------------------
# Fig. 1 — facility power over a year vs the 1.35 MW rating
# ----------------------------------------------------------------------
def fig1_facility_data(
    config: Optional[FacilityTraceConfig] = None,
) -> Dict[str, object]:
    """Trace, moving average, and the utilisation statistics of Fig. 1."""
    trace = generate_facility_trace(config)
    return {
        "trace": trace,
        "statistics": trace.statistics(),
    }


# ----------------------------------------------------------------------
# Fig. 2 — anatomy of one kernel iteration
# ----------------------------------------------------------------------
def fig2_phase_timeline(
    config: Optional[KernelConfig] = None,
    model: Optional[ExecutionModel] = None,
) -> Dict[str, float]:
    """Compute/slack phase split of one iteration (Fig. 2's schematic).

    Returns the unconstrained iteration time, the non-critical hosts'
    compute time, and the slack they spend polling — the three intervals
    the figure sketches.
    """
    from repro.workload.job import Job, WorkloadMix

    if config is None:
        config = KernelConfig(
            intensity=8.0, waiting_fraction=0.5, imbalance=2
        )
    model = model if model is not None else ExecutionModel()
    job = Job(name="fig2", config=config, node_count=4, iterations=1)
    mix = WorkloadMix(name="fig2", jobs=(job,))
    layout = mix.layout()
    eff = np.ones(layout.host_count)
    caps = np.full(layout.host_count, model.power_model.tdp_w)
    freq = model.frequencies(caps, layout, eff)
    times = model.compute_time(freq, layout)
    critical_time = float(times[layout.critical].max())
    waiting_time = float(times[~layout.critical].max()) if np.any(~layout.critical) else critical_time
    return {
        "iteration_time_s": critical_time,
        "common_work_time_s": waiting_time,
        "slack_time_s": critical_time - waiting_time,
        "waiting_fraction": config.waiting_fraction,
        "imbalance": float(config.imbalance),
    }


# ----------------------------------------------------------------------
# Fig. 3 — roofline of the synthetic kernel
# ----------------------------------------------------------------------
def fig3_roofline_data(
    roofline: RooflineModel = ADVISOR_SINGLE_CORE_ROOFLINE,
    intensities: Optional[Sequence[float]] = None,
) -> Dict[str, np.ndarray]:
    """Roofline envelope plus kernel operating points (Fig. 3).

    The kernel's achieved GFLOPS at each configured intensity should hug
    the attainable envelope — DRAM-bound on the left, vector-FMA-bound on
    the right — which is how the paper verifies the kernel "covers the
    full spectrum of achievable throughput".
    """
    if intensities is None:
        intensities = np.geomspace(0.007, 40.0, 49)
    intensities = np.asarray(intensities, dtype=float)
    series = roofline.as_plot_series("dp_vector_fma", intensities)
    kernel_points = np.array([0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0])
    achieved = roofline.attainable_gflops(kernel_points, "dp_vector_fma")
    return {
        "intensity": intensities,
        **series,
        "kernel_intensity": kernel_points,
        "kernel_gflops": achieved,
    }


# ----------------------------------------------------------------------
# Figs. 4 / 5 — characterization heat maps
# ----------------------------------------------------------------------
def fig4_monitor_heatmap(grid: ExperimentGrid, test_nodes: int = 100) -> HeatmapGrid:
    """Uncapped power heat map (Fig. 4) on the experiment's partition."""
    ids = np.arange(min(test_nodes, len(grid.partition)))
    return monitor_heatmap(grid.partition, ids, VectorWidth.YMM, model=grid.model)


def fig5_balancer_heatmap(grid: ExperimentGrid, test_nodes: int = 100) -> HeatmapGrid:
    """Balancer needed-power heat map (Fig. 5) on the same nodes."""
    ids = np.arange(min(test_nodes, len(grid.partition)))
    return balancer_heatmap(grid.partition, ids, VectorWidth.YMM, model=grid.model)


# ----------------------------------------------------------------------
# Fig. 6 — hardware-variation survey
# ----------------------------------------------------------------------
def fig6_survey_data(grid: ExperimentGrid) -> Dict[str, object]:
    """Cluster sizes, centroids, and per-cluster frequency spreads."""
    survey = grid.survey
    spreads = {}
    for name in ("low", "medium", "high"):
        freqs = survey.frequencies_ghz[survey.cluster_node_ids(name)]
        spreads[name] = {
            "count": int(freqs.size),
            "mean_ghz": float(freqs.mean()),
            "min_ghz": float(freqs.min()),
            "max_ghz": float(freqs.max()),
        }
    return {
        "cap_w": survey.cap_w,
        "centroids_ghz": survey.centroids_ghz.tolist(),
        "clusters": spreads,
    }


# ----------------------------------------------------------------------
# Fig. 7 — power utilisation per policy x mix x budget
# ----------------------------------------------------------------------
def fig7_power_utilization(results: GridResults) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Mean used power as a fraction of the budget (Fig. 7 bars).

    Returns ``{mix: {level: {policy: utilisation}}}``; values above 1.0
    mean the policy exceeded the system budget (Precharacterized's
    signature failure mode).
    """
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for (mix, level, policy), cell in sorted(results.cells.items()):
        out.setdefault(mix, {}).setdefault(level, {})[policy] = (
            cell.run.result.budget_utilization()
        )
    return out


# ----------------------------------------------------------------------
# Fig. 8 — savings grid
# ----------------------------------------------------------------------
def fig8_savings_grid(results: GridResults) -> Dict[Tuple[str, str, str], PolicySavings]:
    """The four savings metrics vs StaticCaps for every dynamic policy."""
    return savings_grid(results)
