"""Robustness study: policy rankings over randomised workload mixes.

The paper evaluates six hand-constructed mixes.  A site's real schedule
is a random draw from the workload population, so a natural question is
how often each policy wins across *many* random mixes — whether the
paper's conclusions are a property of its mix construction or of the
policies.  :func:`policy_tournament` runs R random nine-job mixes
(seeded shuffles of the full configuration catalog), scores the dynamic
policies against StaticCaps at each mix's ideal budget, and tallies wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.characterization.budgets import derive_budgets
from repro.characterization.mix_characterization import characterize_mix
from repro.core.registry import create_policy
from repro.experiments.metrics import savings_vs_baseline
from repro.hardware.cluster import Cluster
from repro.manager.power_manager import PowerManager
from repro.manager.scheduler import Scheduler
from repro.sim.engine import ExecutionModel
from repro.sim.execution import SimulationOptions
from repro.workload.mixes import MixBuilder

__all__ = ["TournamentRound", "TournamentResult", "policy_tournament"]

_POLICIES: Tuple[str, ...] = ("MinimizeWaste", "JobAdaptive", "MixedAdaptive")


@dataclass(frozen=True)
class TournamentRound:
    """One random mix's outcomes (percent savings vs StaticCaps)."""

    seed: int
    budget_level: str
    time_savings_pct: Dict[str, float]
    energy_savings_pct: Dict[str, float]

    def winner(self, metric: str = "time") -> str:
        """The policy with the largest savings this round."""
        table = (
            self.time_savings_pct if metric == "time" else self.energy_savings_pct
        )
        return max(table, key=table.__getitem__)


@dataclass(frozen=True)
class TournamentResult:
    """Aggregated tournament outcome."""

    rounds: Tuple[TournamentRound, ...]

    def win_counts(self, metric: str = "time") -> Dict[str, int]:
        """Rounds won per policy (ties go to the listed order's first)."""
        counts = {name: 0 for name in _POLICIES}
        for rnd in self.rounds:
            counts[rnd.winner(metric)] += 1
        return counts

    def mean_savings_pct(self, metric: str = "time") -> Dict[str, float]:
        """Mean savings per policy across rounds."""
        out = {}
        for name in _POLICIES:
            values = [
                (rnd.time_savings_pct if metric == "time"
                 else rnd.energy_savings_pct)[name]
                for rnd in self.rounds
            ]
            out[name] = float(np.mean(values))
        return out

    def never_strictly_loses(self, policy: str, metric: str = "time",
                             tolerance_pct: float = 0.5) -> bool:
        """Whether ``policy`` is within tolerance of the round winner in
        every round — the 'no-regret' property the paper claims for
        MixedAdaptive."""
        for rnd in self.rounds:
            table = (
                rnd.time_savings_pct if metric == "time"
                else rnd.energy_savings_pct
            )
            best = max(table.values())
            if table[policy] < best - tolerance_pct:
                return False
        return True


def policy_tournament(
    rounds: int = 10,
    nodes_per_job: int = 10,
    iterations: int = 30,
    budget_level: str = "ideal",
    cluster: Optional[Cluster] = None,
    model: Optional[ExecutionModel] = None,
    base_seed: int = 1000,
) -> TournamentResult:
    """Run the tournament over ``rounds`` random nine-job mixes."""
    if rounds < 1:
        raise ValueError("rounds must be positive")
    model = model if model is not None else ExecutionModel()
    if cluster is None:
        cluster = Cluster(
            node_count=max(2 * 9 * nodes_per_job, 120), variation=None, seed=3
        )
    manager = PowerManager(model)
    results: List[TournamentRound] = []

    for r in range(rounds):
        seed = base_seed + r
        builder = MixBuilder(
            nodes_per_job=nodes_per_job, iterations=iterations, random_seed=seed
        )
        mix = builder.build("RandomLarge")
        scheduled = Scheduler(cluster, shuffle_seed=seed).allocate(mix)
        char = characterize_mix(mix, scheduled.efficiencies, model)
        budget = derive_budgets(char).by_level()[budget_level]
        options = SimulationOptions(noise_std=0.004, seed=seed)
        # All four scenarios of a round (the StaticCaps baseline plus the
        # three contenders) share one mix and one noise seed, so the round
        # runs as a single batched engine pass.
        specs = [
            (create_policy(name), budget)
            for name in ("StaticCaps",) + _POLICIES
        ]
        runs = manager.launch_batch(
            scheduled, specs, characterization=char, options=options
        )
        base = runs[0].result
        time_table: Dict[str, float] = {}
        energy_table: Dict[str, float] = {}
        for name, run in zip(_POLICIES, runs[1:]):
            savings = savings_vs_baseline(run.result, base)
            time_table[name] = 100.0 * savings.time_savings.mean
            energy_table[name] = 100.0 * savings.energy_savings.mean
        results.append(
            TournamentRound(
                seed=seed,
                budget_level=budget_level,
                time_savings_pct=time_table,
                energy_savings_pct=energy_table,
            )
        )
    return TournamentResult(rounds=tuple(results))
